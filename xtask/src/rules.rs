//! Token-level ports of the PR-5 string rules (DESIGN.md §14 → §18).
//!
//! The old `xtask lint` works on a comment/string-stripped line view and
//! needs hand-rolled false-positive handling (whole-word matching,
//! column bookkeeping, multi-line literal chasing). On the token tree the
//! same rules fall out directly: a `Str` token can never trip `panic!(`,
//! `forbid(unsafe_code)` is three tokens none of which is the `unsafe`
//! keyword, and test gating is the item tree's `#[cfg(test)]` scopes
//! rather than a per-line bitmap.
//!
//! Content-anchored rules — golden-constants (R4) and bench-schema (R7) —
//! stay on the string scanner: they match literal byte sequences in
//! specific files and gain nothing from tokens. The analyze driver runs
//! them via the PR-5 entry points.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::analyze::Finding;
use crate::lex::TokKind;
use crate::tree::{SourceFile, Workspace};

/// Sig-index ranges gated by `#[cfg(…test…)]` / `#[test]` in one file:
/// an attribute that gates tests claims the next braced block.
fn test_ranges(f: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    let n = f.len();
    let mut pending_test = false;
    while i < n {
        if f.is_punct(i, "#") {
            let mut j = i + 1;
            if f.is_punct(j, "!") {
                j += 1;
            }
            if f.is_punct(j, "[") && f.close_of[j] != usize::MAX {
                let close = f.close_of[j];
                let text: Vec<&str> = (i..=close).map(|k| f.txt(k)).collect();
                let attr = text.join(" ");
                if attr.contains("test") && !attr.contains("not ( test") {
                    pending_test = true;
                }
                i = close + 1;
                continue;
            }
        }
        if pending_test {
            if f.is_punct(i, ";") {
                pending_test = false; // `mod x;` — handled at load time
            } else if f.is_punct(i, "{") && f.close_of[i] != usize::MAX {
                out.push((i, f.close_of[i]));
                pending_test = false;
            }
        }
        i += 1;
    }
    out
}

fn in_test(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| (a..=b).contains(&i))
}

pub fn run(ws: &Workspace, root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        let ranges = test_ranges(f);
        no_panic(f, &ranges, &mut out);
        sync_shims(f, &ranges, &mut out);
        safety_comments(f, &mut out);
        reactor_syscalls(f, &mut out);
    }
    metric_registry(ws, root, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// R1: no `.unwrap()` / `.expect(` / `panic!(` in non-test ingestion-path
/// code (`server`, `fo`, `cli`, `cluster`).
fn no_panic(f: &SourceFile, ranges: &[(usize, usize)], out: &mut Vec<Finding>) {
    if !matches!(f.crate_name.as_str(), "server" | "fo" | "cli" | "cluster") {
        return;
    }
    for i in 0..f.len() {
        if f.tok(i).kind != TokKind::Ident || in_test(ranges, i) {
            continue;
        }
        let t = f.txt(i);
        let why = match t {
            "unwrap" if i > 0 && f.is_punct(i - 1, ".") && f.is_punct(i + 1, "(") => {
                Some("`unwrap()` aborts on Err/None")
            }
            "expect" if i > 0 && f.is_punct(i - 1, ".") && f.is_punct(i + 1, "(") => {
                Some("`expect()` aborts on Err/None")
            }
            "panic" if f.is_punct(i + 1, "!") && f.is_punct(i + 2, "(") => {
                Some("`panic!` aborts the worker")
            }
            _ => None,
        };
        if let Some(why) = why {
            out.push(Finding {
                file: f.path.clone(),
                line: f.line(i),
                rule: "no-panic",
                message: format!("{why} in non-test ingestion-path code; return a typed error"),
                trace: Vec::new(),
            });
        }
    }
}

/// R2: no raw `std::sync` / `std::thread` in `server` / `cluster` — every
/// synchronization point goes through the `felip-sync` shims.
fn sync_shims(f: &SourceFile, ranges: &[(usize, usize)], out: &mut Vec<Finding>) {
    if !matches!(f.crate_name.as_str(), "server" | "cluster") {
        return;
    }
    for i in 0..f.len() {
        if !f.is_ident(i, "std") || !f.is_punct(i + 1, "::") || in_test(ranges, i) {
            continue;
        }
        if i + 2 < f.len() && (f.is_ident(i + 2, "sync") || f.is_ident(i + 2, "thread")) {
            out.push(Finding {
                file: f.path.clone(),
                line: f.line(i),
                rule: "sync-shims",
                message: format!(
                    "raw `std::{}` in crates/{} — route it through `felip_sync` so the \
                     model checker can schedule it",
                    f.txt(i + 2),
                    f.crate_name
                ),
                trace: Vec::new(),
            });
        }
    }
}

/// R3: every `unsafe` keyword token has a `// SAFETY:` comment on its line
/// or in the comment block directly above (attribute lines allowed in
/// between). Tokenization makes `forbid(unsafe_code)` a non-issue.
fn safety_comments(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.len() {
        if !f.is_ident(i, "unsafe") {
            continue;
        }
        let line = f.line(i);
        if !f.comment_above_contains(line, "SAFETY:") {
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: "safety-comments",
                message: "`unsafe` without a preceding `// SAFETY:` comment justifying why \
                          the contract holds"
                    .to_string(),
                trace: Vec::new(),
            });
        }
    }
}

/// R6: raw syscall plumbing (`epoll_*`, `sched_*affinity`, inline `asm!`)
/// appears only in `crates/server/src/reactor.rs`.
fn reactor_syscalls(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.path == Path::new("crates/server/src/reactor.rs") {
        return;
    }
    for i in 0..f.len() {
        if f.tok(i).kind != TokKind::Ident {
            continue;
        }
        let t = f.txt(i);
        let hit = t.starts_with("epoll_")
            || t == "sched_setaffinity"
            || t == "sched_getaffinity"
            || (t == "asm" && f.is_punct(i + 1, "!") && f.is_punct(i + 2, "("));
        if hit {
            out.push(Finding {
                file: f.path.clone(),
                line: f.line(i),
                rule: "reactor-syscalls",
                message: format!(
                    "`{t}` outside crates/server/src/reactor.rs — all raw syscall \
                     plumbing lives in the reactor module (DESIGN.md §15)"
                ),
                trace: Vec::new(),
            });
        }
    }
}

/// The macro/function names that introduce a metric name (token form of
/// the PR-5 `METRIC_CALLS` table).
const METRIC_MACROS: &[&str] = &["counter", "gauge", "gauge_f64", "hist", "span"];

/// R5: metric/span names emitted in code equal the DESIGN.md §11 catalogue
/// in both directions. Emission sites are `felip_obs::<m>!("name", …)`,
/// `felip_obs::event("name", …)`, and `.span_child("name", …)`; the name
/// must be the first token after the paren (same adjacency as PR-5).
fn metric_registry(ws: &Workspace, root: &Path, out: &mut Vec<Finding>) {
    let mut emitted: Vec<(String, std::path::PathBuf, u32)> = Vec::new();
    for f in &ws.files {
        if f.crate_name == "obs" {
            continue;
        }
        let ranges = test_ranges(f);
        for i in 0..f.len() {
            if in_test(&ranges, i) {
                continue;
            }
            let open = if f.is_ident(i, "felip_obs") && f.is_punct(i + 1, "::") {
                if i + 2 < f.len()
                    && METRIC_MACROS.contains(&f.txt(i + 2))
                    && f.is_punct(i + 3, "!")
                    && f.is_punct(i + 4, "(")
                {
                    Some(i + 4)
                } else if i + 2 < f.len() && f.is_ident(i + 2, "event") && f.is_punct(i + 3, "(") {
                    Some(i + 3)
                } else {
                    None
                }
            } else if i > 0
                && f.is_punct(i - 1, ".")
                && f.is_ident(i, "span_child")
                && f.is_punct(i + 1, "(")
            {
                Some(i + 1)
            } else {
                None
            };
            let Some(open) = open else { continue };
            if open + 1 < f.len() && f.tok(open + 1).kind == TokKind::Str {
                if let Some(name) = unquote(f.txt(open + 1)) {
                    emitted.push((name, f.path.clone(), f.line(open + 1)));
                }
            }
        }
    }
    let code_names: BTreeSet<&str> = emitted.iter().map(|(n, _, _)| n.as_str()).collect();

    let design = root.join("DESIGN.md");
    let Ok(text) = fs::read_to_string(&design) else {
        out.push(Finding {
            file: "DESIGN.md".into(),
            line: 1,
            rule: "metric-registry",
            message: "DESIGN.md missing — metric catalogue unverifiable".to_string(),
            trace: Vec::new(),
        });
        return;
    };
    let catalogue = crate::parse_catalogue(&text);
    if catalogue.is_empty() {
        out.push(Finding {
            file: "DESIGN.md".into(),
            line: 1,
            rule: "metric-registry",
            message: "no metric-catalogue table rows found under §11".to_string(),
            trace: Vec::new(),
        });
        return;
    }
    let mut reported = BTreeSet::new();
    for (name, file, line) in &emitted {
        if !catalogue.contains_key(name.as_str()) && reported.insert(name.as_str()) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "metric-registry",
                message: format!(
                    "metric `{name}` emitted here but missing from the DESIGN.md §11 \
                     metric catalogue"
                ),
                trace: Vec::new(),
            });
        }
    }
    for (name, line) in &catalogue {
        if !code_names.contains(name.as_str()) {
            out.push(Finding {
                file: "DESIGN.md".into(),
                line: *line as u32,
                rule: "metric-registry",
                message: format!("metric `{name}` catalogued in §11 but never emitted in code"),
                trace: Vec::new(),
            });
        }
    }
}

/// The content of a plain `"…"` string-literal token.
fn unquote(t: &str) -> Option<String> {
    let inner = t.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Workspace;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let w = Workspace::from_sources(files);
        let mut out = Vec::new();
        for f in &w.files {
            let ranges = test_ranges(f);
            no_panic(f, &ranges, &mut out);
            sync_shims(f, &ranges, &mut out);
            safety_comments(f, &mut out);
            reactor_syscalls(f, &mut out);
        }
        out
    }

    #[test]
    fn unwrap_in_server_is_flagged_but_not_in_strings() {
        let out = findings(&[(
            "crates/server/src/a.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn g() -> &'static str { \"don't .unwrap() me\" }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "no-panic");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn unwrap_in_test_mod_is_allowed() {
        let out = findings(&[(
            "crates/server/src/a.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn std_sync_in_cluster_is_flagged() {
        let out = findings(&[("crates/cluster/src/a.rs", "use std::sync::Mutex;\n")]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "sync-shims");
    }

    #[test]
    fn unsafe_needs_safety_comment_but_forbid_attr_does_not() {
        let out = findings(&[(
            "crates/common/src/a.rs",
            "#![forbid(unsafe_code)]\nfn f() { let p = 0 as *const u8; \
             let _ = unsafe { *p }; }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "safety-comments");
        let ok = findings(&[(
            "crates/common/src/b.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees validity.\n    \
             unsafe { *p }\n}\n",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn epoll_outside_reactor_is_flagged() {
        let out = findings(&[("crates/cluster/src/a.rs", "fn f() { epoll_wait(); }\n")]);
        assert!(out.iter().any(|f| f.rule == "reactor-syscalls"), "{out:?}");
        let ok = findings(&[("crates/server/src/reactor.rs", "fn f() { epoll_wait(); }\n")]);
        assert!(ok.iter().all(|f| f.rule != "reactor-syscalls"), "{ok:?}");
    }

    #[test]
    fn panic_in_doc_comment_is_ignored() {
        let out = findings(&[(
            "crates/fo/src/a.rs",
            "/// Never call `panic!(...)` here.\nfn f() {}\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
