//! `xtask` — workspace automation. The one subcommand, `lint`, is a
//! hand-rolled static-analysis pass (zero dependencies; DESIGN.md §14)
//! enforcing repo-specific rules ordinary tooling cannot express:
//!
//! * **R1 `no-panic`** — no `.unwrap()` / `.expect(` / `panic!(` in
//!   non-test code of `crates/server`, `crates/fo`, `crates/cli`:
//!   ingestion-path failures must be typed errors, not aborts.
//! * **R2 `sync-shims`** — no raw `std::sync` / `std::thread` in
//!   `crates/server`: every synchronization point must go through the
//!   `felip-sync` shims, or the model checker silently loses sight of it.
//! * **R3 `safety-comments`** — every `unsafe` token in the workspace is
//!   preceded by a `// SAFETY:` comment (attributes may sit in between).
//! * **R4 `golden-constants`** — wire/snapshot magic numbers, protocol
//!   versions, and the `schema_hash` domain tag must not drift: changing
//!   any of them silently invalidates every snapshot and client in the
//!   field, so a change must show up here, in review, on purpose.
//! * **R5 `metric-registry`** — the set of metric/span names emitted in
//!   code equals the DESIGN.md §11 catalogue, in both directions.
//! * **R6 `reactor-syscalls`** — raw syscall plumbing (`epoll_*`,
//!   `sched_*affinity`, inline `asm!`) appears only in
//!   `crates/server/src/reactor.rs`: one auditable file owns every
//!   kernel-ABI assumption (DESIGN.md §15).
//! * **R7 `bench-schema`** — checked-in `BENCH_*.json` files keep their
//!   headline keys, so CI gates and dashboards reading them never break
//!   silently when a bench is reshaped.
//!
//! The pass works on a comment- and string-stripped view of each source
//! file (so `"panic!("` inside a string or an example in a doc comment
//! never trips a rule) and skips test code: `#[cfg(…test…)]`-gated items
//! and files claimed by `#[cfg(…test…)] mod x;` declarations. Integration
//! `tests/` trees are outside `src/` and are never scanned.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod analyze;
mod arith;
pub mod lex;
mod locks;
mod rules;
mod taint;
pub mod tree;

/// One rule violation, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the violation is in (workspace-relative when possible).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier (`no-panic`, `sync-shims`, …).
    pub rule: &'static str,
    /// Human explanation of what is wrong.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// CLI entry: returns the process exit code.
pub fn run(mut args: impl Iterator<Item = String>) -> i32 {
    // xtask sits directly under the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    match args.next().as_deref() {
        Some("lint") => {
            let diags = lint_root(&root);
            for d in &diags {
                felip_obs::diag::line(&d.to_string());
            }
            if diags.is_empty() {
                felip_obs::diag::line("xtask lint: all rules clean");
                0
            } else {
                felip_obs::diag::error(&format!("xtask lint: {} violation(s)", diags.len()));
                1
            }
        }
        Some("analyze") => {
            let mut json = false;
            let mut dump_locks = false;
            for a in args {
                match a.as_str() {
                    "--format" => {} // value follows
                    "json" | "--format=json" => json = true,
                    "--dump-locks" => dump_locks = true,
                    other => {
                        felip_obs::diag::error(&format!(
                            "unknown analyze flag {other:?} \
                             (expected `--format json` or `--dump-locks`)"
                        ));
                        return 2;
                    }
                }
            }
            let report = analyze::analyze_root(&root);
            if dump_locks {
                felip_obs::diag::line(report.locks.dump().trim_end());
            }
            if json {
                // JSON goes to stdout — it is the machine product.
                println!("{}", analyze::to_json(&report));
            } else {
                for f in &report.findings {
                    felip_obs::diag::line(&f.to_string());
                }
                for f in &report.taint_ok {
                    felip_obs::diag::line(&format!(
                        "{}:{}: [taint-ok] waived: {}",
                        f.file.display(),
                        f.line,
                        f.message
                    ));
                }
            }
            if report.findings.is_empty() {
                if !json {
                    felip_obs::diag::line(&format!(
                        "xtask analyze: all passes clean ({} taint waiver(s) catalogued)",
                        report.taint_ok.len()
                    ));
                }
                0
            } else {
                if !json {
                    felip_obs::diag::error(&format!(
                        "xtask analyze: {} finding(s)",
                        report.findings.len()
                    ));
                }
                1
            }
        }
        other => {
            felip_obs::diag::error(&format!(
                "usage: cargo run -p xtask -- <lint|analyze> [--format json] [--dump-locks]\n  \
                 unknown subcommand {:?}",
                other.unwrap_or("<none>")
            ));
            2
        }
    }
}

/// Runs every rule against the workspace at `root`.
pub fn lint_root(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rule_no_panic(root, &mut diags);
    rule_sync_shims(root, &mut diags);
    rule_safety_comments(root, &mut diags);
    rule_golden_constants(root, &mut diags);
    rule_metric_registry(root, &mut diags);
    rule_reactor_syscalls(root, &mut diags);
    rule_bench_schema(root, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

// ---------------------------------------------------------------------------
// Source scanning: comment/string stripping + test-code detection
// ---------------------------------------------------------------------------

/// A source file split into parallel per-line views: `code` has comments
/// and string/char-literal contents blanked to spaces (line structure and
/// column positions preserved), `comments` holds each line's comment text,
/// `test_line` marks lines inside `#[cfg(…test…)]`-gated items.
struct Scan {
    raw: Vec<String>,
    code: Vec<String>,
    comments: Vec<String>,
    test_line: Vec<bool>,
    /// Modules declared `#[cfg(…test…)] mod name;` — their files are test
    /// code in their entirety.
    test_mods: Vec<String>,
}

fn scan_source(src: &str) -> Scan {
    let (code_text, comment_text) = strip(src);
    let code: Vec<String> = code_text.lines().map(str::to_string).collect();
    let comments: Vec<String> = comment_text.lines().map(str::to_string).collect();
    let (test_line, test_mods) = mark_test_regions(&code);
    Scan {
        raw: src.lines().map(str::to_string).collect(),
        code,
        comments,
        test_line,
        test_mods,
    }
}

/// Splits `src` into a code view and a comment view of identical shape:
/// every character lands in one view as itself, a space, or (for string
/// and char-literal contents) a space in both. Handles nested block
/// comments, escapes, raw/byte strings, and lifetimes (`'a` is code, not
/// an unterminated char literal).
fn strip(src: &str) -> (String, String) {
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        CharLit,
    }
    const CODE: u8 = 0;
    const COMMENT: u8 = 1;
    const BLANK: u8 = 2;
    fn emit(code: &mut String, com: &mut String, c: char, dest: u8) {
        if c == '\n' {
            code.push('\n');
            com.push('\n');
        } else {
            match dest {
                CODE => {
                    code.push(c);
                    com.push(' ');
                }
                COMMENT => {
                    code.push(' ');
                    com.push(c);
                }
                _ => {
                    code.push(' ');
                    com.push(' ');
                }
            }
        }
    }
    let b: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut com = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    emit(&mut code, &mut com, c, COMMENT);
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    emit(&mut code, &mut com, c, COMMENT);
                }
                '"' => {
                    st = St::Str;
                    emit(&mut code, &mut com, c, BLANK);
                }
                'r' | 'b' => {
                    // Raw/byte string starts: r"…", r#"…"#, br#"…"#, b"…".
                    let mut j = i;
                    if b[j] == 'b' {
                        j += 1;
                    }
                    let has_r = b.get(j) == Some(&'r');
                    if has_r {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while has_r && b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') && (has_r || c == 'b') {
                        while i <= j {
                            emit(&mut code, &mut com, b[i], BLANK);
                            i += 1;
                        }
                        st = if has_r { St::RawStr(hashes) } else { St::Str };
                        continue;
                    }
                    emit(&mut code, &mut com, c, CODE);
                }
                '\'' => {
                    // Char literal ('x', '\n') vs lifetime ('a, 'static).
                    if next == Some('\\') || b.get(i + 2) == Some(&'\'') {
                        st = St::CharLit;
                        emit(&mut code, &mut com, c, BLANK);
                    } else {
                        emit(&mut code, &mut com, c, CODE);
                    }
                }
                _ => emit(&mut code, &mut com, c, CODE),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                }
                emit(&mut code, &mut com, c, COMMENT);
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    emit(&mut code, &mut com, '*', COMMENT);
                    emit(&mut code, &mut com, '/', COMMENT);
                    i += 2;
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                }
                emit(&mut code, &mut com, c, COMMENT);
            }
            St::Str => {
                if c == '\\' && next.is_some() {
                    emit(&mut code, &mut com, c, BLANK);
                    emit(&mut code, &mut com, b[i + 1], BLANK);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Code;
                }
                emit(&mut code, &mut com, c, BLANK);
            }
            St::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
                    for k in 0..=hashes {
                        emit(&mut code, &mut com, b[i + k], BLANK);
                    }
                    i += hashes + 1;
                    st = St::Code;
                    continue;
                }
                emit(&mut code, &mut com, c, BLANK);
            }
            St::CharLit => {
                if c == '\\' && next.is_some() {
                    emit(&mut code, &mut com, c, BLANK);
                    emit(&mut code, &mut com, b[i + 1], BLANK);
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    st = St::Code;
                }
                emit(&mut code, &mut com, c, BLANK);
            }
        }
        i += 1;
    }
    (code, com)
}

/// Marks lines covered by `#[cfg(…test…)]`-gated items (brace-matched) and
/// collects `#[cfg(…test…)] mod name;` out-of-line module names.
fn mark_test_regions(code: &[String]) -> (Vec<bool>, Vec<String>) {
    let n = code.len();
    let mut test = vec![false; n];
    let mut mods = Vec::new();
    let mut i = 0;
    while i < n {
        let t = code[i].trim_start();
        let gate = t.starts_with("#[cfg(") && t.contains("test") && !t.contains("not(test");
        if !gate {
            i += 1;
            continue;
        }
        // Scan forward for the gated item; attribute text (through the
        // final `]`) never counts toward the item's braces.
        let mut depth = 0i64;
        let mut entered = false;
        let mut j = i;
        let end;
        loop {
            if j >= n {
                end = n - 1;
                break;
            }
            let full = &code[j];
            let text: &str = if !entered && full.trim_start().starts_with("#[") {
                full.rfind(']').map(|p| &full[p + 1..]).unwrap_or("")
            } else {
                full
            };
            if !entered {
                if let Some(name) = out_of_line_mod(text) {
                    mods.push(name);
                    end = j;
                    break;
                }
                if text.contains(';') && !text.contains('{') {
                    // `#[cfg(test)] use …;`, trait-method signature, etc.
                    end = j;
                    break;
                }
            }
            for c in text.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if entered && depth <= 0 {
                end = j;
                break;
            }
            j += 1;
        }
        for m in test.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    (test, mods)
}

/// `mod name;` (no body) → `Some(name)`.
fn out_of_line_mod(code_line: &str) -> Option<String> {
    let t = code_line.trim();
    let rest = t
        .strip_prefix("pub mod ")
        .or_else(|| t.strip_prefix("pub(crate) mod "))
        .or_else(|| t.strip_prefix("mod "))?;
    let name = rest.strip_suffix(';')?.trim();
    (!name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_'))
        .then(|| name.to_string())
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Loads and scans every source file of a crate's `src/` directory,
/// dropping files claimed by `#[cfg(…test…)] mod x;` declarations.
fn scan_crate_src(crate_src: &Path) -> Vec<(PathBuf, Scan)> {
    let mut scans: Vec<(PathBuf, Scan)> = rust_files(crate_src)
        .into_iter()
        .filter_map(|p| {
            let src = fs::read_to_string(&p).ok()?;
            Some((p, scan_source(&src)))
        })
        .collect();
    let gated: Vec<String> = scans
        .iter()
        .flat_map(|(_, s)| s.test_mods.iter().cloned())
        .collect();
    scans.retain(|(p, _)| {
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let dir = p
            .parent()
            .and_then(|d| d.file_name())
            .and_then(|s| s.to_str())
            .unwrap_or("");
        let name = if stem == "mod" { dir } else { stem };
        !gated.iter().any(|g| g == name)
    });
    scans
}

/// Every `crates/*/src` directory under `root`, sorted.
fn crate_src_dirs(root: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return Vec::new();
    };
    let mut dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

fn rel(root: &Path, p: &Path) -> PathBuf {
    p.strip_prefix(root).unwrap_or(p).to_path_buf()
}

// ---------------------------------------------------------------------------
// R1: no unwrap/expect/panic! in non-test server/fo/cli code
// ---------------------------------------------------------------------------

fn rule_no_panic(root: &Path, diags: &mut Vec<Diagnostic>) {
    const NEEDLES: [(&str, &str); 3] = [
        (".unwrap()", "`unwrap()` aborts on Err/None"),
        (".expect(", "`expect()` aborts on Err/None"),
        ("panic!(", "`panic!` aborts the worker"),
    ];
    for krate in ["server", "fo", "cli", "cluster"] {
        let src = root.join("crates").join(krate).join("src");
        for (path, scan) in scan_crate_src(&src) {
            for (idx, line) in scan.code.iter().enumerate() {
                if scan.test_line[idx] {
                    continue;
                }
                for (needle, why) in NEEDLES {
                    if line.contains(needle) {
                        diags.push(Diagnostic {
                            file: rel(root, &path),
                            line: idx + 1,
                            rule: "no-panic",
                            message: format!(
                                "{why} in non-test ingestion-path code; return a typed error"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R2: no raw std::sync / std::thread inside crates/server or crates/cluster
// ---------------------------------------------------------------------------

fn rule_sync_shims(root: &Path, diags: &mut Vec<Diagnostic>) {
    for krate in ["server", "cluster"] {
        let src = root.join("crates").join(krate).join("src");
        for (path, scan) in scan_crate_src(&src) {
            for (idx, line) in scan.code.iter().enumerate() {
                if scan.test_line[idx] {
                    continue;
                }
                for needle in ["std::sync", "std::thread"] {
                    if line.contains(needle) {
                        diags.push(Diagnostic {
                            file: rel(root, &path),
                            line: idx + 1,
                            rule: "sync-shims",
                            message: format!(
                                "raw `{needle}` in crates/{krate} — route it through \
                                 `felip_sync` so the model checker can schedule it"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R3: every `unsafe` is preceded by a SAFETY: comment
// ---------------------------------------------------------------------------

fn rule_safety_comments(root: &Path, diags: &mut Vec<Diagnostic>) {
    for src in crate_src_dirs(root) {
        for (path, scan) in scan_crate_src(&src) {
            for (idx, line) in scan.code.iter().enumerate() {
                if has_word(line, "unsafe") && !safety_comment_precedes(&scan, idx) {
                    diags.push(Diagnostic {
                        file: rel(root, &path),
                        line: idx + 1,
                        rule: "safety-comments",
                        message: "`unsafe` without a preceding `// SAFETY:` comment \
                                  justifying why the contract holds"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Whole-word search (identifier boundaries on both sides), so
/// `forbid(unsafe_code)` does not count as `unsafe`.
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Whether line `idx` (containing `unsafe`) has `SAFETY:` on the same line
/// or in the contiguous comment block directly above it; attribute lines
/// between the comment and the `unsafe` are allowed.
fn safety_comment_precedes(scan: &Scan, idx: usize) -> bool {
    if scan.comments[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let code = scan.code[i].trim();
        let com = scan.comments[i].trim();
        if code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        if code.is_empty() && !com.is_empty() {
            if com.contains("SAFETY:") {
                return true;
            }
            continue; // still inside the comment block directly above
        }
        return false; // code or a blank line breaks adjacency
    }
    false
}

// ---------------------------------------------------------------------------
// R4: golden constants must not drift
// ---------------------------------------------------------------------------

/// `(file, anchor, expected-fragment)`: the first line containing `anchor`
/// must also contain `expected`. A missing anchor (constant removed or
/// renamed) is equally a drift.
const GOLDEN: [(&str, &str, &str); 11] = [
    (
        "crates/server/src/wire.rs",
        "pub const MAGIC",
        "u32::from_le_bytes(*b\"FELP\")",
    ),
    (
        "crates/server/src/wire.rs",
        "pub const VERSION",
        ": u8 = 5;",
    ),
    // The cluster verbs' frame-kind discriminants: ingest nodes and
    // aggregators of mixed builds interoperate only if these never move.
    ("crates/server/src/wire.rs", "Delta =", "= 7,"),
    ("crates/server/src/wire.rs", "DeltaAck =", "= 8,"),
    // The online-query verbs (wire v5): clients and servers of mixed
    // builds interoperate only if these never move.
    ("crates/server/src/wire.rs", "Query =", "= 9,"),
    ("crates/server/src/wire.rs", "QueryReply =", "= 10,"),
    (
        "crates/cluster/src/state.rs",
        "pub const CLUSTER_MAGIC",
        "u32::from_le_bytes(*b\"FCLU\")",
    ),
    (
        "crates/cluster/src/state.rs",
        "pub const CLUSTER_VERSION",
        ": u8 = 1;",
    ),
    (
        "crates/server/src/snapshot.rs",
        "pub const SNAPSHOT_MAGIC",
        "u32::from_le_bytes(*b\"FSNP\")",
    ),
    (
        "crates/server/src/snapshot.rs",
        "pub const SNAPSHOT_VERSION",
        ": u8 = 2;",
    ),
    (
        "crates/felip/src/plan.rs",
        "fold(0, 0x",
        "0x4645_4c49_505f_4831", // "FELIP_H1" — the schema_hash domain tag
    ),
];

fn rule_golden_constants(root: &Path, diags: &mut Vec<Diagnostic>) {
    for (file, anchor, expected) in GOLDEN {
        let path = root.join(file);
        let Ok(src) = fs::read_to_string(&path) else {
            diags.push(Diagnostic {
                file: PathBuf::from(file),
                line: 1,
                rule: "golden-constants",
                message: format!("file missing — golden constant `{anchor}` unverifiable"),
            });
            continue;
        };
        match src.lines().enumerate().find(|(_, l)| l.contains(anchor)) {
            Some((_, l)) if l.contains(expected) => {}
            Some((i, _)) => diags.push(Diagnostic {
                file: PathBuf::from(file),
                line: i + 1,
                rule: "golden-constants",
                message: format!(
                    "`{anchor}` drifted from golden value `{expected}` — changing it \
                     invalidates deployed snapshots/clients; if intentional, bump the \
                     format version and update xtask::GOLDEN in the same change"
                ),
            }),
            None => diags.push(Diagnostic {
                file: PathBuf::from(file),
                line: 1,
                rule: "golden-constants",
                message: format!("golden constant `{anchor}` removed or renamed"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// R5: metric names in code == DESIGN.md §11 catalogue
// ---------------------------------------------------------------------------

/// Call forms that introduce a metric/span name as their first string
/// literal argument.
const METRIC_CALLS: [&str; 7] = [
    "felip_obs::counter!(",
    "felip_obs::gauge!(",
    "felip_obs::gauge_f64!(",
    "felip_obs::hist!(",
    "felip_obs::span!(",
    "felip_obs::event(",
    ".span_child(",
];

fn rule_metric_registry(root: &Path, diags: &mut Vec<Diagnostic>) {
    // Every crate except obs itself (obs defines the machinery and emits
    // nothing; its internal plumbing would false-positive `.span_child(`).
    let mut emitted: Vec<(String, PathBuf, usize)> = Vec::new();
    for src in crate_src_dirs(root) {
        if src
            .parent()
            .and_then(|p| p.file_name())
            .is_some_and(|n| n == "obs")
        {
            continue;
        }
        for (path, scan) in scan_crate_src(&src) {
            for (idx, line) in scan.code.iter().enumerate() {
                if scan.test_line[idx] {
                    continue;
                }
                for call in METRIC_CALLS {
                    let mut from = 0;
                    while let Some(pos) = line[from..].find(call) {
                        let col = from + pos + call.len();
                        if let Some(name) = first_string_literal(&scan.raw, idx, col) {
                            emitted.push((name, rel(root, &path), idx + 1));
                        }
                        from = col;
                    }
                }
            }
        }
    }
    let code_names: BTreeSet<&str> = emitted.iter().map(|(n, _, _)| n.as_str()).collect();

    let design = root.join("DESIGN.md");
    let Ok(text) = fs::read_to_string(&design) else {
        diags.push(Diagnostic {
            file: PathBuf::from("DESIGN.md"),
            line: 1,
            rule: "metric-registry",
            message: "DESIGN.md missing — metric catalogue unverifiable".to_string(),
        });
        return;
    };
    let catalogue = parse_catalogue(&text);
    if catalogue.is_empty() {
        diags.push(Diagnostic {
            file: PathBuf::from("DESIGN.md"),
            line: 1,
            rule: "metric-registry",
            message: "no metric-catalogue table rows found under §11".to_string(),
        });
        return;
    }
    let mut reported = BTreeSet::new();
    for (name, file, line) in &emitted {
        if !catalogue.contains_key(name.as_str()) && reported.insert(name.as_str()) {
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: "metric-registry",
                message: format!(
                    "metric `{name}` emitted here but missing from the DESIGN.md §11 \
                     metric catalogue"
                ),
            });
        }
    }
    for (name, line) in &catalogue {
        if !code_names.contains(name.as_str()) {
            diags.push(Diagnostic {
                file: PathBuf::from("DESIGN.md"),
                line: *line,
                rule: "metric-registry",
                message: format!("metric `{name}` catalogued in §11 but never emitted in code"),
            });
        }
    }
}

/// Finds the first `"…"` literal at or after `(start_line, col)`, spanning
/// forward over at most a few lines (multi-line macro calls). Only
/// whitespace may separate the call from its name argument.
fn first_string_literal(raw: &[String], start_line: usize, col: usize) -> Option<String> {
    for (n, line) in raw.iter().enumerate().skip(start_line).take(4) {
        let s: &str = if n == start_line {
            line.get(col..).unwrap_or("")
        } else {
            line
        };
        if let Some(open) = s.find('"') {
            let rest = &s[open + 1..];
            return Some(rest[..rest.find('"')?].to_string());
        }
        if !s.trim().is_empty() {
            return None;
        }
    }
    None
}

/// Backticked names from the first column of the table that follows the
/// `**Metric catalogue.**` marker in §11 (other §11 tables — e.g. the
/// trace schema — are not catalogues). Returns name → line number.
fn parse_catalogue(design: &str) -> BTreeMap<String, usize> {
    let mut names = BTreeMap::new();
    let mut in_section = false;
    let mut in_table = false;
    for (i, line) in design.lines().enumerate() {
        if let Some(h) = line.strip_prefix("## ") {
            in_section = h.starts_with("11");
            in_table = false;
            continue;
        }
        if !in_section {
            continue;
        }
        if line.contains("**Metric catalogue.**") {
            in_table = true;
            continue;
        }
        let t = line.trim();
        if !in_table || !t.starts_with('|') {
            if in_table && !t.is_empty() && !t.starts_with('|') {
                in_table = false; // prose after the table ends it
            }
            continue;
        }
        let first_cell = t.trim_start_matches('|').split('|').next().unwrap_or("");
        let mut rest = first_cell;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let name = &after[..close];
            if !name.is_empty() {
                names.entry(name.to_string()).or_insert(i + 1);
            }
            rest = &after[close + 1..];
        }
    }
    names
}

// ---------------------------------------------------------------------------
// R6: raw syscall plumbing stays inside crates/server/src/reactor.rs
// ---------------------------------------------------------------------------

/// The reactor module (DESIGN.md §15) is the single place allowed to
/// speak the raw kernel ABI; these tokens anywhere else mean someone is
/// duplicating syscall plumbing outside the one audited file.
fn rule_reactor_syscalls(root: &Path, diags: &mut Vec<Diagnostic>) {
    const NEEDLES: [&str; 4] = ["epoll_", "sched_setaffinity", "sched_getaffinity", "asm!("];
    let allowed = Path::new("crates/server/src/reactor.rs");
    for src in crate_src_dirs(root) {
        for (path, scan) in scan_crate_src(&src) {
            let rel_path = rel(root, &path);
            if rel_path == allowed {
                continue;
            }
            for (idx, line) in scan.code.iter().enumerate() {
                for needle in NEEDLES {
                    if line.contains(needle) {
                        diags.push(Diagnostic {
                            file: rel_path.clone(),
                            line: idx + 1,
                            rule: "reactor-syscalls",
                            message: format!(
                                "`{needle}` outside crates/server/src/reactor.rs — all raw \
                                 syscall plumbing lives in the reactor module (DESIGN.md §15)"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R7: checked-in BENCH_*.json headline keys must not drift
// ---------------------------------------------------------------------------

/// Headline keys per bench artefact. CI gates (`.github/workflows/ci.yml`)
/// and the README's numbers read these by name; reshaping a bench without
/// updating both is the drift this rule catches. Absent files are skipped —
/// presence is the bench job's concern, shape is lint's.
const BENCH_SCHEMAS: [(&str, &[&str]); 5] = [
    (
        "BENCH_ingest.json",
        &["bench", "oracle", "results", "batched_reports_per_sec"],
    ),
    (
        "BENCH_obs.json",
        &[
            "bench",
            "disabled_reports_per_sec",
            "enabled_reports_per_sec",
            "overhead_pct",
        ],
    ),
    (
        "BENCH_serve.json",
        &[
            "bench",
            "transport",
            "reports_per_sec",
            "frame_p50_us",
            "frame_p99_us",
        ],
    ),
    (
        "BENCH_cluster.json",
        &[
            "bench",
            "nodes",
            "aggregate_reports_per_sec",
            "delta_merge_p50_us",
            "delta_merge_p99_us",
            "catchup_ms",
        ],
    ),
    (
        "BENCH_query.json",
        &[
            "bench",
            "queries",
            "query_p50_ms",
            "query_p99_ms",
            "max_staleness_epochs",
            "cache_hits",
            "cache_misses",
            "ingest_reports_per_sec",
        ],
    ),
];

fn rule_bench_schema(root: &Path, diags: &mut Vec<Diagnostic>) {
    for (file, keys) in BENCH_SCHEMAS {
        let Ok(text) = fs::read_to_string(root.join(file)) else {
            continue;
        };
        if text.trim_start().as_bytes().first() != Some(&b'{') {
            diags.push(Diagnostic {
                file: PathBuf::from(file),
                line: 1,
                rule: "bench-schema",
                message: "bench artefact must be a JSON object".to_string(),
            });
            continue;
        }
        for key in keys {
            let quoted = format!("\"{key}\"");
            if !text.contains(&quoted) {
                diags.push(Diagnostic {
                    file: PathBuf::from(file),
                    line: 1,
                    rule: "bench-schema",
                    message: format!(
                        "headline key `{key}` missing — CI gates and docs read it by name; \
                         update them together with the bench shape"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Self-test fixtures (acceptance: nonzero + file:line on violations; the
// zero-diagnostics run on the real tree lives in `tests/real_tree.rs`).
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(tag: &str) -> Fixture {
            let root = std::env::temp_dir()
                .join(format!("xtask-lint-fixture-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, path: &str, contents: &str) {
            let p = self.root.join(path);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, contents).unwrap();
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    /// The golden files + catalogue a fixture needs to pass R4/R5 with one
    /// emitted metric.
    fn write_clean_base(f: &Fixture) {
        f.write(
            "crates/server/src/wire.rs",
            "pub const MAGIC: u32 = u32::from_le_bytes(*b\"FELP\");\n\
             pub const VERSION: u8 = 5;\n\
             enum FrameKind {\n    Delta = 7,\n    DeltaAck = 8,\n    \
             Query = 9,\n    QueryReply = 10,\n}\n",
        );
        f.write(
            "crates/cluster/src/state.rs",
            "pub const CLUSTER_MAGIC: u32 = u32::from_le_bytes(*b\"FCLU\");\n\
             pub const CLUSTER_VERSION: u8 = 1;\n",
        );
        f.write(
            "crates/server/src/snapshot.rs",
            "pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b\"FSNP\");\n\
             pub const SNAPSHOT_VERSION: u8 = 2;\n",
        );
        f.write(
            "crates/felip/src/plan.rs",
            "fn schema_hash() -> u64 { fold(0, 0x4645_4c49_505f_4831) }\n\
             fn emit() { felip_obs::counter!(\"server.accept\", 1, \"conns\"); }\n",
        );
        f.write(
            "DESIGN.md",
            "## 11. Observability\n\n**Metric catalogue.**\n\n\
             | name | type (unit) | meaning |\n|---|---|---|\n\
             | `server.accept` | counter (conns) | accepted connections |\n\n\
             ## 12. Other\n",
        );
    }

    #[test]
    fn clean_fixture_passes_every_rule() {
        let f = Fixture::new("clean");
        write_clean_base(&f);
        let ok_rs = concat!(
            "//! Exercises every non-violation the rules must tolerate:\n",
            "//! doc examples may call `.unwrap()` or even panic!(freely).\n",
            "use felip_sync::{Mutex, thread};\n",
            "\n",
            "fn fine<'a>(x: &'a str) -> &'a str {\n",
            "    let _s = \"call .unwrap() or panic!(now) or std::thread::spawn\";\n",
            "    let _q = '\"';\n",
            "    let _r = r\"raw .expect( string\";\n",
            "    let _b = b\"byte panic!( string\";\n",
            "    /* block comment: .unwrap() */\n",
            "    x\n",
            "}\n",
            "\n",
            "// SAFETY: the pointer is valid for the whole call; see `fine`.\n",
            "unsafe fn justified() {}\n",
            "\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn tests_may_unwrap() {\n",
            "        Some(1).unwrap();\n",
            "        std::thread::spawn(|| panic!(\"fine in tests\"));\n",
            "    }\n",
            "}\n",
        );
        f.write("crates/server/src/ok.rs", ok_rs);
        let diags = lint_root(&f.root);
        assert!(diags.is_empty(), "false positives: {diags:?}");
    }

    #[test]
    fn no_panic_rule_fires_with_file_and_line() {
        let f = Fixture::new("nopanic");
        write_clean_base(&f);
        f.write(
            "crates/server/src/bad.rs",
            "fn f() {\n    let x: Option<u32> = None;\n    x.unwrap();\n}\n",
        );
        f.write(
            "crates/cli/src/bad.rs",
            "fn g() {\n    panic!(\"boom\");\n}\n",
        );
        f.write(
            "crates/fo/src/bad.rs",
            "fn h() {\n    let r: Result<(), ()> = Ok(());\n    r.expect(\"oops\");\n}\n",
        );
        f.write(
            "crates/cluster/src/bad.rs",
            "fn k() {\n    let v: Vec<u8> = Vec::new();\n    let _ = v.first().unwrap();\n}\n",
        );
        let msgs: Vec<String> = lint_root(&f.root).iter().map(|d| d.to_string()).collect();
        for want in [
            ("crates/server/src/bad.rs:3", "no-panic"),
            ("crates/cli/src/bad.rs:2", "no-panic"),
            ("crates/fo/src/bad.rs:3", "no-panic"),
            ("crates/cluster/src/bad.rs:3", "no-panic"),
        ] {
            assert!(
                msgs.iter()
                    .any(|m| m.contains(want.0) && m.contains(want.1)),
                "missing {want:?} in {msgs:?}"
            );
        }
    }

    #[test]
    fn sync_shim_rule_fires_only_in_modelled_crates() {
        let f = Fixture::new("sync");
        write_clean_base(&f);
        f.write(
            "crates/server/src/bad_sync.rs",
            "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n",
        );
        f.write(
            "crates/cluster/src/bad_sync.rs",
            "fn h() { std::thread::spawn(|| {}); }\n",
        );
        f.write(
            "crates/fo/src/fine.rs",
            "use std::sync::Arc;\nfn g() -> Arc<u32> { Arc::new(1) }\n",
        );
        let diags = lint_root(&f.root);
        let sync: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "sync-shims").collect();
        assert_eq!(sync.len(), 3, "{diags:?}");
        assert!(sync
            .iter()
            .all(|d| d.file.starts_with("crates/server") || d.file.starts_with("crates/cluster")));
        assert!(
            sync.iter()
                .any(|d| d.file == Path::new("crates/cluster/src/bad_sync.rs") && d.line == 1),
            "{sync:?}"
        );
    }

    #[test]
    fn safety_rule_accepts_attrs_between_comment_and_unsafe() {
        let f = Fixture::new("safety");
        write_clean_base(&f);
        f.write(
            "crates/fo/src/kernels.rs",
            "// SAFETY: feature detected by the caller.\n\
             #[cfg(target_arch = \"x86_64\")]\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn ok() {}\n\
             \n\
             unsafe fn bad() {}\n",
        );
        let diags = lint_root(&f.root);
        let safety: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "safety-comments")
            .collect();
        assert_eq!(safety.len(), 1, "{diags:?}");
        assert_eq!(safety[0].line, 6);
        assert_eq!(safety[0].file, PathBuf::from("crates/fo/src/kernels.rs"));
    }

    #[test]
    fn golden_constant_drift_is_reported() {
        let f = Fixture::new("golden");
        write_clean_base(&f);
        f.write(
            "crates/server/src/wire.rs",
            "pub const MAGIC: u32 = u32::from_le_bytes(*b\"XXXX\");\n\
             pub const VERSION: u8 = 9;\n\
             enum FrameKind {\n    Delta = 7,\n    DeltaAck = 8,\n    \
             Query = 9,\n    QueryReply = 10,\n}\n",
        );
        let diags = lint_root(&f.root);
        let golden: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "golden-constants")
            .collect();
        assert_eq!(golden.len(), 2, "{diags:?}");
        assert!(golden[0].message.contains("drifted"));
        assert_eq!(golden[0].file, PathBuf::from("crates/server/src/wire.rs"));
        assert_eq!((golden[0].line, golden[1].line), (1, 2));
    }

    #[test]
    fn metric_registry_checks_both_directions() {
        let f = Fixture::new("metrics");
        write_clean_base(&f);
        // Emits a metric that is not catalogued…
        f.write(
            "crates/grid/src/x.rs",
            "fn f() { felip_obs::hist!(\"grid.unregistered\", 1, \"items\"); }\n",
        );
        // …while the catalogue lists one that is never emitted.
        f.write(
            "DESIGN.md",
            "## 11. Observability\n\n**Metric catalogue.**\n\n\
             | name | type (unit) | meaning |\n|---|---|---|\n\
             | `server.accept` | counter (conns) | accepted connections |\n\
             | `ghost.metric` | counter | never emitted |\n",
        );
        let reg: Vec<String> = lint_root(&f.root)
            .iter()
            .filter(|d| d.rule == "metric-registry")
            .map(|d| d.to_string())
            .collect();
        assert!(
            reg.iter()
                .any(|m| m.contains("grid.unregistered") && m.contains("crates/grid/src/x.rs:1")),
            "{reg:?}"
        );
        assert!(
            reg.iter()
                .any(|m| m.contains("ghost.metric") && m.contains("DESIGN.md:8")),
            "{reg:?}"
        );
    }

    #[test]
    fn cfg_test_gated_module_files_are_skipped() {
        let f = Fixture::new("gated");
        write_clean_base(&f);
        f.write(
            "crates/server/src/lib.rs",
            "#[cfg(all(test, feature = \"model\"))]\nmod model_tests;\npub mod queue;\n",
        );
        f.write(
            "crates/server/src/model_tests.rs",
            "fn t() { Some(1).unwrap(); panic!(\"test-only\"); std::thread::yield_now(); }\n",
        );
        f.write("crates/server/src/queue.rs", "pub fn q() {}\n");
        let diags = lint_root(&f.root);
        assert!(
            diags.iter().all(|d| !d.file.ends_with("model_tests.rs")),
            "gated module file was linted: {diags:?}"
        );
    }

    #[test]
    fn multiline_metric_calls_resolve_their_name() {
        let f = Fixture::new("multiline");
        write_clean_base(&f);
        f.write(
            "crates/grid/src/y.rs",
            "fn f() {\n    felip_obs::hist!(\n        \"grid.wrapped\",\n        1,\n        \"items\",\n    );\n}\n",
        );
        let diags = lint_root(&f.root);
        assert!(
            diags.iter().any(|d| d.message.contains("grid.wrapped")),
            "wrapped metric name not extracted: {diags:?}"
        );
    }

    #[test]
    fn reactor_syscall_rule_fires_outside_reactor_module() {
        let f = Fixture::new("reactor");
        write_clean_base(&f);
        // Inside the reactor module: allowed, even without test gating.
        f.write(
            "crates/server/src/reactor.rs",
            "// SAFETY: fixture.\nunsafe fn w() { epoll_wait(); sched_setaffinity(); }\n",
        );
        // Anywhere else: each token is a violation with file:line.
        f.write(
            "crates/bench/src/sneaky.rs",
            "fn f() {\n    epoll_ctl();\n}\n",
        );
        let diags = lint_root(&f.root);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "reactor-syscalls")
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].file, PathBuf::from("crates/bench/src/sneaky.rs"));
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn reactor_syscall_rule_ignores_strings_and_comments() {
        let f = Fixture::new("reactorstr");
        write_clean_base(&f);
        f.write(
            "crates/obs/src/doc.rs",
            "// mentioning epoll_wait in prose is fine\n\
             fn f() { let _ = \"epoll_wait sched_setaffinity asm!(\"; }\n",
        );
        let diags = lint_root(&f.root);
        assert!(
            !diags.iter().any(|d| d.rule == "reactor-syscalls"),
            "false positives: {diags:?}"
        );
    }

    #[test]
    fn bench_schema_rule_fires_on_missing_headline_key() {
        let f = Fixture::new("benchschema");
        write_clean_base(&f);
        // Renamed key: `reports_per_sec` → `rate` must be flagged.
        f.write(
            "BENCH_serve.json",
            "{\n  \"bench\": \"serve_loadgen\",\n  \"transport\": \"tcp loopback\",\n\
             \"rate\": 1.0,\n  \"frame_p50_us\": 1.0,\n  \"frame_p99_us\": 2.0\n}\n",
        );
        let diags = lint_root(&f.root);
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == "bench-schema").collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("reports_per_sec"));
        assert_eq!(hits[0].file, PathBuf::from("BENCH_serve.json"));
    }

    #[test]
    fn bench_schema_rule_accepts_conforming_file_and_skips_absent_ones() {
        let f = Fixture::new("benchok");
        write_clean_base(&f);
        // Only serve is present; ingest/obs absent files are skipped.
        f.write(
            "BENCH_serve.json",
            "{\n  \"bench\": \"serve_loadgen\",\n  \"transport\": \"tcp loopback\",\n\
             \"reports_per_sec\": 1.0,\n  \"frame_p50_us\": 1.0,\n  \"frame_p99_us\": 2.0\n}\n",
        );
        let diags = lint_root(&f.root);
        assert!(
            !diags.iter().any(|d| d.rule == "bench-schema"),
            "false positives: {diags:?}"
        );
    }

    #[test]
    fn bench_schema_rule_rejects_non_object_artefact() {
        let f = Fixture::new("benchnonobj");
        write_clean_base(&f);
        f.write("BENCH_obs.json", "[1, 2, 3]\n");
        let diags = lint_root(&f.root);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "bench-schema" && d.message.contains("JSON object")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_subcommand_exits_nonzero() {
        assert_eq!(run(["frobnicate".to_string()].into_iter()), 2);
        assert_eq!(run(std::iter::empty()), 2);
    }
}
