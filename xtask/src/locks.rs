//! The lock-order pass (DESIGN.md §18): build the static lock-acquisition
//! graph over the `felip-sync` shim mutexes in `crates/server` and
//! `crates/cluster`, and fail on cycles.
//!
//! A lock *class* is derived from the receiver chain of a `.lock()` call:
//! the last field/variable ident before `.lock()`, lowercased, with one
//! trailing `s` stripped (`shards` and `shard` are the same class — they
//! guard the same kind of data). A `let g = x.lock()` holds the guard to
//! the end of the enclosing block (or until `drop(g)`); a temporary
//! `x.lock().f()` is held only for the statement. An edge A → B means
//! "somewhere, B is acquired while A is held" — including transitively
//! through calls, via per-function `acquires` summaries iterated to a
//! fixpoint. The model checker (PR 8) explores single-test interleavings
//! exhaustively; this pass complements it with whole-program coverage.
//!
//! Scope: non-test functions in `server` and `cluster` only — those are
//! the crates on the felip-sync shims. (`felip::answer`'s matrix cache and
//! the obs crate use `std::sync` directly and have their own trivially
//! flat orders.) Same-class edges (`shards[i]` then `shards[j]`) are
//! skipped: shard locks are only ever taken one at a time or in a fixed
//! index order by construction, and a self-edge would flag every loop over
//! shards.

use std::collections::BTreeMap;

use crate::analyze::Finding;
use crate::lex::TokKind;
use crate::tree::{SourceFile, Workspace};

/// Per-function summary: every lock class the fn may acquire (directly or
/// via calls), with one witness site each.
type AcqSet = BTreeMap<String, (usize, u32)>;

/// `held -> acquired` edges, each tagged with one witness site.
pub type EdgeMap = BTreeMap<(String, String), (std::path::PathBuf, u32)>;

#[derive(Debug, Default)]
pub struct LockReport {
    pub findings: Vec<Finding>,
    /// `held → acquired` edges with one witness `file:line` each.
    pub edges: EdgeMap,
}

impl LockReport {
    /// Human-readable graph dump for `xtask analyze --dump-locks`.
    pub fn dump(&self) -> String {
        let mut out = String::from("lock-order graph (held -> acquired):\n");
        if self.edges.is_empty() {
            out.push_str("  (no nested acquisitions)\n");
            return out;
        }
        for ((a, b), (p, l)) in &self.edges {
            out.push_str(&format!("  {a} -> {b}    [{}:{}]\n", p.display(), l));
        }
        out
    }
}

fn in_scope(ws: &Workspace, id: usize) -> bool {
    let f = &ws.fns[id];
    !f.is_test && matches!(f.crate_name.as_str(), "server" | "cluster")
}

pub fn run(ws: &Workspace) -> LockReport {
    // Per-fn transitive acquire sets, to a fixpoint.
    let mut acquires: Vec<AcqSet> = vec![AcqSet::new(); ws.fns.len()];
    for _ in 0..20 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if !in_scope(ws, id) {
                continue;
            }
            let mut set = acquires[id].clone();
            collect_fn(ws, id, &acquires, &mut set, &mut None);
            if set.len() != acquires[id].len() {
                acquires[id] = set;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge collection: walk each fn again tracking the held set.
    let mut report = LockReport::default();
    for id in 0..ws.fns.len() {
        if !in_scope(ws, id) {
            continue;
        }
        let mut edges = Some(&mut report.edges);
        let mut dummy = AcqSet::new();
        collect_fn(ws, id, &acquires, &mut dummy, &mut edges);
    }

    // Cycle detection via DFS over the class graph.
    let adj: BTreeMap<String, Vec<String>> = {
        let mut m: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (a, b) in report.edges.keys() {
            m.entry(a.clone()).or_default().push(b.clone());
        }
        m
    };
    let mut state: BTreeMap<String, u8> = BTreeMap::new(); // 1=open 2=done
    let mut stack: Vec<String> = Vec::new();
    let mut findings = Vec::new();
    let nodes: Vec<String> = adj.keys().cloned().collect();
    for n in nodes {
        if state.get(&n).copied().unwrap_or(0) == 0 {
            dfs(
                &n,
                &adj,
                &mut state,
                &mut stack,
                &report.edges,
                &mut findings,
            );
        }
    }
    report.findings.extend(findings);
    report
}

fn dfs(
    n: &str,
    adj: &BTreeMap<String, Vec<String>>,
    state: &mut BTreeMap<String, u8>,
    stack: &mut Vec<String>,
    edges: &EdgeMap,
    findings: &mut Vec<Finding>,
) {
    state.insert(n.to_string(), 1);
    stack.push(n.to_string());
    if let Some(next) = adj.get(n) {
        for m in next {
            match state.get(m).copied().unwrap_or(0) {
                0 => dfs(m, adj, state, stack, edges, findings),
                1 => {
                    // Cycle: slice the stack from m's position.
                    let pos = stack.iter().position(|x| x == m).unwrap_or(0);
                    let mut cyc: Vec<String> = stack[pos..].to_vec();
                    cyc.push(m.clone());
                    let (witness_file, witness_line) = edges
                        .get(&(n.to_string(), m.clone()))
                        .cloned()
                        .unwrap_or_default();
                    findings.push(Finding {
                        file: witness_file,
                        line: witness_line,
                        rule: "lock-order",
                        message: format!(
                            "lock-acquisition cycle: {} — a thread holding one of these \
                             while another acquires in the opposite order deadlocks",
                            cyc.join(" -> ")
                        ),
                        trace: Vec::new(),
                    });
                }
                _ => {}
            }
        }
    }
    stack.pop();
    state.insert(n.to_string(), 2);
}

/// Walks fn `id`'s body. Adds every acquired class to `set`; when `edges`
/// is Some, records held→acquired pairs (direct holds × both direct and
/// summary-transitive acquisitions of callees).
fn collect_fn(
    ws: &Workspace,
    id: usize,
    acquires: &[AcqSet],
    set: &mut AcqSet,
    edges: &mut Option<&mut EdgeMap>,
) {
    let fndef = &ws.fns[id];
    let Some((open, close)) = fndef.body else {
        return;
    };
    let f = &ws.files[fndef.file];
    let mut held: Vec<(String, usize)> = Vec::new(); // (class, scope-close)
    walk(
        ws,
        f,
        fndef.file,
        open + 1,
        close,
        acquires,
        set,
        edges,
        &mut held,
    );
}

#[allow(clippy::too_many_arguments)]
fn walk(
    ws: &Workspace,
    f: &SourceFile,
    file_idx: usize,
    a: usize,
    b: usize,
    acquires: &[AcqSet],
    set: &mut AcqSet,
    edges: &mut Option<&mut EdgeMap>,
    held: &mut Vec<(String, usize)>,
) {
    let mut i = a;
    while i < b {
        // Drop guards whose scope ended.
        held.retain(|(_, scope)| *scope >= i);
        let t = f.txt(i);
        if f.tok(i).kind == TokKind::Punct && t == "{" {
            let close = f.close_of[i];
            if close != usize::MAX && close <= b {
                walk(ws, f, file_idx, i + 1, close, acquires, set, edges, held);
                i = close + 1;
                continue;
            }
        }
        if f.tok(i).kind == TokKind::Ident {
            // drop(g) — release the named guard early.
            if t == "drop" && f.is_punct(i + 1, "(") {
                let close = f.close_of[i + 1];
                if close != usize::MAX && close == i + 3 && f.tok(i + 2).kind == TokKind::Ident {
                    let var = f.txt(i + 2);
                    // We track guards by class; map var → class via a
                    // heuristic: drop the guard most recently bound. The
                    // guard_binding map below records var→class.
                    if let Some(pos) = held.iter().rposition(|(c, _)| {
                        // var name often matches class (g vs. engine) — we
                        // stored binding names alongside; see below.
                        c.ends_with(&format!("#{var}")) || c == var
                    }) {
                        held.remove(pos);
                    }
                    i = close + 1;
                    continue;
                }
            }
            // `X.lock()` — an acquisition.
            if t == "lock" && i >= 1 && f.is_punct(i - 1, ".") && f.is_punct(i + 1, "(") {
                if let Some(class) = receiver_class(f, i - 1) {
                    let line = f.line(i);
                    set.entry(class.clone()).or_insert((file_idx, line));
                    if let Some(e) = edges.as_deref_mut() {
                        for (h, _) in held.iter() {
                            let h = h.split('#').next().unwrap_or(h).to_string();
                            if h != class {
                                e.entry((h, class.clone()))
                                    .or_insert((f.path.clone(), line));
                            }
                        }
                    }
                    // Guard or temporary? Look back for `let name =` on
                    // this statement, scanning from the statement start.
                    if let Some((var, scope_close)) = guard_binding(f, i, b) {
                        let tag = if var.is_empty() {
                            class.clone()
                        } else {
                            format!("{class}#{var}")
                        };
                        held.push((tag, scope_close));
                    }
                    // Temporaries are instantaneous: nothing pushed.
                }
                i += 1;
                continue;
            }
            // A call: record edges from held locks to everything the
            // callee (transitively) acquires.
            let is_call =
                f.is_punct(i + 1, "(") && !matches!(t, "if" | "while" | "for" | "match" | "return");
            if is_call {
                if let Some(e) = edges.as_deref_mut() {
                    if !held.is_empty() {
                        for &cid in ws.fns_named(t) {
                            if !matches!(ws.fns[cid].crate_name.as_str(), "server" | "cluster") {
                                continue;
                            }
                            for (acq, (wf, wl)) in &acquires[cid] {
                                for (h, _) in held.iter() {
                                    let h = h.split('#').next().unwrap_or(h).to_string();
                                    if h != *acq {
                                        e.entry((h, acq.clone()))
                                            .or_insert((ws.files[*wf].path.clone(), *wl));
                                    }
                                }
                            }
                        }
                    }
                }
                // Fold callee acquisitions into this fn's summary too
                // (transitive closure for the fixpoint).
                for &cid in ws.fns_named(t) {
                    if !matches!(ws.fns[cid].crate_name.as_str(), "server" | "cluster") {
                        continue;
                    }
                    for (acq, site) in acquires[cid].clone() {
                        set.entry(acq).or_insert(site);
                    }
                }
            }
        }
        i += 1;
    }
    held.retain(|(_, scope)| *scope >= b);
}

/// The lock class of the receiver chain ending at the `.` before `lock`:
/// last ident before the dot, walking back over `)`/`]` groups and `.`
/// chains (`self.ctx.dedup.lock()` → dedup; `shards[i].lock()` → shard).
fn receiver_class(f: &SourceFile, dot: usize) -> Option<String> {
    let mut k = dot; // index of the `.`
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match f.txt(k) {
            ")" | "]" => {
                // Walk back to the matching opener.
                let target = k;
                let mut j = k;
                loop {
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                    if f.close_of[j] == target {
                        k = j;
                        break;
                    }
                }
                // Continue: the ident before the opener names the chain.
            }
            _ => {
                if f.tok(k).kind == TokKind::Ident {
                    let name = f.txt(k);
                    if name == "self" {
                        return None; // bare `self.lock()` — shouldn't occur
                    }
                    return Some(normalize(name));
                }
                return None;
            }
        }
    }
}

/// Lowercase; strip one trailing 's' when len > 3 (shards→shard,
/// nodes→node) so plural containers share a class with their elements.
fn normalize(name: &str) -> String {
    let mut s = name.to_ascii_lowercase();
    if s.len() > 3 && s.ends_with('s') {
        s.pop();
    }
    s
}

/// If the `.lock()` at `lock_ident` is bound by a `let`, return the bound
/// variable name and the sig-index where the guard's scope ends (the
/// enclosing block close, approximated by `b`). Returns None for
/// temporaries (no `let` on the statement).
fn guard_binding(f: &SourceFile, lock_ident: usize, block_end: usize) -> Option<(String, usize)> {
    // Scan backwards to the statement start (`;`, `{`, or `}`), looking
    // for `let <pat> =` with no intervening statement boundary.
    let mut k = lock_ident;
    let mut var = String::new();
    while k > 0 {
        k -= 1;
        let t = f.txt(k);
        if matches!(t, ";" | "{" | "}") {
            return None;
        }
        if f.is_ident(k, "let") {
            // First plain ident after `let` (skipping `mut`).
            let mut j = k + 1;
            while j < lock_ident {
                if f.tok(j).kind == TokKind::Ident && !f.is_ident(j, "mut") {
                    var = f.txt(j).to_string();
                    break;
                }
                j += 1;
            }
            return Some((var, block_end));
        }
        // `if let Some(g) = x.lock()`-style: the `let` is still found by
        // the backward scan above before hitting a boundary.
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Workspace;

    #[test]
    fn nested_guard_produces_edge_and_cycle_is_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/server/src/a.rs",
            "fn ab(x: &M, y: &M) { let g = x.engine.lock(); y.dedup.lock().touch(); }\n\
             fn ba(x: &M, y: &M) { let g = y.dedup.lock(); x.engine.lock().touch(); }\n",
        )]);
        let rep = run(&w);
        assert!(
            rep.edges.contains_key(&("engine".into(), "dedup".into())),
            "{:?}",
            rep.edges
        );
        assert!(rep.edges.contains_key(&("dedup".into(), "engine".into())));
        assert!(
            rep.findings.iter().any(|f| f.rule == "lock-order"),
            "cycle not flagged: {:?}",
            rep.findings
        );
    }

    #[test]
    fn acyclic_nesting_is_clean() {
        let w = Workspace::from_sources(&[(
            "crates/server/src/b.rs",
            "fn ab(x: &M, y: &M) { let g = x.engine.lock(); y.dedup.lock().touch(); }\n\
             fn also_ab(x: &M, y: &M) { let g = x.engine.lock(); y.dedup.lock().touch(); }\n",
        )]);
        let rep = run(&w);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.edges.len(), 1);
    }

    #[test]
    fn transitive_acquisition_via_call_is_an_edge() {
        let w = Workspace::from_sources(&[(
            "crates/server/src/c.rs",
            "fn inner_acquire(y: &M) { let g = y.dedup.lock(); g.touch(); }\n\
             fn outer(x: &M, y: &M) { let g = x.engine.lock(); inner_acquire(y); }\n",
        )]);
        let rep = run(&w);
        assert!(
            rep.edges.contains_key(&("engine".into(), "dedup".into())),
            "transitive edge missing: {:?}",
            rep.edges
        );
    }

    #[test]
    fn temporary_lock_is_not_held() {
        let w = Workspace::from_sources(&[(
            "crates/server/src/d.rs",
            "fn seq(x: &M, y: &M) { x.engine.lock().touch(); y.dedup.lock().touch(); }\n\
             fn rev(x: &M, y: &M) { y.dedup.lock().touch(); x.engine.lock().touch(); }\n",
        )]);
        let rep = run(&w);
        assert!(
            rep.edges.is_empty(),
            "temporaries created edges: {:?}",
            rep.edges
        );
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn drop_releases_guard_early() {
        let w = Workspace::from_sources(&[(
            "crates/server/src/e.rs",
            "fn ok(x: &M, y: &M) { let g = x.engine.lock(); g.touch(); drop(g); \
             y.dedup.lock().touch(); }\n",
        )]);
        let rep = run(&w);
        assert!(
            rep.edges.is_empty(),
            "dropped guard still held: {:?}",
            rep.edges
        );
    }

    #[test]
    fn plural_and_singular_share_a_class() {
        let w = Workspace::from_sources(&[(
            "crates/server/src/f.rs",
            "fn loop_shards(v: &[M]) { for s in v { let g = shards[0].lock(); \
             shard.lock().touch(); } }\n",
        )]);
        let rep = run(&w);
        // Same class both ways: no self-edge, no finding.
        assert!(rep.edges.is_empty(), "{:?}", rep.edges);
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let w = Workspace::from_sources(&[(
            "crates/felip/src/g.rs",
            "fn ab(x: &M, y: &M) { let g = x.engine.lock(); y.dedup.lock().touch(); }\n\
             fn ba(x: &M, y: &M) { let g = y.dedup.lock(); x.engine.lock().touch(); }\n",
        )]);
        let rep = run(&w);
        assert!(rep.findings.is_empty() && rep.edges.is_empty());
    }
}
