//! The checked-arith pass (DESIGN.md §18): count-typed u64 arithmetic in
//! merge/ingest/delta-apply paths must be explicit about overflow.
//!
//! Scope: non-test functions in crates `felip`, `fo`, `cluster`, `server`
//! whose name is one of the merge/ingest family (`merge`, `merge_state`,
//! `merged`, `merged_versioned`, `apply`, `reports_ingested`, or starting
//! with `ingest`, `accumulate`, `support_count`). Inside those, a bare
//! `+=`, binary `+`, or `.sum()` on integer counts is flagged: it must be
//! `checked_*` (merge paths — overflow is a protocol error), `saturating_*`
//! (diagnostics — a pegged gauge beats a crashed server), or `wrapping_*`
//! (hot kernels — same instruction as `+`, keeps autovectorization, and
//! per-call increments are bounded by the report batch size).
//!
//! Statements operating on floats are exempt (estimator math is f64 and
//! IEEE saturates to ±inf by design). `wrapping_*`/`saturating_*` calls in
//! scope additionally require an adjacent `// ARITH:` comment justifying
//! the choice; `checked_*` is exempt — handling the `None` is its own
//! justification.

use crate::analyze::Finding;
use crate::lex::TokKind;
use crate::tree::Workspace;

const EXACT: &[&str] = &[
    "merge",
    "merge_state",
    "merged",
    "merged_versioned",
    "apply",
    "reports_ingested",
];
const PREFIXES: &[&str] = &["ingest", "accumulate", "support_count"];
const CRATES: &[&str] = &["felip", "fo", "cluster", "server"];

fn fn_in_scope(name: &str) -> bool {
    EXACT.contains(&name) || PREFIXES.iter().any(|p| name.starts_with(p))
}

pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for fndef in &ws.fns {
        if fndef.is_test
            || !CRATES.contains(&fndef.crate_name.as_str())
            || !fn_in_scope(&fndef.name)
        {
            continue;
        }
        let Some((open, close)) = fndef.body else {
            continue;
        };
        let f = &ws.files[fndef.file];

        // Pre-split the body into `;`/brace-delimited statements so the
        // float exemption and ARITH-comment checks see whole statements.
        let mut stmt_start = open + 1;
        let mut i = open + 1;
        while i <= close {
            let t = if i < close { f.txt(i) } else { ";" };
            let is_boundary = i == close || matches!(t, ";" | "{" | "}");
            if is_boundary {
                check_stmt(f, &fndef.qual, stmt_start, i, &mut out);
                stmt_start = i + 1;
            }
            i += 1;
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

fn check_stmt(
    f: &crate::tree::SourceFile,
    fn_qual: &str,
    a: usize,
    b: usize,
    out: &mut Vec<Finding>,
) {
    if a >= b {
        return;
    }
    // Float statements are exempt: any float literal or f64/f32 ident.
    let mut has_float = false;
    for k in a..b {
        if f.tok(k).kind == TokKind::Float || f.is_ident(k, "f64") || f.is_ident(k, "f32") {
            has_float = true;
            break;
        }
    }

    for k in a..b {
        let t = f.txt(k);
        let line = f.line(k);
        match f.tok(k).kind {
            TokKind::Punct if !has_float => {
                let bad = match t {
                    "+=" => true,
                    // Binary `+` only: previous significant token must be
                    // a value end (ident / literal / `)` / `]`), not an
                    // operator or `(` (which would make it unary).
                    "+" => k > a && is_value_end(f, k - 1),
                    _ => false,
                };
                if bad {
                    out.push(Finding {
                        file: f.path.clone(),
                        line,
                        rule: "checked-arith",
                        message: format!(
                            "bare `{t}` on counts in `{fn_qual}` — use `checked_add` \
                             (merge paths), `saturating_add` (diagnostics), or \
                             `wrapping_add` + `// ARITH:` (hot kernels)"
                        ),
                        trace: Vec::new(),
                    });
                }
            }
            // `.sum()` / `.sum::<u64>()` on an integer iterator.
            TokKind::Ident if !has_float && t == "sum" && k > a && f.is_punct(k - 1, ".") => {
                out.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: "checked-arith",
                    message: format!(
                        "bare `.sum()` on counts in `{fn_qual}` — fold with \
                         `checked_add`/`saturating_add` instead"
                    ),
                    trace: Vec::new(),
                });
            }
            TokKind::Ident if t.starts_with("wrapping_") || t.starts_with("saturating_") => {
                // In-scope lenient arithmetic needs a justification note
                // on the statement or the line above.
                let justified = f.comment_above_contains(line, "ARITH:");
                if !justified {
                    out.push(Finding {
                        file: f.path.clone(),
                        line,
                        rule: "checked-arith",
                        message: format!(
                            "`{t}` in `{fn_qual}` without an adjacent `// ARITH:` \
                             justification comment"
                        ),
                        trace: Vec::new(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// True when the token at `k` can end a value expression (making a
/// following `+` binary rather than unary).
fn is_value_end(f: &crate::tree::SourceFile, k: usize) -> bool {
    match f.tok(k).kind {
        TokKind::Ident => !matches!(f.txt(k), "return" | "as" | "in" | "where"),
        TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => true,
        TokKind::Punct => matches!(f.txt(k), ")" | "]"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Workspace;

    #[test]
    fn bare_add_in_merge_is_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/felip/src/agg.rs",
            "impl Agg { pub fn merge(&mut self, o: &Agg) { self.n += o.n; } }\n",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "checked-arith");
    }

    #[test]
    fn checked_add_is_clean() {
        let w = Workspace::from_sources(&[(
            "crates/felip/src/agg.rs",
            "impl Agg { pub fn merge(&mut self, o: &Agg) -> Option<()> { \
             self.n = self.n.checked_add(o.n)?; Some(()) } }\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn bare_sum_is_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/cluster/src/s.rs",
            "fn apply(v: &[u64]) -> u64 { let s: u64 = v.iter().sum(); s }\n",
        )]);
        let f = run(&w);
        assert!(f.iter().any(|x| x.message.contains(".sum()")), "{f:?}");
    }

    #[test]
    fn float_statement_is_exempt() {
        let w = Workspace::from_sources(&[(
            "crates/fo/src/sw.rs",
            "fn accumulate(c: &mut [f64]) { c[0] += 1.0f64; }\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn wrapping_without_arith_comment_is_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/fo/src/k.rs",
            "fn accumulate(c: &mut [u64]) { c[0] = c[0].wrapping_add(1); }\n",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ARITH:"));
    }

    #[test]
    fn wrapping_with_arith_comment_is_clean() {
        let w = Workspace::from_sources(&[(
            "crates/fo/src/k.rs",
            "fn accumulate(c: &mut [u64]) {\n\
                 // ARITH: bounded by batch size; wrapping keeps vectorization.\n\
                 c[0] = c[0].wrapping_add(1);\n\
             }\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn out_of_scope_fn_names_are_ignored() {
        let w = Workspace::from_sources(&[(
            "crates/felip/src/other.rs",
            "fn estimate(v: &mut [u64]) { v[0] += 1; }\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn test_fns_are_ignored() {
        let w = Workspace::from_sources(&[(
            "crates/felip/src/t.rs",
            "#[test]\nfn merge() { let mut n = 0u64; n += 1; }\n",
        )]);
        assert!(run(&w).is_empty());
    }
}
