//! A lossless Rust lexer: the token stream tiles the source byte-for-byte
//! (`Σ token.text == source`), so every downstream pass works on real
//! token boundaries instead of stripped strings, and a round-trip test can
//! prove the lexer never drops or invents a byte (DESIGN.md §18).
//!
//! The lexer is deliberately smaller than rustc's: it distinguishes
//! exactly the classes the analysis passes need (identifiers, literals,
//! comments, multi-character operators) and treats every keyword as an
//! identifier — keyword-ness is the tree builder's concern.

use std::fmt;

/// Token classes. `Whitespace`, `LineComment`, and `BlockComment` are
/// *trivia*: they are kept (for losslessness and for `SAFETY:`/`TAINT-OK:`
/// comment checks) but skipped by the item-tree builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Whitespace,
    LineComment,
    BlockComment,
    /// Identifier or keyword (`fn`, `let`, …) or raw identifier (`r#type`).
    Ident,
    /// `'a`, `'static` — never a char literal.
    Lifetime,
    Int,
    Float,
    /// `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Operator/punctuation, maximal-munch (`::`, `->`, `+=`, `..=`, …).
    Punct,
}

/// One token: a kind plus the byte span it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is trivia (whitespace or a comment).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// A lexing failure (unterminated literal/comment); carries the line so the
/// caller can report `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: [&str; 24] = [
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src` completely. On success the returned tokens tile
/// `0..src.len()` contiguously — `tokens_tile` checks exactly that and the
/// round-trip test asserts it for every workspace file.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let b: Vec<char> = src.chars().collect();
    // Parallel byte offsets: off[i] is the byte offset of char i.
    let mut off = Vec::with_capacity(b.len() + 1);
    let mut o = 0;
    for c in &b {
        off.push(o);
        o += c.len_utf8();
    }
    off.push(o);

    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();
    let push = |kind: TokKind, s: usize, e: usize, ln: u32, toks: &mut Vec<Tok>| {
        toks.push(Tok {
            kind,
            start: off[s],
            end: off[e],
            line: ln,
        });
    };
    let count_nl = |s: usize, e: usize, b: &[char]| b[s..e].iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = b[i];
        let start = i;
        let start_line = line;

        // Whitespace.
        if c.is_whitespace() {
            while i < n && b[i].is_whitespace() {
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            push(TokKind::Whitespace, start, i, start_line, &mut toks);
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            push(TokKind::LineComment, start, i, start_line, &mut toks);
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            if depth > 0 {
                return Err(LexError {
                    line: start_line,
                    message: "unterminated block comment".into(),
                });
            }
            push(TokKind::BlockComment, start, i, start_line, &mut toks);
            continue;
        }

        // Raw strings / raw identifiers / byte strings: r"…", r#"…"#, r#ident,
        // b"…", br#"…"#, b'…'.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut is_byte = false;
            if b[j] == 'b' {
                is_byte = true;
                j += 1;
            }
            let has_r = j < n && b[j] == 'r';
            if has_r {
                j += 1;
            }
            let mut hashes = 0usize;
            while has_r && j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' && (has_r || is_byte) {
                // Raw or byte string.
                j += 1;
                if has_r {
                    // Scan for `"` followed by `hashes` hashes.
                    loop {
                        if j >= n {
                            return Err(LexError {
                                line: start_line,
                                message: "unterminated raw string".into(),
                            });
                        }
                        if b[j] == '"' && (1..=hashes).all(|k| j + k < n && b[j + k] == '#') {
                            j += hashes + 1;
                            break;
                        }
                        j += 1;
                    }
                } else {
                    // b"…": ordinary escapes.
                    loop {
                        if j >= n {
                            return Err(LexError {
                                line: start_line,
                                message: "unterminated byte string".into(),
                            });
                        }
                        match b[j] {
                            '\\' => j += 2,
                            '"' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                }
                // Newlines inside the literal are counted from the raw span
                // (escape skips may jump over `\` line continuations).
                line = start_line + count_nl(start, j.min(n), &b) as u32;
                i = j;
                push(TokKind::Str, start, i, start_line, &mut toks);
                continue;
            }
            if has_r && hashes > 0 && j < n && is_ident_start(b[j]) && !is_byte {
                // Raw identifier r#type.
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                i = j;
                push(TokKind::Ident, start, i, start_line, &mut toks);
                continue;
            }
            if is_byte && j < n && b[j] == '\'' && !has_r {
                // Byte char b'x'.
                j += 1;
                loop {
                    if j >= n {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated byte char".into(),
                        });
                    }
                    match b[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
                push(TokKind::Char, start, i, start_line, &mut toks);
                continue;
            }
            // Plain identifier starting with r/b.
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            i = j;
            push(TokKind::Ident, start, i, start_line, &mut toks);
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            push(TokKind::Ident, start, i, start_line, &mut toks);
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            i += 1;
            let mut kind = TokKind::Int;
            if c == '0' && i < n && matches!(b[i], 'x' | 'o' | 'b') {
                i += 1;
                while i < n && (b[i].is_ascii_hexdigit() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fraction: digit '.' not followed by another '.' (range) or
                // an identifier start (method call on a literal).
                if i < n
                    && b[i] == '.'
                    && !(i + 1 < n && (b[i + 1] == '.' || is_ident_start(b[i + 1])))
                {
                    kind = TokKind::Float;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if i < n
                    && (b[i] == 'e' || b[i] == 'E')
                    && (i + 1 < n
                        && (b[i + 1].is_ascii_digit()
                            || ((b[i + 1] == '+' || b[i + 1] == '-')
                                && i + 2 < n
                                && b[i + 2].is_ascii_digit())))
                {
                    kind = TokKind::Float;
                    i += 1;
                    if b[i] == '+' || b[i] == '-' {
                        i += 1;
                    }
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
            }
            // Type suffix (u64, f32, usize, …).
            if i < n && is_ident_start(b[i]) {
                let suf_start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let suf: String = b[suf_start..i].iter().collect();
                if suf.starts_with('f') {
                    kind = TokKind::Float;
                }
            }
            push(kind, start, i, start_line, &mut toks);
            continue;
        }

        // Strings.
        if c == '"' {
            i += 1;
            loop {
                if i >= n {
                    return Err(LexError {
                        line: start_line,
                        message: "unterminated string".into(),
                    });
                }
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            // Recompute from the raw span: escape skips may have jumped
            // over a newline (`\` line continuations).
            line = start_line + count_nl(start, i.min(n), &b) as u32;
            push(TokKind::Str, start, i, start_line, &mut toks);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(ch) if is_ident_start(ch) => {
                    // 'a' is a char literal only when followed by a closing
                    // quote right after one ident char ('static> is a
                    // lifetime).
                    b.get(i + 2) == Some(&'\'')
                }
                Some(_) => true, // '(' etc: '(' is not valid, but '1' is a char
                None => false,
            };
            if is_char {
                i += 1;
                loop {
                    if i >= n {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated char literal".into(),
                        });
                    }
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                push(TokKind::Char, start, i, start_line, &mut toks);
            } else {
                i += 1;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                push(TokKind::Lifetime, start, i, start_line, &mut toks);
            }
            continue;
        }

        // Operators: maximal munch over the multi-char table, then a single
        // char.
        let mut matched = false;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if pc.len() > 1 && i + pc.len() <= n && b[i..i + pc.len()] == pc[..] {
                i += pc.len();
                push(TokKind::Punct, start, i, start_line, &mut toks);
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        i += 1;
        push(TokKind::Punct, start, i, start_line, &mut toks);
    }

    Ok(toks)
}

/// Whether `toks` tile `src` exactly: contiguous spans from 0 to
/// `src.len()` with no gaps or overlaps. The lossless guarantee.
pub fn tokens_tile(src: &str, toks: &[Tok]) -> bool {
    let mut pos = 0usize;
    for t in toks {
        if t.start != pos || t.end < t.start {
            return false;
        }
        pos = t.end;
    }
    pos == src.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn tiles_simple_source() {
        let src = "fn main() { let x = 1 + 2; }\n";
        let toks = lex(src).unwrap();
        assert!(tokens_tile(src, &toks));
    }

    #[test]
    fn distinguishes_lifetimes_from_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) -> char { 'b' }");
        assert!(ks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokKind::Char, "'b'".into())));
    }

    #[test]
    fn ranges_are_not_floats() {
        let ks = kinds("for i in 0..10 { a[i] += 1.5; }");
        assert!(ks.contains(&(TokKind::Int, "0".into())));
        assert!(ks.contains(&(TokKind::Punct, "..".into())));
        assert!(ks.contains(&(TokKind::Float, "1.5".into())));
        assert!(ks.contains(&(TokKind::Punct, "+=".into())));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let a = r#"panic!("x")"#; let r#type = b"bytes";"##;
        let toks = lex(src).unwrap();
        assert!(tokens_tile(src, &toks));
        let ks: Vec<_> = toks
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src)))
            .collect();
        assert!(ks.contains(&(TokKind::Str, r##"r#"panic!("x")"#"##)));
        assert!(ks.contains(&(TokKind::Ident, "r#type")));
        assert!(ks.contains(&(TokKind::Str, "b\"bytes\"")));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "/* a /* b */ c */ fn g() {}\n// line\n";
        let toks = lex(src).unwrap();
        assert!(tokens_tile(src, &toks));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_advance() {
        let src = "a\nb\n  c";
        let toks = lex(src).unwrap();
        let lines: Vec<(String, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text(src).into(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn number_suffixes_classify() {
        let ks = kinds("let a = 1u64; let b = 2.5f32; let c = 0xff_u8; let d = 1e3;");
        assert!(ks.contains(&(TokKind::Int, "1u64".into())));
        assert!(ks.contains(&(TokKind::Float, "2.5f32".into())));
        assert!(ks.contains(&(TokKind::Int, "0xff_u8".into())));
        assert!(ks.contains(&(TokKind::Float, "1e3".into())));
    }

    #[test]
    fn tuple_field_access_lexes() {
        let ks = kinds("let x = pair.0; let y = pair.1.min(2);");
        assert!(ks.contains(&(TokKind::Int, "0".into())));
        assert!(ks.contains(&(TokKind::Punct, ".".into())));
    }
}
