//! Item/expression-tree builder on top of the lossless lexer: finds every
//! `fn` (with its qualified path, parameters, return type, and body token
//! range), struct field tables, and test-gated regions — the shared
//! skeleton all `xtask analyze` passes walk (DESIGN.md §18).
//!
//! Resolution is name-and-signature based: no type inference, no trait
//! solving. For this workspace — where method names are distinctive and
//! arities short — that is enough to build call edges, taint summaries,
//! and the lock graph without ever guessing from stripped strings.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Tok, TokKind};

/// One function parameter (the `self` receiver is tracked separately).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// The type text, whitespace-normalized (`& Mutex < Aggregator >`).
    pub ty: String,
}

/// One `fn` item anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the owning file in [`Workspace::files`].
    pub file: usize,
    /// `crate::module::Type::name` — segments joined from the scope stack.
    pub qual: String,
    /// The bare function name.
    pub name: String,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Non-`self` parameters, in order.
    pub params: Vec<Param>,
    /// Return-type text after `->` (empty when the fn returns `()`).
    pub ret: String,
    /// Significant-token range `[open_brace, close_brace]` of the body;
    /// `None` for trait-method signatures without a default body.
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` gated code.
    pub is_test: bool,
    pub line: u32,
    /// The crate directory name (`server`, `felip`, …).
    pub crate_name: String,
}

/// A struct definition's named fields (for lock-field discovery).
#[derive(Debug, Clone, Default)]
pub struct StructDef {
    pub fields: Vec<(String, String)>,
}

/// One lexed + item-indexed source file.
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    pub src: String,
    /// Every token, tiling the source.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// For each `sig` position holding `(`/`[`/`{`: the sig position of
    /// its matching closer (`usize::MAX` when unmatched).
    pub close_of: Vec<usize>,
    /// Comment text per line (for `SAFETY:` / `TAINT-OK:` checks).
    pub comments: BTreeMap<u32, String>,
    /// Lines carrying at least one significant token.
    pub code_lines: BTreeSet<u32>,
    /// Names from `#[cfg(…test…)] mod x;` declarations in this file.
    pub test_mods: Vec<String>,
    /// The crate directory name this file belongs to.
    pub crate_name: String,
}

impl SourceFile {
    /// The token at sig position `i`.
    pub fn tok(&self, i: usize) -> &Tok {
        &self.toks[self.sig[i]]
    }

    /// The text of the sig token at `i`.
    pub fn txt(&self, i: usize) -> &str {
        self.tok(i).text(&self.src)
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// Whether sig token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Ident && self.txt(i) == s
    }

    /// Whether sig token `i` is punctuation with exactly this text.
    pub fn is_punct(&self, i: usize, s: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Punct && self.txt(i) == s
    }

    /// The line of sig token `i`.
    pub fn line(&self, i: usize) -> u32 {
        self.tok(i).line
    }

    /// Whether `needle` appears in a comment on `line` or in the block of
    /// comment-only lines directly above it (attribute-only lines may sit
    /// in between) — the `SAFETY:` / `TAINT-OK:` adjacency rule.
    pub fn comment_above_contains(&self, line: u32, needle: &str) -> bool {
        if self.comments.get(&line).is_some_and(|c| c.contains(needle)) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_comment = self.comments.contains_key(&l);
            let has_code = self.code_lines.contains(&l);
            if has_code {
                // Attribute-only lines are allowed between the comment and
                // the checked line.
                let attr_only = self.line_is_attr_only(l);
                if !attr_only {
                    return false;
                }
                continue;
            }
            if has_comment {
                if self.comments[&l].contains(needle) {
                    return true;
                }
                continue;
            }
            return false; // blank line breaks adjacency
        }
        false
    }

    fn line_is_attr_only(&self, line: u32) -> bool {
        let mut saw_any = false;
        let mut first: Option<&str> = None;
        for &ti in &self.sig {
            let t = &self.toks[ti];
            if t.line == line {
                saw_any = true;
                if first.is_none() {
                    first = Some(t.text(&self.src));
                }
            }
        }
        saw_any && first == Some("#")
    }
}

/// The loaded workspace: every scanned file plus the global fn index.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnDef>,
    /// fn simple name → ids into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// struct name → named fields.
    pub structs: BTreeMap<String, StructDef>,
    /// Files that failed to lex (reported as diagnostics by the driver).
    pub lex_errors: Vec<(PathBuf, String)>,
}

impl Workspace {
    /// Loads and indexes every `crates/*/src` file under `root`, dropping
    /// files claimed by `#[cfg(…test…)] mod x;` declarations (mirrors the
    /// PR-5 lint's scoping: integration `tests/` trees are never scanned).
    pub fn load(root: &Path) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            structs: BTreeMap::new(),
            lex_errors: Vec::new(),
        };
        let Ok(entries) = fs::read_dir(root.join("crates")) else {
            return ws;
        };
        let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string();
            let src_dir = dir.join("src");
            if !src_dir.is_dir() {
                continue;
            }
            ws.load_dir(root, &src_dir, &crate_name);
        }
        ws.drop_test_mod_files();
        ws.index();
        ws
    }

    /// Builds a workspace from in-memory sources — the fixture path used
    /// by pass self-tests. Paths should look like `crates/<name>/src/x.rs`
    /// so crate attribution works.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            structs: BTreeMap::new(),
            lex_errors: Vec::new(),
        };
        for (path, src) in sources {
            let p = PathBuf::from(path);
            let crate_name = p
                .components()
                .nth(1)
                .and_then(|c| c.as_os_str().to_str())
                .unwrap_or("?")
                .to_string();
            match lex(src) {
                Ok(toks) => {
                    let mut file = build_file(p, src.to_string(), toks, crate_name);
                    file.test_mods = scan_test_mods(&file);
                    ws.files.push(file);
                }
                Err(e) => ws.lex_errors.push((p, e.to_string())),
            }
        }
        ws.drop_test_mod_files();
        ws.index();
        ws
    }

    fn load_dir(&mut self, root: &Path, dir: &Path, crate_name: &str) {
        let mut stack = vec![dir.to_path_buf()];
        let mut paths = Vec::new();
        while let Some(d) = stack.pop() {
            let Ok(entries) = fs::read_dir(&d) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    paths.push(p);
                }
            }
        }
        paths.sort();
        for p in paths {
            let Ok(src) = fs::read_to_string(&p) else {
                continue;
            };
            let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            match lex(&src) {
                Ok(toks) => {
                    let mut file = build_file(rel, src, toks, crate_name.to_string());
                    file.test_mods = scan_test_mods(&file);
                    self.files.push(file);
                }
                Err(e) => self.lex_errors.push((rel, e.to_string())),
            }
        }
    }

    /// Removes files claimed whole by `#[cfg(…test…)] mod x;` decls.
    fn drop_test_mod_files(&mut self) {
        let gated: BTreeSet<(String, String)> = self
            .files
            .iter()
            .flat_map(|f| {
                f.test_mods
                    .iter()
                    .map(|m| (f.crate_name.clone(), m.clone()))
            })
            .collect();
        self.files.retain(|f| {
            let stem = f
                .path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("")
                .to_string();
            let dir = f
                .path
                .parent()
                .and_then(|d| d.file_name())
                .and_then(|s| s.to_str())
                .unwrap_or("")
                .to_string();
            let name = if stem == "mod" { dir } else { stem };
            !gated.contains(&(f.crate_name.clone(), name))
        });
    }

    fn index(&mut self) {
        for fi in 0..self.files.len() {
            let (fns, structs) = walk_items(&self.files[fi], fi);
            for f in fns {
                self.by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(self.fns.len());
                self.fns.push(f);
            }
            for (name, def) in structs {
                self.structs.entry(name).or_insert(def);
            }
        }
    }

    /// All fn ids whose bare name is `name`.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn build_file(path: PathBuf, src: String, toks: Vec<Tok>, crate_name: String) -> SourceFile {
    let sig: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_trivia())
        .map(|(i, _)| i)
        .collect();
    // Bracket matching over significant tokens.
    let mut close_of = vec![usize::MAX; sig.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (si, &ti) in sig.iter().enumerate() {
        let t = &toks[ti];
        if t.kind == TokKind::Punct {
            match t.text(&src) {
                "(" | "[" | "{" => stack.push(si),
                ")" | "]" | "}" => {
                    if let Some(open) = stack.pop() {
                        close_of[open] = si;
                    }
                }
                _ => {}
            }
        }
    }
    let mut comments: BTreeMap<u32, String> = BTreeMap::new();
    let mut code_lines = BTreeSet::new();
    for t in &toks {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                let entry = comments.entry(t.line).or_default();
                entry.push_str(t.text(&src));
                entry.push(' ');
            }
            TokKind::Whitespace => {}
            _ => {
                code_lines.insert(t.line);
            }
        }
    }
    SourceFile {
        path,
        src,
        toks,
        sig,
        close_of,
        comments,
        code_lines,
        test_mods: Vec::new(), // filled by walk_items via scan below
        crate_name,
    }
}

/// Whether an attribute's token text gates test code: `#[test]` or
/// `#[cfg(…test…)]` without `not(test)`.
fn attr_is_test(attr: &str) -> bool {
    if attr.starts_with("# [ test ]") || attr == "# [ test ]" {
        return true;
    }
    attr.contains("cfg") && attr.contains("test") && !attr.contains("not ( test")
}

struct Scope {
    /// Path segment this scope contributes (`None` for plain blocks).
    seg: Option<String>,
    /// Sig index of the closing `}`.
    close: usize,
    is_test: bool,
}

/// Walks a file's items, returning its fns and struct tables. Also fills
/// the file's `test_mods` (via interior mutability shim: returns them).
fn walk_items(f: &SourceFile, file_idx: usize) -> (Vec<FnDef>, BTreeMap<String, StructDef>) {
    let mut fns = Vec::new();
    let mut structs = BTreeMap::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let n = f.len();
    let mut i = 0usize;
    while i < n {
        // Pop any scopes closing here.
        if f.is_punct(i, "}") {
            while scopes.last().is_some_and(|s| s.close == i) {
                scopes.pop();
            }
            i += 1;
            pending_attrs.clear();
            continue;
        }
        let cur_test = scopes.iter().any(|s| s.is_test);

        // Attributes: `#[…]` / `#![…]`.
        if f.is_punct(i, "#") {
            let mut j = i + 1;
            if f.is_punct(j, "!") {
                j += 1;
            }
            if f.is_punct(j, "[") {
                let close = f.close_of[j];
                if close != usize::MAX {
                    let text: Vec<&str> = (i..=close).map(|k| f.txt(k)).collect();
                    pending_attrs.push(text.join(" "));
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }

        let tok_is_ident = f.tok(i).kind == TokKind::Ident;
        let word = if tok_is_ident { f.txt(i) } else { "" };

        match word {
            // Visibility / item modifiers: skip without clearing attrs.
            "pub" => {
                i += 1;
                if f.is_punct(i, "(") && f.close_of[i] != usize::MAX {
                    i = f.close_of[i] + 1;
                }
                continue;
            }
            "unsafe" | "async" | "const" | "default" => {
                // `const fn` / `unsafe fn` are fn modifiers; `const X: T = …;`
                // is an item — disambiguate by what follows.
                if word == "const" && !f.is_ident(i + 1, "fn") && !f.is_ident(i + 1, "unsafe") {
                    i = skip_to_semi(f, i);
                    pending_attrs.clear();
                    continue;
                }
                i += 1;
                continue;
            }
            "extern" => {
                // `extern "C" fn` or `extern crate x;`.
                i += 1;
                if f.tok(i).kind == TokKind::Str {
                    i += 1;
                }
                continue;
            }
            "use" | "static" | "type" => {
                i = skip_to_semi(f, i);
                pending_attrs.clear();
                continue;
            }
            "macro_rules" => {
                // macro_rules ! name { … }
                let mut j = i + 1;
                while j < n && !f.is_punct(j, "{") && !f.is_punct(j, "(") {
                    j += 1;
                }
                i = if j < n && f.close_of[j] != usize::MAX {
                    f.close_of[j] + 1
                } else {
                    j + 1
                };
                pending_attrs.clear();
                continue;
            }
            "mod" => {
                let attr_test = pending_attrs.iter().any(|a| attr_is_test(a));
                let name = if i + 1 < n {
                    f.txt(i + 1).to_string()
                } else {
                    String::new()
                };
                if f.is_punct(i + 2, "{") {
                    let close = f.close_of[i + 2];
                    scopes.push(Scope {
                        seg: Some(name),
                        close: if close == usize::MAX { n } else { close },
                        is_test: cur_test || attr_test,
                    });
                    i += 3;
                } else {
                    // `mod name;` — test-gated decls are handled by
                    // `scan_test_mods`, which runs at load time.
                    let _ = (attr_test, &name);
                    i += 3;
                }
                pending_attrs.clear();
                continue;
            }
            "struct" | "enum" | "union" => {
                let name = if i + 1 < n {
                    f.txt(i + 1).to_string()
                } else {
                    String::new()
                };
                let mut j = i + 2;
                j = skip_generics(f, j);
                // Skip a where clause.
                while j < n && !f.is_punct(j, "{") && !f.is_punct(j, "(") && !f.is_punct(j, ";") {
                    j += 1;
                }
                if word == "struct" && f.is_punct(j, "{") {
                    let close = f.close_of[j];
                    if close != usize::MAX {
                        let def = parse_struct_fields(f, j + 1, close);
                        structs.insert(name, def);
                        i = close + 1;
                        pending_attrs.clear();
                        continue;
                    }
                }
                if f.is_punct(j, "(") && f.close_of[j] != usize::MAX {
                    i = skip_to_semi(f, f.close_of[j]);
                } else if f.is_punct(j, "{") && f.close_of[j] != usize::MAX {
                    i = f.close_of[j] + 1;
                } else {
                    i = j + 1;
                }
                pending_attrs.clear();
                continue;
            }
            "trait" | "impl" => {
                let attr_test = pending_attrs.iter().any(|a| attr_is_test(a));
                let seg = if word == "trait" {
                    if i + 1 < n {
                        Some(f.txt(i + 1).to_string())
                    } else {
                        None
                    }
                } else {
                    parse_impl_type(f, i + 1)
                };
                // Find the opening brace of the item body.
                let mut j = i + 1;
                let mut angle = 0i32;
                while j < n {
                    angle += angle_step(f.txt(j));
                    if angle <= 0 && f.is_punct(j, "{") {
                        break;
                    }
                    if f.is_punct(j, ";") {
                        break; // e.g. `impl Trait for Type;` (never here)
                    }
                    j += 1;
                }
                if j < n && f.is_punct(j, "{") && f.close_of[j] != usize::MAX {
                    scopes.push(Scope {
                        seg,
                        close: f.close_of[j],
                        is_test: cur_test || attr_test,
                    });
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                pending_attrs.clear();
                continue;
            }
            "fn" => {
                let attr_test = cur_test || pending_attrs.iter().any(|a| attr_is_test(a));
                if let Some((def, next)) = parse_fn(f, i, file_idx, &scopes, attr_test) {
                    // Descend into the body so nested fns are found too.
                    if let Some((open, close)) = def.body {
                        scopes.push(Scope {
                            seg: Some(def.name.clone()),
                            close,
                            is_test: attr_test,
                        });
                        fns.push(def);
                        i = open + 1;
                    } else {
                        fns.push(def);
                        i = next;
                    }
                } else {
                    i += 1;
                }
                pending_attrs.clear();
                continue;
            }
            _ => {}
        }
        i += 1;
        // Any other token invalidates pending attributes.
        pending_attrs.clear();
    }
    (fns, structs)
}

/// `i` points at `fn`. Parses through the signature; returns the def and
/// the sig index just past the item.
fn parse_fn(
    f: &SourceFile,
    i: usize,
    file_idx: usize,
    scopes: &[Scope],
    is_test: bool,
) -> Option<(FnDef, usize)> {
    let n = f.len();
    let name_idx = i + 1;
    if name_idx >= n || f.tok(name_idx).kind != TokKind::Ident {
        return None;
    }
    let name = f.txt(name_idx).trim_start_matches("r#").to_string();
    let line = f.line(i);
    let mut j = skip_generics(f, name_idx + 1);
    if !f.is_punct(j, "(") {
        return None;
    }
    let close_paren = f.close_of[j];
    if close_paren == usize::MAX {
        return None;
    }
    let (has_self, params) = parse_params(f, j + 1, close_paren);
    j = close_paren + 1;
    let mut ret = String::new();
    if f.is_punct(j, "->") {
        j += 1;
        let start = j;
        let mut angle = 0i32;
        while j < n {
            let t = f.txt(j);
            angle += angle_step(t);
            if angle <= 0 && (t == "{" || t == ";" || t == "where") && f.tok(j).kind != TokKind::Str
            {
                break;
            }
            j += 1;
        }
        ret = (start..j).map(|k| f.txt(k)).collect::<Vec<_>>().join(" ");
    }
    // Skip a where clause.
    while j < n && !f.is_punct(j, "{") && !f.is_punct(j, ";") {
        j += 1;
    }
    let body = if f.is_punct(j, "{") && f.close_of[j] != usize::MAX {
        Some((j, f.close_of[j]))
    } else {
        None
    };
    let next = match body {
        Some((_, close)) => close + 1,
        None => j + 1,
    };
    let mut qual_parts: Vec<String> = vec![f.crate_name.clone()];
    qual_parts.extend(scopes.iter().filter_map(|s| s.seg.clone()));
    qual_parts.push(name.clone());
    Some((
        FnDef {
            file: file_idx,
            qual: qual_parts.join("::"),
            name,
            has_self,
            params,
            ret,
            body,
            is_test,
            line,
            crate_name: f.crate_name.clone(),
        },
        next,
    ))
}

fn parse_params(f: &SourceFile, start: usize, end: usize) -> (bool, Vec<Param>) {
    let mut has_self = false;
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut cur: Vec<usize> = Vec::new();
    let flush = |cur: &mut Vec<usize>, has_self: &mut bool, params: &mut Vec<Param>| {
        if cur.is_empty() {
            return;
        }
        let texts: Vec<&str> = cur.iter().map(|&k| f.txt(k)).collect();
        if texts.contains(&"self") && !texts.contains(&":") {
            *has_self = true;
            cur.clear();
            return;
        }
        if let Some(colon) = texts.iter().position(|&t| t == ":") {
            // Name: last ident before the colon (handles `mut x`).
            let name = texts[..colon]
                .iter()
                .rev()
                .find(|t| {
                    t.chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                        && **t != "mut"
                        && **t != "ref"
                })
                .unwrap_or(&"_")
                .to_string();
            let ty = texts[colon + 1..].join(" ");
            params.push(Param { name, ty });
        }
        cur.clear();
    };
    let mut k = start;
    while k < end {
        let t = f.txt(k);
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            _ => angle += angle_step(t),
        }
        if t == "," && depth == 0 && angle <= 0 {
            flush(&mut cur, &mut has_self, &mut params);
            if angle < 0 {
                angle = 0;
            }
        } else {
            cur.push(k);
        }
        k += 1;
    }
    flush(&mut cur, &mut has_self, &mut params);
    (has_self, params)
}

fn parse_struct_fields(f: &SourceFile, start: usize, end: usize) -> StructDef {
    let mut def = StructDef::default();
    let mut k = start;
    let n = end.min(f.len());
    while k < n {
        // Skip attributes and visibility.
        if f.is_punct(k, "#") && f.is_punct(k + 1, "[") && f.close_of[k + 1] != usize::MAX {
            k = f.close_of[k + 1] + 1;
            continue;
        }
        if f.is_ident(k, "pub") {
            k += 1;
            if f.is_punct(k, "(") && f.close_of[k] != usize::MAX {
                k = f.close_of[k] + 1;
            }
            continue;
        }
        // field `name : type ,`
        if f.tok(k).kind == TokKind::Ident && f.is_punct(k + 1, ":") {
            let name = f.txt(k).to_string();
            let mut j = k + 2;
            let mut depth = 0i32;
            let mut angle = 0i32;
            let ty_start = j;
            while j < n {
                let t = f.txt(j);
                match t {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => angle += angle_step(t),
                }
                if t == "," && depth == 0 && angle <= 0 {
                    break;
                }
                j += 1;
            }
            let ty = (ty_start..j)
                .map(|x| f.txt(x))
                .collect::<Vec<_>>()
                .join(" ");
            def.fields.push((name, ty));
            k = j + 1;
            continue;
        }
        k += 1;
    }
    def
}

/// `i` points just past `impl`. Returns the implemented type's name
/// (`impl Trait for Type` → `Type`; `impl<T> Foo<T>` → `Foo`).
fn parse_impl_type(f: &SourceFile, mut i: usize) -> Option<String> {
    let n = f.len();
    i = skip_generics(f, i);
    // Collect idents at angle depth 0 until `{` / `where`, noting `for`.
    let mut angle = 0i32;
    let mut last_path_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < n {
        let t = f.txt(i);
        if angle <= 0 {
            if t == "{" || t == "where" {
                break;
            }
            if t == "for" {
                saw_for = true;
                i += 1;
                continue;
            }
        }
        if f.tok(i).kind == TokKind::Ident && angle <= 0 && t != "dyn" && t != "mut" {
            if saw_for {
                if after_for.is_none() || f.is_punct(i.wrapping_sub(1), "::") {
                    after_for = Some(t.to_string());
                }
            } else if last_path_ident.is_none() || f.is_punct(i.wrapping_sub(1), "::") {
                last_path_ident = Some(t.to_string());
            }
        }
        angle += angle_step(t);
        i += 1;
    }
    after_for.or(last_path_ident)
}

fn skip_to_semi(f: &SourceFile, mut i: usize) -> usize {
    let n = f.len();
    let mut depth = 0i32;
    while i < n {
        match f.txt(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// If `i` is `<`, skips the balanced generic-argument list.
fn skip_generics(f: &SourceFile, i: usize) -> usize {
    if !f.is_punct(i, "<") {
        return i;
    }
    let n = f.len();
    let mut depth = 0i32;
    let mut j = i;
    while j < n {
        depth += angle_step(f.txt(j));
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Angle-bracket depth contribution of one token (`>>` closes two).
pub fn angle_step(t: &str) -> i32 {
    match t {
        "<" => 1,
        "<<" => 2,
        ">" => -1,
        ">>" => -2,
        _ => 0,
    }
}

/// The `#[cfg(test)] mod x;` scan needs raw attr+mod pairs; run it over a
/// file directly (used by `Workspace::load` before indexing).
pub fn scan_test_mods(f: &SourceFile) -> Vec<String> {
    let n = f.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if f.is_punct(i, "#") && f.is_punct(i + 1, "[") && f.close_of[i + 1] != usize::MAX {
            let close = f.close_of[i + 1];
            let attr: Vec<&str> = (i..=close).map(|k| f.txt(k)).collect();
            let attr = attr.join(" ");
            let mut j = close + 1;
            // Allow more attributes / visibility between.
            loop {
                if f.is_punct(j, "#") && f.is_punct(j + 1, "[") && f.close_of[j + 1] != usize::MAX {
                    j = f.close_of[j + 1] + 1;
                    continue;
                }
                if f.is_ident(j, "pub") {
                    j += 1;
                    if f.is_punct(j, "(") && f.close_of[j] != usize::MAX {
                        j = f.close_of[j] + 1;
                    }
                    continue;
                }
                break;
            }
            if attr_is_test(&attr) && f.is_ident(j, "mod") && f.is_punct(j + 2, ";") {
                out.push(f.txt(j + 1).to_string());
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        let toks = lex(src).unwrap();
        let mut f = build_file(
            PathBuf::from("crates/x/src/lib.rs"),
            src.into(),
            toks,
            "x".into(),
        );
        f.test_mods = scan_test_mods(&f);
        f
    }

    fn fns(src: &str) -> Vec<FnDef> {
        walk_items(&file(src), 0).0
    }

    #[test]
    fn finds_free_and_method_fns() {
        let src = "fn free(a: u32) -> u32 { a }\n\
                   struct S { x: u64 }\n\
                   impl S { pub fn method(&self, b: &str) {} }\n\
                   impl Clone for S { fn clone(&self) -> S { S { x: self.x } } }";
        let fs = fns(src);
        let quals: Vec<&str> = fs.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["x::free", "x::S::method", "x::S::clone"]);
        assert!(fs[1].has_self);
        assert_eq!(fs[1].params.len(), 1);
        assert_eq!(fs[1].params[0].name, "b");
        assert_eq!(fs[0].ret, "u32");
    }

    #[test]
    fn struct_fields_are_tabled() {
        let src = "pub struct Q { pub inner: Mutex<Inner<T>>, not_empty: Condvar }";
        let (_, structs) = walk_items(&file(src), 0);
        let q = &structs["Q"];
        assert_eq!(q.fields.len(), 2);
        assert_eq!(q.fields[0].0, "inner");
        assert!(q.fields[0].1.contains("Mutex"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}";
        let fs = fns(src);
        assert!(!fs[0].is_test);
        assert!(fs[1].is_test, "{:?}", fs[1]);
        assert!(fs[2].is_test);
    }

    #[test]
    fn out_of_line_test_mods_are_scanned() {
        let f = file("#[cfg(all(test, feature = \"model\"))]\nmod model_tests;\npub mod live;\n");
        assert_eq!(f.test_mods, vec!["model_tests".to_string()]);
    }

    #[test]
    fn nested_fns_are_found() {
        let src = "fn outer() {\n    fn inner(x: u64) -> u64 { x }\n    inner(1);\n}";
        let fs = fns(src);
        let quals: Vec<&str> = fs.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["x::outer", "x::outer::inner"]);
    }

    #[test]
    fn generics_do_not_break_parsing() {
        let src =
            "impl<T: Clone> Wrapper<Vec<T>> {\n    fn get(&self) -> Option<Vec<T>> { None }\n}";
        let fs = fns(src);
        assert_eq!(fs[0].qual, "x::Wrapper::get");
        assert!(fs[0].ret.contains("Option"));
    }

    #[test]
    fn comment_adjacency_allows_attrs() {
        let f = file(
            "// SAFETY: justified here.\n#[inline]\nunsafe fn ok() {}\n\nunsafe fn bad() {}\n",
        );
        assert!(f.comment_above_contains(3, "SAFETY:"));
        assert!(!f.comment_above_contains(5, "SAFETY:"));
    }
}
