//! The privacy-taint pass (DESIGN.md §18): raw user values must never
//! reach a wire/snapshot/log sink without passing a perturbation
//! sanitizer.
//!
//! Taint is seeded at *sources* (dataset readers — the only place raw
//! records materialize), killed at *sanitizers* (each FO's `perturb`, the
//! client `respond` path, and `Query::true_answer`, the data-owner's
//! evaluation-only ground truth), and flagged when it reaches a *sink*
//! (wire encoders, frame builders, snapshot writers, `felip_obs::diag`
//! lines, flight-ring records).
//!
//! The engine is a name-resolved interprocedural dataflow: every function
//! gets a summary — a bitmask saying which parameters (bit 0 = `self`)
//! flow to its return value and which flow into a sink inside it — and
//! summaries are iterated to a fixpoint before a final reporting walk.
//! Unknown callees conservatively propagate the union of their argument
//! taints to their return value. `// TAINT-OK: <why>` on or directly
//! above a flagged line suppresses the finding and is itself catalogued;
//! a `TAINT-OK` that suppresses nothing is flagged as stale.

use std::collections::BTreeMap;

use crate::analyze::Finding;
use crate::lex::TokKind;
use crate::tree::{SourceFile, Workspace};

/// Bit marking "definitely raw" taint (vs. parameter-relative bits).
const SRC: u64 = 1 << 62;

/// Dataset readers: the calls where raw per-user values materialize.
/// (`crates/datasets` generators return whole `Dataset` containers; every
/// value *read* goes through these accessors, so seeding here covers them.)
const SOURCE_FNS: &[&str] = &["row", "rows", "value", "flat"];

/// Crates allowed to define fns with source names. Resolution is by name,
/// so a `fn value()` elsewhere would silently widen the taint seeding —
/// the pass flags such aliases instead of guessing (see `run`).
const SOURCE_CRATES: &[&str] = &["common", "datasets"];

/// Crates allowed to define sanitizer-named fns. An alias here is worse
/// than a source alias: it would silently *bless* un-perturbed flows.
const SANITIZER_CRATES: &[&str] = &["fo", "felip", "common", "baselines"];

/// Calls whose result is clean regardless of argument taint: the ε-LDP
/// perturbation path (`perturb`, `respond`) and the data-owner's
/// evaluation-only ground truth (`true_answer`), released by the party
/// that holds the raw data anyway (MAE/figure pipelines).
const SANITIZERS: &[&str] = &["perturb", "respond", "true_answer"];

/// Sink names and the crates allowed to define them. A call counts as a
/// sink only if a function of that name is actually defined in one of the
/// listed crates (name-and-signature resolution — keeps `encode_category`
/// in `datasets` from aliasing with the wire encoders).
const SINKS: &[(&str, &[&str])] = &[
    ("encode_reports", &["server"]),
    ("encode_batch", &["server"]),
    ("encode_ack", &["server"]),
    ("encode_retry", &["server"]),
    ("encode_delta", &["server"]),
    ("encode_delta_ack", &["server"]),
    ("encode_query", &["server"]),
    ("encode_query_reply", &["server"]),
    ("encode_hello", &["server"]),
    ("encode_stat", &["server"]),
    ("append_frame", &["server"]),
    ("append_frame_versioned", &["server"]),
    ("write_frame", &["server"]),
    ("encode", &["server", "cluster"]),
    ("encode_into", &["server"]),
    ("capture", &["server"]),
    ("capture_with_dedup", &["server"]),
    ("write_atomic", &["server", "cluster"]),
    ("write_verified", &["server"]),
    ("line", &["obs"]),
    ("warn", &["obs"]),
    ("error", &["obs"]),
    ("usage_exit", &["obs"]),
    ("record", &["obs"]),
];

/// Per-function dataflow summary over parameter bits (bit 0 = `self` when
/// the fn has a receiver; SRC marks unconditional raw taint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Summary {
    /// Parameter bits (and/or SRC) that flow into the return value.
    ret: u64,
    /// Parameter bits that flow into a sink inside this fn (transitively).
    to_sink: u64,
}

/// A (mask, origin-trace) pair — the unit the evaluator propagates.
#[derive(Debug, Clone, Default)]
struct Taint {
    mask: u64,
    /// Up to a few `file:line: why` steps explaining where SRC came from.
    trace: Vec<String>,
}

impl Taint {
    fn clean() -> Taint {
        Taint::default()
    }

    fn or(&mut self, other: &Taint) {
        self.mask |= other.mask;
        for t in &other.trace {
            if self.trace.len() >= 6 {
                break;
            }
            if !self.trace.contains(t) {
                self.trace.push(t.clone());
            }
        }
    }

    fn tainted(&self) -> bool {
        self.mask != 0
    }
}

/// Everything the evaluator needs while walking one function body.
struct Ctx<'a> {
    ws: &'a Workspace,
    f: &'a SourceFile,
    /// Variable name → taint, flat per function (no shadowing model).
    env: BTreeMap<String, Taint>,
    /// This fn's in-progress summary updates.
    ret: u64,
    to_sink: u64,
    /// Only the final (post-fixpoint) walk emits findings.
    report: bool,
    findings: Vec<Finding>,
    /// Suppressed findings (line, message) — the TAINT-OK catalogue.
    suppressed: Vec<Finding>,
}

/// The pass result: violations plus the catalogued escape hatches.
#[derive(Debug, Default)]
pub struct TaintReport {
    pub findings: Vec<Finding>,
    /// Findings suppressed by a `// TAINT-OK:` comment, catalogued so the
    /// escape hatch is visible in review and in the JSON output.
    pub taint_ok: Vec<Finding>,
}

/// Runs the privacy-taint pass over the workspace.
pub fn run(ws: &Workspace) -> TaintReport {
    let mut catalogue_findings = Vec::new();
    // Catalogue defense: the evaluator resolves sources and sanitizers by
    // bare name, so a same-named fn in an unrelated crate would silently
    // widen the seeding (source alias) or bless raw flows (sanitizer
    // alias). Flag the alias at its definition instead of guessing.
    for (names, crates, what) in [
        (SOURCE_FNS, SOURCE_CRATES, "source"),
        (SANITIZERS, SANITIZER_CRATES, "sanitizer"),
    ] {
        for name in names {
            for &id in ws.fns_named(name) {
                let fd = &ws.fns[id];
                if !fd.is_test && !crates.contains(&fd.crate_name.as_str()) {
                    catalogue_findings.push(Finding {
                        file: ws.files[fd.file].path.clone(),
                        line: fd.line,
                        rule: "taint-catalogue",
                        message: format!(
                            "`fn {name}` in crate `{}` aliases the taint {what} of the same \
                             name — rename it, or extend the analyzer catalogue if it really \
                             is one",
                            fd.crate_name
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
    }
    // Fixpoint over function summaries: monotone |= on two u64s per fn,
    // so this terminates; 20 rounds is far beyond the call-graph depth.
    let mut summaries: Vec<Summary> = vec![Summary::default(); ws.fns.len()];
    for _ in 0..20 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            let (ret, to_sink) = analyze_fn(ws, id, &summaries, false)
                .map(|ctx| (ctx.ret, ctx.to_sink))
                .unwrap_or((0, 0));
            let s = &mut summaries[id];
            let next = Summary {
                ret: s.ret | ret,
                to_sink: s.to_sink | to_sink,
            };
            if next != *s {
                *s = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting walk: only non-test fns outside the sanitizers themselves
    // (a sanitizer consumes raw values by definition).
    let mut report = TaintReport::default();
    report.findings.append(&mut catalogue_findings);
    for id in 0..ws.fns.len() {
        let fndef = &ws.fns[id];
        if fndef.is_test || SANITIZERS.contains(&fndef.name.as_str()) {
            continue;
        }
        if let Some(ctx) = analyze_fn(ws, id, &summaries, true) {
            report.findings.extend(ctx.findings);
            report.taint_ok.extend(ctx.suppressed);
        }
    }

    // Stale TAINT-OK detection: every TAINT-OK comment line must have
    // suppressed at least one finding.
    let used: Vec<(&std::path::PathBuf, u32)> =
        report.taint_ok.iter().map(|f| (&f.file, f.line)).collect();
    for file in &ws.files {
        for (&line, text) in &file.comments {
            if !text.contains("TAINT-OK:") {
                continue;
            }
            // The comment may sit on the flagged line or on the lines
            // above it: accept if any suppression within 3 lines below.
            let hit = used
                .iter()
                .any(|(p, l)| *p == &file.path && (line..=line + 3).contains(l));
            if !hit {
                report.findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: "taint-ok-stale",
                    message: "`TAINT-OK:` comment suppresses no taint finding — remove it \
                              or move it to the flagged line"
                        .to_string(),
                    trace: Vec::new(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Walks one fn body, returning its context (None when there is no body).
fn analyze_fn<'a>(
    ws: &'a Workspace,
    id: usize,
    summaries: &[Summary],
    report: bool,
) -> Option<Ctx<'a>> {
    let fndef = &ws.fns[id];
    let (open, close) = fndef.body?;
    let f = &ws.files[fndef.file];
    let mut env = BTreeMap::new();
    let base = usize::from(fndef.has_self);
    if fndef.has_self {
        env.insert(
            "self".to_string(),
            Taint {
                mask: 1,
                trace: Vec::new(),
            },
        );
    }
    for (i, p) in fndef.params.iter().enumerate() {
        env.insert(
            p.name.clone(),
            Taint {
                mask: 1u64 << (i + base).min(60),
                trace: Vec::new(),
            },
        );
    }
    let mut ctx = Ctx {
        ws,
        f,
        env,
        ret: 0,
        to_sink: 0,
        report,
        findings: Vec::new(),
        suppressed: Vec::new(),
    };
    let ret = walk_block(&mut ctx, summaries, open + 1, close, true);
    ctx.ret |= ret.mask;
    Some(ctx)
}

/// Processes the statements of a block; returns the trailing-expr taint
/// when `value_position` (the block's value flows outward).
fn walk_block(
    ctx: &mut Ctx<'_>,
    summaries: &[Summary],
    a: usize,
    b: usize,
    value_position: bool,
) -> Taint {
    let mut i = a;
    let mut last = Taint::clean();
    while i < b {
        // Skip attributes and nested items the tree walker owns.
        if ctx.f.is_punct(i, "#") {
            let mut j = i + 1;
            if ctx.f.is_punct(j, "!") {
                j += 1;
            }
            if ctx.f.is_punct(j, "[") && ctx.f.close_of[j] != usize::MAX {
                i = ctx.f.close_of[j] + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if ctx.f.is_ident(i, "fn") {
            // Nested fn: analyzed as its own FnDef; skip its body here.
            let mut j = i;
            while j < b && !ctx.f.is_punct(j, "{") && !ctx.f.is_punct(j, ";") {
                j += 1;
            }
            i = if j < b && ctx.f.is_punct(j, "{") && ctx.f.close_of[j] != usize::MAX {
                ctx.f.close_of[j] + 1
            } else {
                j + 1
            };
            continue;
        }
        // Find the end of this statement: `;` at depth 0, or a top-level
        // block (control flow), or the block end.
        let (stmt_end, kind) = stmt_extent(ctx.f, i, b);
        match kind {
            StmtKind::Semi => {
                process_stmt(ctx, summaries, i, stmt_end, false);
                last = Taint::clean();
                i = stmt_end + 1;
            }
            StmtKind::Block(open) => {
                let close = ctx.f.close_of[open];
                let close = if close == usize::MAX || close > b {
                    b
                } else {
                    close
                };
                process_block_stmt(ctx, summaries, i, open, close);
                last = Taint::clean();
                i = close + 1;
                // `if {} else {}` / `else if` chains continue the statement.
                while ctx.f.is_ident(i, "else") {
                    let (e2, k2) = stmt_extent(ctx.f, i + 1, b);
                    match k2 {
                        StmtKind::Block(o2) => {
                            let c2 = ctx.f.close_of[o2];
                            let c2 = if c2 == usize::MAX || c2 > b { b } else { c2 };
                            process_block_stmt(ctx, summaries, i + 1, o2, c2);
                            i = c2 + 1;
                        }
                        _ => {
                            process_stmt(ctx, summaries, i + 1, e2, false);
                            i = e2 + 1;
                        }
                    }
                }
            }
            StmtKind::Trailing => {
                last = process_stmt(ctx, summaries, i, stmt_end, value_position);
                i = stmt_end;
            }
        }
    }
    last
}

enum StmtKind {
    /// Ends with `;` at `stmt_end`.
    Semi,
    /// Contains a top-level `{` at the given sig index (control flow).
    Block(usize),
    /// Runs to the end of the enclosing block (trailing expression).
    Trailing,
}

/// Scans from `i` for the statement boundary.
fn stmt_extent(f: &SourceFile, i: usize, b: usize) -> (usize, StmtKind) {
    let mut depth = 0i32;
    let mut j = i;
    // `let … = match/if/loop { … }` statements: a `{` after `=` belongs to
    // the RHS expression, which `eval` handles inline — only `{` before
    // any top-level `=` opens a control-flow block.
    let mut saw_assign = false;
    while j < b {
        match f.txt(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "=" | "+=" | "-=" if depth == 0 => saw_assign = true,
            ";" if depth == 0 => return (j, StmtKind::Semi),
            "{" if depth == 0 && !saw_assign => return (j, StmtKind::Block(j)),
            "{" if depth == 0 && saw_assign => {
                // Part of the RHS: skip over the braced expression.
                let c = f.close_of[j];
                if c == usize::MAX || c >= b {
                    return (b, StmtKind::Trailing);
                }
                j = c;
            }
            _ => {}
        }
        j += 1;
    }
    (b, StmtKind::Trailing)
}

/// A statement whose top level is a control-flow block:
/// `if`/`while`/`for`/`loop`/`match`/`unsafe`/bare block.
fn process_block_stmt(
    ctx: &mut Ctx<'_>,
    summaries: &[Summary],
    start: usize,
    open: usize,
    close: usize,
) {
    let f = ctx.f;
    if f.is_ident(start, "for") {
        // `for <pat> in <expr> { … }` — bind pattern idents to the
        // iterated expression's taint (covers `for r in reports`).
        let mut k = start + 1;
        let mut depth = 0i32;
        let mut in_kw = open;
        while k < open {
            match f.txt(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth == 0 => {
                    in_kw = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let m = eval(ctx, summaries, in_kw + 1, open);
        bind_pattern(ctx, start + 1, in_kw, &m);
    } else if f.is_ident(start, "match") {
        let m = eval(ctx, summaries, start + 1, open);
        walk_match_body(ctx, summaries, open + 1, close, &m);
        return;
    } else if f.is_ident(start, "if") || f.is_ident(start, "while") {
        // `if let <pat> = <expr>` binds; a plain condition just evaluates.
        let mut hdr = start + 1;
        if f.is_ident(hdr, "let") {
            // Pattern up to the top-level `=`.
            let mut k = hdr + 1;
            let mut depth = 0i32;
            let mut eq = open;
            while k < open {
                match f.txt(k) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" if depth == 0 => {
                        eq = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let m = eval(ctx, summaries, eq + 1, open);
            bind_pattern(ctx, hdr + 1, eq, &m);
            hdr = open; // header consumed
        }
        if hdr < open {
            eval(ctx, summaries, hdr, open);
        }
    } else if !f.is_ident(start, "loop") && !f.is_ident(start, "unsafe") && start < open {
        // Some other header expression (e.g. `thread::scope(|s| …)` is a
        // Semi statement; this arm is rare) — evaluate it for sink calls.
        eval(ctx, summaries, start, open);
    }
    walk_block(ctx, summaries, open + 1, close, false);
}

/// Walks `pat => expr` arms, binding pattern idents to the scrutinee mask.
fn walk_match_body(ctx: &mut Ctx<'_>, summaries: &[Summary], a: usize, b: usize, scrut: &Taint) {
    let f = ctx.f;
    let mut i = a;
    while i < b {
        // Pattern: tokens up to `=>` at depth 0.
        let mut depth = 0i32;
        let mut j = i;
        let mut arrow = b;
        while j < b {
            match f.txt(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=>" if depth == 0 => {
                    arrow = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if arrow >= b {
            // No more arms; evaluate the remainder defensively.
            eval(ctx, summaries, i, b);
            return;
        }
        bind_pattern(ctx, i, arrow, scrut);
        // Arm body: a block, or an expression up to `,` at depth 0.
        let body_start = arrow + 1;
        if f.is_punct(body_start, "{") && f.close_of[body_start] != usize::MAX {
            let c = f.close_of[body_start].min(b);
            walk_block(ctx, summaries, body_start + 1, c, false);
            i = c + 1;
            if f.is_punct(i, ",") {
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            let mut k = body_start;
            while k < b {
                match f.txt(k) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let v = eval(ctx, summaries, body_start, k);
            ctx.ret |= 0; // arm values feed the match value via the caller's eval
            let _ = v;
            i = k + 1;
        }
    }
}

/// Binds every plain ident in a pattern range to `m` (enum constructor
/// names get bound too — harmless, they are never read as variables).
fn bind_pattern(ctx: &mut Ctx<'_>, a: usize, b: usize, m: &Taint) {
    if !m.tainted() {
        return;
    }
    for k in a..b {
        if ctx.f.tok(k).kind == TokKind::Ident {
            let t = ctx.f.txt(k);
            if matches!(t, "mut" | "ref" | "box" | "_") {
                continue;
            }
            ctx.env.entry(t.to_string()).or_default().or(m);
        }
    }
}

/// One `;`-terminated (or trailing) statement.
fn process_stmt(
    ctx: &mut Ctx<'_>,
    summaries: &[Summary],
    a: usize,
    b: usize,
    value_position: bool,
) -> Taint {
    let f = ctx.f;
    if a >= b {
        return Taint::clean();
    }
    if f.is_ident(a, "let") {
        // `let <pat>[: ty] = <expr>` — bind pattern idents to the RHS.
        let mut depth = 0i32;
        let mut eq = b;
        let mut colon = b;
        for k in a + 1..b {
            match f.txt(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ":" if depth == 0 && colon == b => colon = k,
                "=" if depth == 0 => {
                    eq = k;
                    break;
                }
                _ => {}
            }
        }
        if eq < b {
            let m = eval(ctx, summaries, eq + 1, b);
            bind_pattern(ctx, a + 1, colon.min(eq), &m);
        }
        return Taint::clean();
    }
    if f.is_ident(a, "return") {
        let m = eval(ctx, summaries, a + 1, b);
        ctx.ret |= m.mask;
        return Taint::clean();
    }
    // Assignment / compound assignment: `lhs = rhs`, `lhs += rhs`,
    // `lhs.push(rhs)`-style mutation is handled inside eval.
    let mut depth = 0i32;
    for k in a..b {
        match f.txt(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" | "+=" | "-=" | "*=" | "/=" | "|=" | "&=" | "^=" if depth == 0 => {
                let m = eval(ctx, summaries, k + 1, b);
                // Taint the root variable of the LHS place expression
                // (`buffers[g]` → buffers, `node.agg` → node).
                if m.tainted() {
                    if let Some(root) = place_root(f, a, k) {
                        ctx.env.entry(root).or_default().or(&m);
                    }
                }
                eval(ctx, summaries, a, k); // index exprs may contain calls
                return Taint::clean();
            }
            "==" | "<=" | ">=" | "=>" => {}
            _ => {}
        }
    }
    let m = eval(ctx, summaries, a, b);
    if value_position {
        ctx.ret |= m.mask;
    }
    m
}

/// The root variable of a place expression (first ident, skipping `self`
/// when a field follows — `self.counts` mutates self's storage).
fn place_root(f: &SourceFile, a: usize, b: usize) -> Option<String> {
    for k in a..b {
        if f.tok(k).kind == TokKind::Ident {
            let t = f.txt(k);
            if t == "mut" {
                continue;
            }
            return Some(t.to_string());
        }
        if f.is_punct(k, "*") || f.is_punct(k, "&") {
            continue;
        }
    }
    None
}

/// Methods that fold argument taint into their receiver variable.
const GROWS_RECEIVER: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "push_str",
];

/// Evaluates an expression range: returns its taint, emitting findings for
/// tainted arguments reaching sinks. Conservative: the result is the OR of
/// every contributing sub-expression.
fn eval(ctx: &mut Ctx<'_>, summaries: &[Summary], a: usize, b: usize) -> Taint {
    let mut acc = Taint::clean();
    let mut i = a;
    // Root ident of the current postfix chain (for `.push(x)` mutation).
    let mut chain_root: Option<String> = None;
    // Taint of the chain receiver so far (for method calls / closures).
    let mut recv = Taint::clean();
    while i < b {
        let f = ctx.f;
        let t = f.txt(i);
        let kind = f.tok(i).kind;
        match kind {
            TokKind::Ident => {
                let is_call =
                    f.is_punct(i + 1, "(") || (f.is_punct(i + 1, "!") && f.is_punct(i + 2, "("));
                let is_method = i > a && f.is_punct(i.wrapping_sub(1), ".");
                if t == "match" {
                    // Inline match expression: scrutinee to the `{`.
                    let mut j = i + 1;
                    let mut depth = 0i32;
                    while j < b {
                        match f.txt(j) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if j < b && f.is_punct(j, "{") && f.close_of[j] != usize::MAX {
                        let scrut = eval(ctx, summaries, i + 1, j);
                        acc.or(&scrut);
                        let c = f.close_of[j].min(b);
                        // Arm values flow into the expression value: OR
                        // everything the arms evaluate to.
                        walk_match_body(ctx, summaries, j + 1, c, &scrut);
                        let arms = eval_idents_only(ctx, j + 1, c);
                        acc.or(&arms);
                        i = c + 1;
                        continue;
                    }
                }
                if is_call {
                    let open = if f.is_punct(i + 1, "(") { i + 1 } else { i + 2 };
                    let close = f.close_of[open];
                    if close == usize::MAX || close > b {
                        i += 1;
                        continue;
                    }
                    let args = split_args(f, open + 1, close);
                    let mut arg_taints: Vec<Taint> = Vec::new();
                    for (s, e) in &args {
                        arg_taints.push(eval_arg(ctx, summaries, *s, *e, &recv));
                    }
                    let line = f.line(i);
                    let contribution =
                        apply_call(ctx, t, line, is_method, &recv, &arg_taints, summaries);
                    // Mutating container methods taint the receiver var.
                    if is_method && GROWS_RECEIVER.contains(&t) {
                        let mut m = Taint::clean();
                        for at in &arg_taints {
                            m.or(at);
                        }
                        if m.tainted() {
                            if let Some(root) = &chain_root {
                                ctx.env.entry(root.clone()).or_default().or(&m);
                            }
                        }
                    }
                    recv = contribution.clone();
                    acc.or(&contribution);
                    i = close + 1;
                    // `?` propagates the value into the fn's return path.
                    if f.is_punct(i, "?") {
                        ctx.ret |= contribution.mask;
                        i += 1;
                    }
                    continue;
                }
                // Plain ident: variable read (or path segment / keyword).
                if !matches!(
                    t,
                    "if" | "else"
                        | "loop"
                        | "while"
                        | "for"
                        | "in"
                        | "as"
                        | "mut"
                        | "ref"
                        | "move"
                        | "return"
                        | "break"
                        | "continue"
                        | "let"
                        | "unsafe"
                        | "true"
                        | "false"
                        | "dyn"
                        | "impl"
                        | "where"
                        | "box"
                        | "await"
                ) {
                    // Skip pure path prefixes (`felip_obs :: diag :: error`).
                    let is_path_prefix = f.is_punct(i + 1, "::");
                    if !is_path_prefix {
                        if let Some(v) = ctx.env.get(t) {
                            let v = v.clone();
                            if !is_method {
                                chain_root = Some(t.to_string());
                                recv = v.clone();
                            } else {
                                recv.or(&v);
                            }
                            acc.or(&v);
                        } else if !is_method {
                            chain_root = Some(t.to_string());
                            recv = Taint::clean();
                        }
                    }
                }
                i += 1;
            }
            TokKind::Punct => {
                match t {
                    "{" => {
                        // Struct literal or block expression: walk inside
                        // (conservative OR of contents).
                        let close = f.close_of[i];
                        if close != usize::MAX && close <= b {
                            let inner = walk_block(ctx, summaries, i + 1, close, true);
                            acc.or(&inner);
                            let rest = eval_idents_only(ctx, i + 1, close);
                            acc.or(&rest);
                            i = close + 1;
                            continue;
                        }
                        i += 1;
                    }
                    "|" => {
                        // Closure at expression level (not an arg): bind
                        // params clean and walk the body.
                        let end = closure_params_end(f, i, b);
                        i = end;
                    }
                    ";" => {
                        // Shouldn't appear (statement layer splits); skip.
                        i += 1;
                    }
                    "." => {
                        i += 1;
                    }
                    _ => {
                        if !matches!(t, "::") {
                            chain_root = chain_root.take();
                        }
                        i += 1;
                    }
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    acc
}

/// OR of env lookups for every ident in a range (no call handling) — used
/// to fold match-arm values into an expression result.
fn eval_idents_only(ctx: &Ctx<'_>, a: usize, b: usize) -> Taint {
    let mut acc = Taint::clean();
    for k in a..b {
        if ctx.f.tok(k).kind == TokKind::Ident {
            if let Some(v) = ctx.env.get(ctx.f.txt(k)) {
                acc.or(&v.clone());
            }
        }
    }
    acc
}

/// Evaluates one call argument. A closure argument (`|x| …`) binds its
/// parameters to the receiver's taint — `.map(|x| …)` over a tainted
/// iterator taints `x`.
fn eval_arg(ctx: &mut Ctx<'_>, summaries: &[Summary], a: usize, b: usize, recv: &Taint) -> Taint {
    let f = ctx.f;
    let mut start = a;
    if f.is_ident(start, "move") {
        start += 1;
    }
    if start < b && (f.is_punct(start, "|") || f.is_punct(start, "||")) {
        let body_start = if f.is_punct(start, "||") {
            start + 1
        } else {
            let end = closure_params_end(f, start, b);
            // Bind closure params to the receiver taint.
            if recv.tainted() {
                bind_pattern(ctx, start + 1, end.saturating_sub(1), recv);
            }
            end
        };
        return eval(ctx, summaries, body_start, b);
    }
    eval(ctx, summaries, a, b)
}

/// Index just past the closing `|` of a closure's parameter list.
fn closure_params_end(f: &SourceFile, bar: usize, b: usize) -> usize {
    let mut k = bar + 1;
    let mut depth = 0i32;
    while k < b {
        match f.txt(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    b
}

/// Splits a call's argument list at top-level commas.
fn split_args(f: &SourceFile, a: usize, b: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = a;
    for k in a..b {
        match f.txt(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < b {
        out.push((start, b));
    }
    out
}

/// Applies the taint semantics of one call: sources return SRC, sanitizers
/// return clean, sinks flag tainted arguments, known fns substitute their
/// summaries, unknown fns propagate the OR of their inputs.
fn apply_call(
    ctx: &mut Ctx<'_>,
    name: &str,
    line: u32,
    is_method: bool,
    recv: &Taint,
    args: &[Taint],
    summaries: &[Summary],
) -> Taint {
    if SANITIZERS.contains(&name) {
        return Taint::clean();
    }
    if SOURCE_FNS.contains(&name) && is_method {
        let mut t = Taint {
            mask: SRC,
            trace: Vec::new(),
        };
        t.trace.push(format!(
            "{}:{}: raw values read via `{}()`",
            ctx.f.path.display(),
            line,
            name
        ));
        return t;
    }
    if let Some((_, crates)) = SINKS.iter().find(|(n, _)| *n == name) {
        // A sink only if a fn of this name is actually defined in one of
        // the sink crates (name resolution, not blind string match).
        let defined_in_sink_crate = ctx
            .ws
            .fns_named(name)
            .iter()
            .any(|&id| crates.contains(&ctx.ws.fns[id].crate_name.as_str()));
        if defined_in_sink_crate {
            for (idx, at) in args.iter().enumerate() {
                if at.mask & SRC != 0 {
                    emit_sink_finding(ctx, name, line, idx, at);
                } else if at.mask != 0 {
                    // Parameter-relative taint: the caller decides.
                    ctx.to_sink |= at.mask;
                }
            }
            return Taint::clean();
        }
    }
    // Known workspace fn(s): substitute summaries (union over candidates
    // that plausibly match the call shape).
    let candidates: Vec<usize> = ctx
        .ws
        .fns_named(name)
        .iter()
        .copied()
        .filter(|&id| {
            let fd = &ctx.ws.fns[id];
            fd.has_self == is_method || !is_method
        })
        .collect();
    if !candidates.is_empty() {
        let mut out = Taint::clean();
        for &id in &candidates {
            let fd = &ctx.ws.fns[id];
            let s = summaries[id];
            // Map call-site values onto the callee's param bits: the
            // receiver is bit 0 for methods, args follow.
            let mut site: Vec<&Taint> = Vec::new();
            if fd.has_self {
                site.push(recv);
            }
            site.extend(args.iter());
            for (bit_idx, at) in site.iter().enumerate() {
                let bit = 1u64 << bit_idx.min(60);
                if s.ret & bit != 0 {
                    out.or(at);
                }
                if s.to_sink & bit != 0 && at.mask != 0 {
                    if at.mask & SRC != 0 {
                        let mut via = (*at).clone();
                        via.trace.push(format!(
                            "{}:{}: flows into sink inside `{}`",
                            ctx.f.path.display(),
                            line,
                            fd.qual
                        ));
                        emit_sink_finding(ctx, &fd.qual, line, bit_idx, &via);
                    } else {
                        ctx.to_sink |= at.mask;
                    }
                }
            }
            if s.ret & SRC != 0 {
                out.mask |= SRC;
                out.trace.push(format!(
                    "{}:{}: `{}` returns raw values",
                    ctx.f.path.display(),
                    line,
                    fd.qual
                ));
            }
        }
        return out;
    }
    // Unknown callee: conservative passthrough of every input.
    let mut out = recv.clone();
    for at in args {
        out.or(at);
    }
    out
}

fn emit_sink_finding(ctx: &mut Ctx<'_>, sink: &str, line: u32, arg_idx: usize, taint: &Taint) {
    if !ctx.report {
        return;
    }
    let finding = Finding {
        file: ctx.f.path.clone(),
        line,
        rule: "privacy-taint",
        message: format!(
            "raw (un-perturbed) value reaches sink `{sink}` (argument {arg_idx}) without \
             passing a sanitizer — only ε-LDP perturbed reports may leave the pipeline"
        ),
        trace: taint.trace.clone(),
    };
    if ctx.f.comment_above_contains(line, "TAINT-OK:") {
        ctx.suppressed.push(finding);
    } else {
        ctx.findings.push(finding);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Workspace;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(files)
    }

    const DATASET: (&str, &str) = (
        "crates/common/src/dataset.rs",
        "pub struct Dataset { flat: Vec<u32> }\n\
         impl Dataset {\n\
             pub fn row(&self, i: usize) -> &[u32] { &self.flat[i..i + 1] }\n\
         }\n",
    );
    const WIRE: (&str, &str) = (
        "crates/server/src/wire.rs",
        "pub fn encode_reports(buf: &mut Vec<u8>, reports: &[u32]) { buf.push(reports.len() as u8); }\n",
    );
    const FO: (&str, &str) = (
        "crates/fo/src/grr.rs",
        "pub fn perturb(cell: u32, r: u64) -> u32 { cell ^ r as u32 }\n",
    );

    #[test]
    fn direct_raw_to_wire_flow_is_flagged() {
        let w = ws(&[
            DATASET,
            WIRE,
            (
                "crates/server/src/bad.rs",
                "fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     encode_reports(buf, raw);\n\
                 }\n",
            ),
        ]);
        let rep = run(&w);
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        let f = &rep.findings[0];
        assert_eq!(f.rule, "privacy-taint");
        assert_eq!(f.line, 3);
        assert!(!f.trace.is_empty(), "finding should carry a flow trace");
    }

    #[test]
    fn sanitized_flow_is_clean() {
        let w = ws(&[
            DATASET,
            WIRE,
            FO,
            (
                "crates/server/src/good.rs",
                "fn ok(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     let report = perturb(raw[0], 7);\n\
                     let reports = vec![report];\n\
                     encode_reports(buf, &reports);\n\
                 }\n",
            ),
        ]);
        let rep = run(&w);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn interprocedural_flow_through_helper_is_flagged() {
        let w = ws(&[
            DATASET,
            WIRE,
            (
                "crates/server/src/indirect.rs",
                "fn fetch(d: &Dataset) -> &[u32] { d.row(0) }\n\
                 fn ship(buf: &mut Vec<u8>, vals: &[u32]) { encode_reports(buf, vals); }\n\
                 fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let vals = fetch(d);\n\
                     ship(buf, vals);\n\
                 }\n",
            ),
        ]);
        let rep = run(&w);
        assert!(
            rep.findings
                .iter()
                .any(|f| f.rule == "privacy-taint" && f.line == 5),
            "helper flow not flagged: {:?}",
            rep.findings
        );
    }

    #[test]
    fn taint_ok_suppresses_and_is_catalogued() {
        let w = ws(&[
            DATASET,
            WIRE,
            (
                "crates/server/src/waived.rs",
                "fn waived(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     // TAINT-OK: fixture — synthetic data only.\n\
                     encode_reports(buf, raw);\n\
                 }\n",
            ),
        ]);
        let rep = run(&w);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.taint_ok.len(), 1);
    }

    #[test]
    fn stale_taint_ok_is_flagged() {
        let w = ws(&[(
            "crates/server/src/stale.rs",
            "// TAINT-OK: nothing here needs this.\nfn fine() {}\n",
        )]);
        let rep = run(&w);
        assert!(
            rep.findings.iter().any(|f| f.rule == "taint-ok-stale"),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn closure_over_tainted_iterator_taints_params() {
        let w = ws(&[
            DATASET,
            WIRE,
            (
                "crates/server/src/closure.rs",
                "fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let rows = d.rows();\n\
                     rows.for_each(|r| encode_reports(buf, r));\n\
                 }\n",
            ),
            (
                "crates/common/src/more.rs",
                "impl Dataset { pub fn rows(&self) -> &[u32] { &self.flat } }\n",
            ),
        ]);
        let rep = run(&w);
        assert!(
            rep.findings.iter().any(|f| f.line == 3),
            "closure flow not flagged: {:?}",
            rep.findings
        );
    }

    #[test]
    fn match_arm_bindings_carry_taint() {
        let w = ws(&[
            DATASET,
            WIRE,
            (
                "crates/server/src/matched.rs",
                "fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let v = Some(d.row(0));\n\
                     match v {\n\
                         Some(raw) => encode_reports(buf, raw),\n\
                         None => {}\n\
                     }\n\
                 }\n",
            ),
        ]);
        let rep = run(&w);
        assert!(
            rep.findings.iter().any(|f| f.line == 4),
            "match flow not flagged: {:?}",
            rep.findings
        );
    }
}
