fn main() {
    std::process::exit(xtask::run(std::env::args().skip(1)));
}
