//! `xtask analyze` — the token-tree analysis driver (DESIGN.md §18).
//!
//! Pipeline: `lex` (lossless tokens) → `tree` (items, fn signatures,
//! bracket structure) → passes:
//!
//! * `taint`  — privacy-taint: raw values must not reach wire/log sinks
//! * `locks`  — static lock-order graph over felip-sync mutexes, no cycles
//! * `arith`  — explicit overflow semantics on count arithmetic
//! * `rules`  — token-level ports of the PR-5 lint rules R1/R2/R3/R5/R6
//!
//! plus the two content-anchored PR-5 string rules (golden-constants,
//! bench-schema) which stay on the line scanner. Output is the PR-5
//! `file:line: [rule] message` shape, or `--format json` for tooling.

use std::path::{Path, PathBuf};

use crate::tree::Workspace;
use crate::{arith, locks, rules, taint};

/// One analyzer finding. Like the PR-5 `Diagnostic` plus an optional
/// flow trace (taint findings explain where the raw value came from).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Finding {
    pub file: PathBuf,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    /// `file:line: why` steps for dataflow findings; empty otherwise.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        for t in &self.trace {
            write!(f, "\n    via {t}")?;
        }
        Ok(())
    }
}

/// Everything one `analyze` run produces.
pub struct AnalyzeReport {
    pub findings: Vec<Finding>,
    /// Findings waived by `// TAINT-OK:` — catalogued, not failing.
    pub taint_ok: Vec<Finding>,
    /// The lock graph, for `--dump-locks`.
    pub locks: locks::LockReport,
}

/// Runs every pass against the workspace at `root`.
pub fn analyze_root(root: &Path) -> AnalyzeReport {
    let ws = Workspace::load(root);
    let mut findings: Vec<Finding> = Vec::new();

    // A file the lexer cannot tokenize is invisible to every pass — that
    // must fail loudly, not silently shrink coverage.
    for (path, msg) in &ws.lex_errors {
        findings.push(Finding {
            file: path.clone(),
            line: 1,
            rule: "lex",
            message: format!("file failed to tokenize ({msg}) — analyzer coverage hole"),
            trace: Vec::new(),
        });
    }

    let taint_report = taint::run(&ws);
    findings.extend(taint_report.findings);
    let lock_report = locks::run(&ws);
    findings.extend(lock_report.findings.iter().cloned());
    findings.extend(arith::run(&ws));
    findings.extend(rules::run(&ws, root));

    // Content-anchored string rules stay on the PR-5 scanner.
    let mut diags = Vec::new();
    crate::rule_golden_constants(root, &mut diags);
    crate::rule_bench_schema(root, &mut diags);
    findings.extend(diags.into_iter().map(|d| Finding {
        file: d.file,
        line: d.line as u32,
        rule: d.rule,
        message: d.message,
        trace: Vec::new(),
    }));

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AnalyzeReport {
        findings,
        taint_ok: taint_report.taint_ok,
        locks: lock_report,
    }
}

/// `--format json`: one self-describing object, stable field order, so CI
/// can diff finding sets across PRs.
pub fn to_json(report: &AnalyzeReport) -> String {
    let mut s = String::from("{\"t\":\"analyze\",\"version\":1,\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        finding_json(&mut s, f);
    }
    s.push_str("],\"taint_ok\":[");
    for (i, f) in report.taint_ok.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        finding_json(&mut s, f);
    }
    s.push_str("]}");
    s
}

fn finding_json(s: &mut String, f: &Finding) {
    s.push_str("{\"file\":");
    json_str(s, &f.file.display().to_string());
    s.push_str(&format!(",\"line\":{}", f.line));
    s.push_str(",\"rule\":");
    json_str(s, f.rule);
    s.push_str(",\"message\":");
    json_str(s, &f.message);
    s.push_str(",\"trace\":[");
    for (i, t) in f.trace.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json_str(s, t);
    }
    s.push_str("]}");
}

fn json_str(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let report = AnalyzeReport {
            findings: vec![Finding {
                file: PathBuf::from("a \"b\".rs"),
                line: 3,
                rule: "privacy-taint",
                message: "x\ny".to_string(),
                trace: vec!["t1".to_string()],
            }],
            taint_ok: Vec::new(),
            locks: Default::default(),
        };
        let j = to_json(&report);
        assert!(j.starts_with("{\"t\":\"analyze\",\"version\":1,"), "{j}");
        assert!(j.contains("\"file\":\"a \\\"b\\\".rs\""), "{j}");
        assert!(j.contains("\"message\":\"x\\ny\""), "{j}");
        assert!(j.contains("\"trace\":[\"t1\"]"), "{j}");
        assert!(j.ends_with("\"taint_ok\":[]}"), "{j}");
    }
}
