//! The workspace itself must lint clean: any rule violation introduced in
//! `crates/` (or catalogue drift in DESIGN.md §11) fails the test suite,
//! not just the CI lint job.

use std::path::Path;

#[test]
fn workspace_passes_every_analyzer_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root");
    let rep = xtask::analyze::analyze_root(root);
    assert!(
        rep.findings.is_empty(),
        "xtask analyze found {} finding(s):\n{}",
        rep.findings.len(),
        rep.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The lock graph must be non-trivial: an empty graph would mean the
    // pass silently stopped seeing `.lock()` sites, not that the code
    // became lock-free.
    assert!(
        !rep.locks.edges.is_empty(),
        "lock-order pass saw no acquisition edges — scope regression"
    );
}

#[test]
fn workspace_passes_every_lint_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root");
    let diags = xtask::lint_root(root);
    assert!(
        diags.is_empty(),
        "xtask lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
