//! The workspace itself must lint clean: any rule violation introduced in
//! `crates/` (or catalogue drift in DESIGN.md §11) fails the test suite,
//! not just the CI lint job.

use std::path::Path;

#[test]
fn workspace_passes_every_lint_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root");
    let diags = xtask::lint_root(root);
    assert!(
        diags.is_empty(),
        "xtask lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
