//! Lexer round-trip over the real tree: every `.rs` file in the workspace
//! (including xtask itself and integration tests) must tokenize without
//! error, and the token spans must tile the source exactly — no gaps, no
//! overlaps, no text the analyzer cannot see. A file the lexer mangles is
//! a silent coverage hole for every analysis pass.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::lex;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_tokenizes_and_tiles() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root");
    let mut files = Vec::new();
    for sub in ["crates", "xtask", "src"] {
        collect_rs(&root.join(sub), &mut files);
    }
    assert!(
        files.len() > 40,
        "expected the full workspace, found only {} .rs files",
        files.len()
    );

    for path in &files {
        let src =
            fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let toks = match lex::lex(&src) {
            Ok(t) => t,
            Err(e) => panic!("{}:{}: lex error: {}", path.display(), e.line, e.message),
        };
        assert!(
            lex::tokens_tile(&src, &toks),
            "{}: token spans do not tile the source",
            path.display()
        );
        // Line numbers must be monotone — the passes report by line, and a
        // regression here would mislabel every finding in the file.
        let mut last = 1;
        for t in &toks {
            assert!(
                t.line >= last,
                "{}: token line went backwards ({} -> {})",
                path.display(),
                last,
                t.line
            );
            last = t.line;
        }
        // Every token's text is recoverable from its span.
        for t in &toks {
            assert!(t.end <= src.len() && src.is_char_boundary(t.start));
        }
    }
}
