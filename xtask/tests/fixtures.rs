//! End-to-end fixture crates driven through `analyze_root` — the same
//! entry point CI uses — one violating and one clean fixture per pass,
//! plus the negative control showing the PR-5 string linter misses a
//! taint flow the token-tree pass catches.
//!
//! Fixtures are written to per-test temp directories shaped like a real
//! workspace (`crates/<name>/src/*.rs`); findings are filtered by rule
//! because a bare fixture root legitimately trips the content-anchored
//! rules (missing DESIGN.md, missing golden files).

use std::fs;
use std::path::PathBuf;

use xtask::analyze::{analyze_root, to_json, Finding};

fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("xtask-fixture-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("mkdir fixture");
        fs::write(path, src).expect("write fixture");
    }
    root
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

const DATASET: (&str, &str) = (
    "crates/common/src/dataset.rs",
    "pub struct Dataset { flat: Vec<u32> }\n\
     impl Dataset {\n\
         pub fn row(&self, i: usize) -> &[u32] { &self.flat[i..i + 1] }\n\
     }\n",
);
const WIRE: (&str, &str) = (
    "crates/server/src/wire.rs",
    "pub fn encode_reports(buf: &mut Vec<u8>, reports: &[u32]) { buf.push(reports.len() as u8); }\n",
);
const FO: (&str, &str) = (
    "crates/fo/src/grr.rs",
    "pub fn perturb(cell: u32, r: u64) -> u32 { cell ^ r as u32 }\n",
);

// ---------------------------------------------------------------- taint

#[test]
fn raw_report_to_wire_flow_is_rejected() {
    let root = fixture(
        "taint-bad",
        &[
            DATASET,
            WIRE,
            (
                "crates/server/src/bad.rs",
                "fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     encode_reports(buf, raw);\n\
                 }\n",
            ),
        ],
    );
    let rep = analyze_root(&root);
    let taint = by_rule(&rep.findings, "privacy-taint");
    assert_eq!(taint.len(), 1, "{:?}", rep.findings);
    assert_eq!(taint[0].line, 3);
    assert!(
        !taint[0].trace.is_empty(),
        "taint finding must carry a flow trace"
    );
}

/// Negative control: the same raw-report-to-wire fixture sails through the
/// PR-5 string linter (it has no dataflow concept), while `analyze_root`
/// rejects it — the token-tree pass is strictly stronger here.
#[test]
fn old_string_lint_misses_the_taint_flow() {
    let root = fixture(
        "taint-control",
        &[
            DATASET,
            WIRE,
            (
                "crates/server/src/bad.rs",
                "fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     encode_reports(buf, raw);\n\
                 }\n",
            ),
        ],
    );
    let old = xtask::lint_root(&root);
    assert!(
        old.iter().all(|d| !d.file.ends_with("bad.rs")),
        "string linter unexpectedly flagged the flow file: {old:?}"
    );
    let new = analyze_root(&root);
    assert!(
        by_rule(&new.findings, "privacy-taint")
            .iter()
            .any(|f| f.file.ends_with("bad.rs")),
        "token-tree pass should flag what the string linter missed"
    );
}

#[test]
fn perturbed_flow_is_accepted() {
    let root = fixture(
        "taint-good",
        &[
            DATASET,
            WIRE,
            FO,
            (
                "crates/server/src/good.rs",
                "fn ok(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     let report = perturb(raw[0], 7);\n\
                     let reports = vec![report];\n\
                     encode_reports(buf, &reports);\n\
                 }\n",
            ),
        ],
    );
    let rep = analyze_root(&root);
    assert!(
        by_rule(&rep.findings, "privacy-taint").is_empty(),
        "{:?}",
        rep.findings
    );
}

#[test]
fn taint_ok_waiver_is_catalogued_not_failing() {
    let root = fixture(
        "taint-waived",
        &[
            DATASET,
            WIRE,
            (
                "crates/server/src/waived.rs",
                "fn waived(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     // TAINT-OK: synthetic fixture data, never user input.\n\
                     encode_reports(buf, raw);\n\
                 }\n",
            ),
        ],
    );
    let rep = analyze_root(&root);
    assert!(
        by_rule(&rep.findings, "privacy-taint").is_empty(),
        "{:?}",
        rep.findings
    );
    assert_eq!(rep.taint_ok.len(), 1, "waiver must land in the catalogue");
}

#[test]
fn stale_taint_ok_is_rejected() {
    let root = fixture(
        "taint-stale",
        &[(
            "crates/server/src/stale.rs",
            "// TAINT-OK: suppresses nothing.\nfn fine() {}\n",
        )],
    );
    let rep = analyze_root(&root);
    assert_eq!(by_rule(&rep.findings, "taint-ok-stale").len(), 1);
}

/// Catalogue defense: a sanitizer-named fn outside the allowed crates
/// would silently bless un-perturbed flows — it is flagged at its
/// definition instead.
#[test]
fn sanitizer_alias_outside_allowed_crates_is_rejected() {
    let root = fixture(
        "taint-alias",
        &[(
            "crates/server/src/alias.rs",
            "pub fn perturb(x: u32) -> u32 { x }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert_eq!(by_rule(&rep.findings, "taint-catalogue").len(), 1);
}

// ----------------------------------------------------------------- locks

#[test]
fn lock_order_cycle_is_rejected() {
    let root = fixture(
        "locks-cycle",
        &[(
            "crates/server/src/locky.rs",
            "impl S {\n\
                 fn a(&self) { let g = self.base.lock(); let h = self.shard.lock(); h.n(); g.n(); }\n\
                 fn b(&self) { let g = self.shard.lock(); let h = self.base.lock(); h.n(); g.n(); }\n\
             }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert!(
        !by_rule(&rep.findings, "lock-order").is_empty(),
        "{:?}",
        rep.findings
    );
}

#[test]
fn consistent_lock_order_is_accepted() {
    let root = fixture(
        "locks-clean",
        &[(
            "crates/server/src/locky.rs",
            "impl S {\n\
                 fn a(&self) { let g = self.base.lock(); let h = self.shard.lock(); h.n(); g.n(); }\n\
                 fn b(&self) { let g = self.base.lock(); let h = self.shard.lock(); h.n(); g.n(); }\n\
             }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert!(
        by_rule(&rep.findings, "lock-order").is_empty(),
        "{:?}",
        rep.findings
    );
}

// ----------------------------------------------------------------- arith

#[test]
fn bare_add_in_merge_path_is_rejected() {
    let root = fixture(
        "arith-bad",
        &[(
            "crates/felip/src/agg.rs",
            "impl Agg { pub fn merge(&mut self, o: &Agg) { self.n += o.n; } }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert_eq!(by_rule(&rep.findings, "checked-arith").len(), 1);
}

#[test]
fn checked_add_in_merge_path_is_accepted() {
    let root = fixture(
        "arith-good",
        &[(
            "crates/felip/src/agg.rs",
            "impl Agg { pub fn merge(&mut self, o: &Agg) -> Option<()> { \
             self.n = self.n.checked_add(o.n)?; Some(()) } }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert!(
        by_rule(&rep.findings, "checked-arith").is_empty(),
        "{:?}",
        rep.findings
    );
}

#[test]
fn wrapping_add_without_justification_is_rejected() {
    let root = fixture(
        "arith-wrap",
        &[(
            "crates/fo/src/k.rs",
            "fn accumulate(c: &mut [u64]) { c[0] = c[0].wrapping_add(1); }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert_eq!(by_rule(&rep.findings, "checked-arith").len(), 1);
}

// ------------------------------------------------------- token-rule ports

#[test]
fn unwrap_in_server_is_rejected() {
    let root = fixture(
        "rules-panic",
        &[(
            "crates/server/src/u.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert_eq!(by_rule(&rep.findings, "no-panic").len(), 1);
}

// ------------------------------------------------------- driver plumbing

#[test]
fn lex_failure_is_a_coverage_hole_finding() {
    let root = fixture(
        "lex-hole",
        &[(
            "crates/server/src/broken.rs",
            "fn f() { let s = \"unterminated; }\n",
        )],
    );
    let rep = analyze_root(&root);
    assert_eq!(by_rule(&rep.findings, "lex").len(), 1);
}

#[test]
fn json_output_carries_findings_and_traces() {
    let root = fixture(
        "json-out",
        &[
            DATASET,
            WIRE,
            (
                "crates/server/src/bad.rs",
                "fn leak(d: &Dataset, buf: &mut Vec<u8>) {\n\
                     let raw = d.row(0);\n\
                     encode_reports(buf, raw);\n\
                 }\n",
            ),
        ],
    );
    let rep = analyze_root(&root);
    let j = to_json(&rep);
    assert!(j.starts_with("{\"t\":\"analyze\",\"version\":1,"), "{j}");
    assert!(j.contains("\"rule\":\"privacy-taint\""), "{j}");
    assert!(
        j.contains("\"trace\":[\""),
        "taint finding should carry a trace: {j}"
    );
}
