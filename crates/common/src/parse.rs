//! A small parser for SQL-`WHERE`-style query strings.
//!
//! Grammar (keywords case-insensitive, attribute names resolved against the
//! schema):
//!
//! ```text
//! query  :=  pred ( AND pred )*
//! pred   :=  attr BETWEEN n AND n
//!          | attr IN ( n , n , ... )
//!          | attr =  n
//!          | attr <= n   | attr < n      (numerical only)
//!          | attr >= n   | attr > n      (numerical only)
//! ```
//!
//! Comparison sugar expands to ranges: `salary <= 80` is
//! `salary BETWEEN 0 AND 80`. This is the paper's query class (§4) in the
//! notation of its motivating example.

use crate::attr::{AttrKind, Schema};
use crate::error::{Error, Result};
use crate::query::{Predicate, Query};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(u32),
    LParen,
    RParen,
    Comma,
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Le);
                } else {
                    out.push(Token::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Ge);
                } else {
                    out.push(Token::Gt);
                }
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '_' {
                        if d != '_' {
                            num.push(d);
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = num
                    .parse()
                    .map_err(|_| Error::InvalidQuery(format!("number `{num}` out of range")))?;
                out.push(Token::Number(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(ident));
            }
            other => {
                return Err(Error::InvalidQuery(format!(
                    "unexpected character `{other}`"
                )));
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    at: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.at)
            .cloned()
            .ok_or_else(|| Error::InvalidQuery("unexpected end of query".into()))?;
        self.at += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Token::Ident(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(Error::InvalidQuery(format!(
                "expected `{kw}`, found {other:?}"
            ))),
        }
    }

    fn number(&mut self) -> Result<u32> {
        match self.next()? {
            Token::Number(v) => Ok(v),
            other => Err(Error::InvalidQuery(format!(
                "expected a number, found {other:?}"
            ))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let name = match self.next()? {
            Token::Ident(w) => w,
            other => {
                return Err(Error::InvalidQuery(format!(
                    "expected an attribute name, found {other:?}"
                )))
            }
        };
        let attr = self
            .schema
            .index_of(&name)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown attribute `{name}`")))?;
        let domain = self.schema.domain(attr);
        let is_num = self.schema.attr(attr).kind == AttrKind::Numerical;
        let require_num = |ok: bool, op: &str| {
            if ok {
                Ok(())
            } else {
                Err(Error::InvalidQuery(format!(
                    "operator `{op}` needs a numerical attribute, `{name}` is categorical"
                )))
            }
        };
        match self.next()? {
            Token::Ident(w) if w.eq_ignore_ascii_case("between") => {
                require_num(is_num, "BETWEEN")?;
                let lo = self.number()?;
                self.keyword("and")?;
                let hi = self.number()?;
                Ok(Predicate::between(attr, lo, hi))
            }
            Token::Ident(w) if w.eq_ignore_ascii_case("in") => {
                match self.next()? {
                    Token::LParen => {}
                    other => {
                        return Err(Error::InvalidQuery(format!(
                            "expected `(` after IN, found {other:?}"
                        )))
                    }
                }
                let mut vals = vec![self.number()?];
                loop {
                    match self.next()? {
                        Token::Comma => vals.push(self.number()?),
                        Token::RParen => break,
                        other => {
                            return Err(Error::InvalidQuery(format!(
                                "expected `,` or `)`, found {other:?}"
                            )))
                        }
                    }
                }
                Ok(Predicate::in_set(attr, vals))
            }
            Token::Eq => Ok(Predicate::equals(attr, self.number()?)),
            Token::Le => {
                require_num(is_num, "<=")?;
                Ok(Predicate::between(attr, 0, self.number()?))
            }
            Token::Lt => {
                require_num(is_num, "<")?;
                let v = self.number()?;
                if v == 0 {
                    return Err(Error::InvalidQuery("`< 0` selects nothing".into()));
                }
                Ok(Predicate::between(attr, 0, v - 1))
            }
            Token::Ge => {
                require_num(is_num, ">=")?;
                Ok(Predicate::between(attr, self.number()?, domain - 1))
            }
            Token::Gt => {
                require_num(is_num, ">")?;
                let v = self.number()?;
                Ok(Predicate::between(attr, v + 1, domain.saturating_sub(1)))
            }
            other => Err(Error::InvalidQuery(format!(
                "expected an operator, found {other:?}"
            ))),
        }
    }
}

/// Parses a `WHERE`-style conjunction into a validated [`Query`].
///
/// ```
/// use felip_common::{Attribute, Schema};
/// use felip_common::parse::parse_query;
///
/// let schema = Schema::new(vec![
///     Attribute::numerical("age", 100),
///     Attribute::categorical("edu", 5),
/// ]).unwrap();
/// let q = parse_query(&schema, "age BETWEEN 30 AND 60 AND edu IN (3, 4)").unwrap();
/// assert_eq!(q.dim(), 2);
/// ```
pub fn parse_query(schema: &Schema, input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        at: 0,
        schema,
    };
    let mut preds = vec![p.predicate()?];
    while p.peek().is_some() {
        p.keyword("and")?;
        preds.push(p.predicate()?);
    }
    Query::new(schema, preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::query::PredicateTarget;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("age", 100),
            Attribute::categorical("edu", 5),
            Attribute::numerical("salary", 200),
        ])
        .unwrap()
    }

    #[test]
    fn parses_the_papers_example() {
        let q = parse_query(
            &schema(),
            "age BETWEEN 30 AND 60 AND edu IN (3, 4) AND salary <= 80",
        )
        .unwrap();
        assert_eq!(q.dim(), 3);
        assert_eq!(
            q.predicate_on(0).unwrap().target,
            PredicateTarget::Range { lo: 30, hi: 60 }
        );
        assert_eq!(
            q.predicate_on(1).unwrap().target,
            PredicateTarget::Set(vec![3, 4])
        );
        assert_eq!(
            q.predicate_on(2).unwrap().target,
            PredicateTarget::Range { lo: 0, hi: 80 }
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query(&schema(), "age between 1 and 2").is_ok());
        assert!(parse_query(&schema(), "age Between 1 AND 2 aNd edu = 0").is_ok());
    }

    #[test]
    fn comparison_sugar() {
        let q = parse_query(&schema(), "age >= 18 AND salary > 50").unwrap();
        assert_eq!(
            q.predicate_on(0).unwrap().target,
            PredicateTarget::Range { lo: 18, hi: 99 }
        );
        assert_eq!(
            q.predicate_on(2).unwrap().target,
            PredicateTarget::Range { lo: 51, hi: 199 }
        );
        let lt = parse_query(&schema(), "age < 30").unwrap();
        assert_eq!(
            lt.predicate_on(0).unwrap().target,
            PredicateTarget::Range { lo: 0, hi: 29 }
        );
    }

    #[test]
    fn equality_on_either_kind() {
        let q = parse_query(&schema(), "edu = 2 AND age = 40").unwrap();
        assert_eq!(
            q.predicate_on(1).unwrap().target,
            PredicateTarget::Set(vec![2])
        );
        assert_eq!(
            q.predicate_on(0).unwrap().target,
            PredicateTarget::Set(vec![40])
        );
    }

    #[test]
    fn underscores_in_numbers() {
        let q = parse_query(&schema(), "salary <= 1_99").unwrap();
        assert_eq!(
            q.predicate_on(2).unwrap().target,
            PredicateTarget::Range { lo: 0, hi: 199 }
        );
    }

    #[test]
    fn rejects_malformed_input() {
        let s = schema();
        assert!(parse_query(&s, "").is_err());
        assert!(parse_query(&s, "bogus = 1").is_err());
        assert!(parse_query(&s, "age BETWEEN 1").is_err());
        assert!(parse_query(&s, "age BETWEEN 1 OR 2").is_err());
        assert!(
            parse_query(&s, "edu BETWEEN 1 AND 2").is_err(),
            "range on categorical"
        );
        assert!(
            parse_query(&s, "edu <= 3").is_err(),
            "comparison on categorical"
        );
        assert!(parse_query(&s, "age IN (").is_err());
        assert!(parse_query(&s, "age IN ()").is_err());
        assert!(parse_query(&s, "age = 40 age = 41").is_err(), "missing AND");
        assert!(parse_query(&s, "age # 3").is_err(), "bad character");
        assert!(parse_query(&s, "age < 0").is_err());
        assert!(
            parse_query(&s, "age BETWEEN 30 AND 200").is_err(),
            "out of domain"
        );
        assert!(
            parse_query(&s, "age = 1 AND age = 2").is_err(),
            "duplicate attribute"
        );
    }

    #[test]
    fn parsed_queries_answer() {
        use crate::dataset::Dataset;
        let s = schema();
        let data = Dataset::from_rows(
            s.clone(),
            vec![vec![29, 0, 60], vec![55, 4, 100], vec![48, 3, 80]],
        )
        .unwrap();
        let q = parse_query(
            &s,
            "age BETWEEN 30 AND 60 AND edu IN (3, 4) AND salary <= 80",
        )
        .unwrap();
        assert!((q.true_answer(&data) - 1.0 / 3.0).abs() < 1e-12);
    }
}
