//! Error measures used by the evaluation (§6.1).

use crate::{Error, Result};

fn check_answer_vectors(name: &str, estimated: &[f64], truth: &[f64]) -> Result<()> {
    if estimated.len() != truth.len() {
        return Err(Error::InvalidParameter(format!(
            "mismatched answer vectors: {} estimates vs {} truths",
            estimated.len(),
            truth.len()
        )));
    }
    if estimated.is_empty() {
        return Err(Error::InvalidParameter(format!(
            "{name} of an empty query set"
        )));
    }
    Ok(())
}

/// Mean Absolute Error between estimated and true answers:
/// `MAE = (1/|Q|) Σ |f_q − f̄_q|`.
///
/// # Panics
/// Panics when the slices have different lengths or are empty — a malformed
/// experiment, not a runtime condition. Harness code assembling the vectors
/// at runtime should prefer [`try_mae`].
pub fn mae(estimated: &[f64], truth: &[f64]) -> f64 {
    try_mae(estimated, truth).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`mae`]: returns `Err` on mismatched lengths or empty input.
pub fn try_mae(estimated: &[f64], truth: &[f64]) -> Result<f64> {
    check_answer_vectors("MAE", estimated, truth)?;
    Ok(estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimated.len() as f64)
}

/// Root Mean Squared Error. Punishes outliers more than [`mae`]; reported in
/// some ablations.
///
/// # Panics
/// Panics under the same conditions as [`mae`]; see [`try_rmse`].
pub fn rmse(estimated: &[f64], truth: &[f64]) -> f64 {
    try_rmse(estimated, truth).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`rmse`]: returns `Err` on mismatched lengths or empty input.
pub fn try_rmse(estimated: &[f64], truth: &[f64]) -> Result<f64> {
    check_answer_vectors("RMSE", estimated, truth)?;
    let mse = estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimated.len() as f64;
    Ok(mse.sqrt())
}

/// Mean of a slice (0 for empty input). Convenience for aggregating repeated
/// experiment trials.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample variance (unbiased, n−1 denominator). Returns 0 for fewer than two
/// samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert!((mae(&[0.1, 0.5], &[0.2, 0.3]) - 0.15).abs() < 1e-12);
        assert_eq!(mae(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        // errors 0.1 and 0.2 → mse 0.025 → rmse ~0.1581
        assert!((rmse(&[0.1, 0.5], &[0.2, 0.3]) - 0.025f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_at_least_mae() {
        let e = [0.1, 0.4, 0.9, 0.0];
        let t = [0.2, 0.2, 0.5, 0.05];
        assert!(rmse(&e, &t) >= mae(&e, &t));
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mae_rejects_mismatched_lengths() {
        mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mae_rejects_empty() {
        mae(&[], &[]);
    }

    #[test]
    fn try_variants_mirror_panicking_ones() {
        let e = [0.1, 0.5];
        let t = [0.2, 0.3];
        assert_eq!(try_mae(&e, &t).unwrap(), mae(&e, &t));
        assert_eq!(try_rmse(&e, &t).unwrap(), rmse(&e, &t));
    }

    #[test]
    fn try_variants_report_errors() {
        let err = try_mae(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("mismatched"), "{err}");
        let err = try_rmse(&[], &[]).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(sample_variance(&[5.0]), 0.0);
        assert!((sample_variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
