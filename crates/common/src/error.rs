//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by the FELIP crates.
///
/// All configuration mistakes (bad ε, malformed schemas, out-of-domain
/// values, queries referencing unknown attributes) are reported through this
/// type rather than panics, so a server embedding the library can reject bad
/// input gracefully.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The schema is malformed (duplicate names, empty domain, ...).
    InvalidSchema(String),
    /// A record does not match its schema.
    InvalidRecord(String),
    /// A query is malformed (unknown attribute, empty range, ...).
    InvalidQuery(String),
    /// A mechanism parameter is out of range (ε ≤ 0, zero users, ...).
    InvalidParameter(String),
    /// A report cannot be ingested (wrong group, wrong oracle, ...).
    InvalidReport(String),
    /// A report's kind or shape does not match the oracle aggregating it
    /// (GRR report handed to an OLH aggregator, OUE bit vector of the wrong
    /// width, OLH value outside the hash range, ...). Untrusted wire input
    /// reaches the oracles directly, so this is an error, never a panic.
    ReportMismatch(String),
    /// A numerical stage received or produced a non-finite value (NaN/Inf
    /// frequencies from a degenerate grid, ...). Estimation pipelines must
    /// surface this instead of silently fitting garbage.
    NumericalInstability(String),
    /// A `u64`/`usize` support count or group size would overflow while
    /// merging aggregator state. Counts are exact tallies; wrapping one
    /// would silently corrupt every estimate derived from it, so merge
    /// paths use `checked_add` and surface this instead.
    CountOverflow(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            Error::InvalidRecord(m) => write!(f, "invalid record: {m}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            Error::InvalidReport(m) => write!(f, "invalid report: {m}"),
            Error::ReportMismatch(m) => write!(f, "report mismatch: {m}"),
            Error::NumericalInstability(m) => write!(f, "numerical instability: {m}"),
            Error::CountOverflow(m) => write!(f, "count overflow: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::InvalidParameter("epsilon must be positive".into());
        let s = e.to_string();
        assert!(s.contains("invalid parameter"));
        assert!(s.contains("epsilon"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::InvalidQuery("x".into()));
    }
}
