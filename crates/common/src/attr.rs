//! Attribute and schema definitions.
//!
//! The paper (§4) considers `k` attributes `a_1..a_k`, each either *ordinal*
//! (numerical) or *categorical*, with per-attribute domain sizes
//! `d_1..d_k`. An attribute value is always an index in `0..d_t`.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Whether an attribute's domain is ordered.
///
/// Numerical (ordinal) attributes admit `BETWEEN` range predicates and are
/// binned into grid cells that cover contiguous sub-intervals. Categorical
/// attributes admit `IN` set predicates and are never binned: each category
/// is its own grid cell (§5.2, "Categorical 1-D Grids").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKind {
    /// Ordered domain; supports range (`BETWEEN`) predicates and binning.
    Numerical,
    /// Unordered domain; supports set (`IN`) predicates; one cell per value.
    Categorical,
}

impl AttrKind {
    /// `true` for [`AttrKind::Numerical`].
    pub fn is_numerical(self) -> bool {
        matches!(self, AttrKind::Numerical)
    }

    /// `true` for [`AttrKind::Categorical`].
    pub fn is_categorical(self) -> bool {
        matches!(self, AttrKind::Categorical)
    }
}

/// One attribute of the multidimensional schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Human-readable name (`"age"`, `"education"`, ...). Names must be
    /// unique within a [`Schema`].
    pub name: String,
    /// Ordered (numerical) or unordered (categorical).
    pub kind: AttrKind,
    /// Domain size `d`; values are `0..d`.
    pub domain: u32,
}

impl Attribute {
    /// A numerical attribute with domain `0..domain`.
    pub fn numerical(name: impl Into<String>, domain: u32) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Numerical,
            domain,
        }
    }

    /// A categorical attribute with `domain` categories.
    pub fn categorical(name: impl Into<String>, domain: u32) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Categorical,
            domain,
        }
    }
}

/// An ordered collection of attributes shared by a dataset, a collection
/// plan, and the queries issued against it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, validating that attribute names are unique and every
    /// domain is non-empty.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        if attrs.is_empty() {
            return Err(Error::InvalidSchema(
                "schema must have at least one attribute".into(),
            ));
        }
        for (i, a) in attrs.iter().enumerate() {
            if a.domain == 0 {
                return Err(Error::InvalidSchema(format!(
                    "attribute `{}` has an empty domain",
                    a.name
                )));
            }
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::InvalidSchema(format!(
                    "duplicate attribute name `{}`",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs })
    }

    /// Number of attributes `k`.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when the schema has no attributes (never the case for a schema
    /// built through [`Schema::new`]).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute at position `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds; attribute indices originate from
    /// this schema so an out-of-range index is a logic error.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// All attributes in schema order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of the attribute named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Domain size of attribute `idx`.
    pub fn domain(&self, idx: usize) -> u32 {
        self.attrs[idx].domain
    }

    /// Indices of all numerical attributes, in schema order.
    pub fn numerical_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.attrs[i].kind.is_numerical())
            .collect()
    }

    /// Indices of all categorical attributes, in schema order.
    pub fn categorical_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.attrs[i].kind.is_categorical())
            .collect()
    }

    /// Number of numerical attributes (`k_n` in the paper).
    pub fn num_numerical(&self) -> usize {
        self.numerical_indices().len()
    }

    /// All unordered attribute pairs `(i, j)` with `i < j`, in lexicographic
    /// order — the `C(k, 2)` pairs over which 2-D grids are built.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let k = self.len();
        let mut out = Vec::with_capacity(k * (k - 1) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                out.push((i, j));
            }
        }
        out
    }

    /// Validates that `values` is a legal record for this schema.
    pub fn check_record(&self, values: &[u32]) -> Result<()> {
        if values.len() != self.len() {
            return Err(Error::InvalidRecord(format!(
                "record has {} values, schema has {} attributes",
                values.len(),
                self.len()
            )));
        }
        for (i, (&v, a)) in values.iter().zip(&self.attrs).enumerate() {
            if v >= a.domain {
                // The raw value is deliberately NOT echoed back: record
                // values are private inputs, and this message can reach
                // logs and wire error frames.
                return Err(Error::InvalidRecord(format!(
                    "value out of domain 0..{} for attribute #{i} `{}`",
                    a.domain, a.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::numerical("age", 100),
            Attribute::categorical("sex", 2),
            Attribute::numerical("income", 64),
        ])
        .unwrap()
    }

    #[test]
    fn schema_basic_accessors() {
        let s = schema3();
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr(0).name, "age");
        assert_eq!(s.domain(1), 2);
        assert_eq!(s.index_of("income"), Some(2));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![
            Attribute::numerical("a", 4),
            Attribute::categorical("a", 2),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn schema_rejects_empty_domain() {
        assert!(Schema::new(vec![Attribute::numerical("a", 0)]).is_err());
    }

    #[test]
    fn schema_rejects_no_attributes() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn kind_split() {
        let s = schema3();
        assert_eq!(s.numerical_indices(), vec![0, 2]);
        assert_eq!(s.categorical_indices(), vec![1]);
        assert_eq!(s.num_numerical(), 2);
    }

    #[test]
    fn pairs_enumeration() {
        let s = schema3();
        assert_eq!(s.pairs(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn record_validation() {
        let s = schema3();
        assert!(s.check_record(&[99, 1, 63]).is_ok());
        assert!(s.check_record(&[100, 1, 63]).is_err());
        assert!(s.check_record(&[99, 1]).is_err());
    }

    #[test]
    fn kind_predicates() {
        assert!(AttrKind::Numerical.is_numerical());
        assert!(!AttrKind::Numerical.is_categorical());
        assert!(AttrKind::Categorical.is_categorical());
    }
}
