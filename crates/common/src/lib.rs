#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Shared data model for the FELIP reproduction.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Attribute`] / [`Schema`] — the multidimensional schema (categorical and
//!   numerical attributes with per-attribute domain sizes, as in §4 of the
//!   paper);
//! * [`Dataset`] — a cache-friendly row store of user records;
//! * [`Query`] / [`Predicate`] — λ-dimensional counting queries with `IN`
//!   (point/set) and `BETWEEN` (range) constraints, plus exact ground-truth
//!   evaluation;
//! * [`metrics`] — the error measures used in the evaluation (MAE, RMSE);
//! * [`hash`] — the seeded universal hash family used by Optimized Local
//!   Hashing.
//!
//! Values of every attribute are represented as `u32` indices in
//! `0..domain_size`. Numerical attributes are assumed to be pre-discretised
//! ordinal values (exactly the setting of the paper, where each numerical
//! attribute has an ordered domain `[d]`).

pub mod attr;
pub mod dataset;
pub mod error;
pub mod hash;
pub mod metrics;
pub mod parse;
pub mod query;
pub mod rng;

pub use attr::{AttrKind, Attribute, Schema};
pub use dataset::Dataset;
pub use error::{Error, Result};
pub use parse::parse_query;
pub use query::{Predicate, PredicateTarget, Query};
