//! Seeded universal hash family for Optimized Local Hashing.
//!
//! OLH (§2.2.2) requires a family `ℍ` of hash functions `H : D → [g]` such
//! that a randomly drawn `H` maps any fixed pair of distinct inputs to
//! independent-looking outputs. We instantiate the family with a 64-bit
//! finalizer-style mixer (the xxHash/SplitMix64 avalanche construction)
//! keyed by a per-user random 64-bit seed; this is the same construction the
//! reference `pure-ldp` implementations use (xxhash with a random seed).
//!
//! The functions here are deliberately tiny and `#[inline]`: OLH aggregation
//! evaluates the hash `|D|` times per report, which dominates the
//! aggregator's running time.

/// 64-bit avalanche mixer (SplitMix64 finalizer). Full 64-bit avalanche:
/// every input bit flips every output bit with probability ≈ 1/2.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Multiplier spreading domain values over the 64-bit seed space before
/// mixing (the golden-ratio constant). Exposed so batched kernels can
/// precompute `value_key(v)` once and reuse it across many seeds.
pub const VALUE_KEY_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// The per-value half of [`universal_hash`]: `v · VALUE_KEY_MUL`.
///
/// Batched OLH support counting evaluates `H_seed(v)` for many seeds at a
/// fixed `v`; hoisting this multiply out of the seed loop leaves only
/// `mix64(seed ^ key)` + reduction per (seed, value) pair.
#[inline]
pub fn value_key(value: u32) -> u64 {
    (value as u64).wrapping_mul(VALUE_KEY_MUL)
}

/// [`universal_hash`] with the value already folded through [`value_key`].
///
/// Invariant: `universal_hash_keyed(s, value_key(v), g) == universal_hash(s, v, g)`
/// for all inputs — the batched kernels rely on this to stay bit-identical
/// to the scalar path.
#[inline]
pub fn universal_hash_keyed(seed: u64, key: u64, g: u32) -> u32 {
    debug_assert!(g > 0, "hash range must be non-empty");
    // Multiply-shift reduction avoids the modulo bias *and* the slow `%`.
    let h = mix64(seed ^ key);
    (((h >> 32).wrapping_mul(g as u64)) >> 32) as u32
}

/// The half-open interval of hash high words landing in bucket `target`:
/// returns `(lo, width)` such that for every 32-bit `h32`,
/// `((h32 as u64 * g as u64) >> 32) as u32 == target` exactly when
/// `h32.wrapping_sub(lo) < width`.
///
/// The multiply-shift reduction of [`universal_hash_keyed`] maps
/// `h32 = mix64(seed ^ key) >> 32` to bucket `⌊h32 · g / 2³²⌋`, so bucket
/// membership is equivalent to `h32 ∈ [⌈target·2³²/g⌉, ⌈(target+1)·2³²/g⌉)`.
/// Batched support counting precomputes these bounds once per report and
/// replaces the per-value reduction multiply with one subtract-and-compare —
/// bit-identical to comparing buckets, which the `interval_test` unit test
/// and the fo property suite pin down.
///
/// # Panics
/// Panics if `target >= g` (debug builds).
#[inline]
pub fn bucket_bounds(target: u32, g: u32) -> (u32, u32) {
    debug_assert!(target < g, "bucket {target} out of hash range {g}");
    let lo = ((target as u64) << 32).div_ceil(g as u64);
    let hi = (((target as u64) + 1) << 32).div_ceil(g as u64);
    // `hi` can be exactly 2³² (top bucket); the width still fits in u32
    // because every bucket spans at most ⌈2³²/g⌉ ≤ 2³¹ values for g ≥ 2,
    // and exactly 2³² only for g = 1, where lo = 0 and the wrapping
    // comparison `h32.wrapping_sub(0) < 0` would be wrong — so g = 1 keeps
    // the plain bucket comparison (OLH always has g ≥ 2).
    debug_assert!(g >= 2, "bucket_bounds requires g >= 2, got {g}");
    (lo as u32, (hi - lo) as u32)
}

/// Member `H_seed` of the universal family: hashes `value` into `0..g`.
///
/// # Panics
/// Panics if `g == 0` (debug builds); a zero-sized hash range is a logic
/// error upstream.
#[inline]
pub fn universal_hash(seed: u64, value: u32, g: u32) -> u32 {
    universal_hash_keyed(seed, value_key(value), g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_in_range() {
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            for v in 0..1000u32 {
                for g in [1u32, 2, 7, 16, 1000] {
                    assert!(universal_hash(seed, v, g) < g);
                }
            }
        }
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(universal_hash(42, 7, 16), universal_hash(42, 7, 16));
    }

    #[test]
    fn different_seeds_give_different_functions() {
        // Two seeds should disagree on at least some inputs.
        let disagreements = (0..256u32)
            .filter(|&v| universal_hash(1, v, 16) != universal_hash(2, v, 16))
            .count();
        assert!(disagreements > 100, "only {disagreements} disagreements");
    }

    #[test]
    fn hash_is_roughly_uniform() {
        // χ²-style sanity check: hashing 0..n into g buckets with a fixed
        // seed should fill buckets evenly.
        let g = 8u32;
        let n = 80_000u32;
        let mut counts = vec![0u32; g as usize];
        for v in 0..n {
            counts[universal_hash(0xabcdef, v, g) as usize] += 1;
        }
        let expect = (n / g) as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket count {c} far from expected {expect}"
            );
        }
    }

    #[test]
    fn collision_rate_matches_universal_family() {
        // For a random member of a universal family, Pr[H(x) = H(y)] ≈ 1/g
        // for fixed x ≠ y. Estimate over many seeds.
        let g = 16u32;
        let trials = 40_000u64;
        let collisions = (0..trials)
            .filter(|&s| universal_hash(mix64(s), 3, g) == universal_hash(mix64(s), 11, g))
            .count() as f64;
        let rate = collisions / trials as f64;
        let expected = 1.0 / g as f64;
        assert!(
            (rate - expected).abs() < 0.01,
            "collision rate {rate} far from {expected}"
        );
    }

    #[test]
    fn g_of_one_maps_everything_to_zero() {
        for v in 0..100 {
            assert_eq!(universal_hash(99, v, 1), 0);
        }
    }

    #[test]
    fn keyed_form_matches_direct_form() {
        // The batched kernels depend on this identity bit-for-bit.
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            for v in (0..50_000u32).step_by(97) {
                for g in [2u32, 3, 9, 1024] {
                    assert_eq!(
                        universal_hash_keyed(seed, value_key(v), g),
                        universal_hash(seed, v, g)
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_bounds_match_reduction_exactly() {
        // Exhaustive-ish: for each (g, target), the interval test must agree
        // with the multiply-shift reduction for a spread of hash words,
        // including both interval endpoints.
        for g in [2u32, 3, 4, 7, 9, 16, 1000, u32::MAX] {
            for target in [0, 1, g / 2, g - 1] {
                let (lo, width) = bucket_bounds(target, g);
                let mut probes = vec![
                    0u32,
                    1,
                    u32::MAX,
                    lo,
                    lo.wrapping_sub(1),
                    lo.wrapping_add(width),
                    lo.wrapping_add(width).wrapping_sub(1),
                ];
                for s in 0..64u64 {
                    probes.push((mix64(s ^ g as u64 ^ target as u64) >> 32) as u32);
                }
                for h32 in probes {
                    let bucket = ((h32 as u64).wrapping_mul(g as u64) >> 32) as u32;
                    assert_eq!(
                        h32.wrapping_sub(lo) < width,
                        bucket == target,
                        "h32 {h32}, g {g}, target {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn mix64_avalanche_on_single_bit() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }
}
