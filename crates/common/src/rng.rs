//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace (dataset generators, user
//! perturbation, group assignment, workload generation) draws from an
//! explicitly seeded generator so that experiments are reproducible
//! run-to-run. `derive_seed` splits one master seed into independent
//! per-purpose streams without the streams being correlated.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hash::mix64;

/// A seeded [`StdRng`].
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from `(master, stream)`.
///
/// Uses the avalanche mixer so that consecutive stream ids produce unrelated
/// seeds. `derive_seed(s, a) == derive_seed(s, b)` only when `a == b`
/// (collisions over u64 are negligible).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    mix64(master ^ stream.wrapping_mul(0xa24b_aed4_963e_e407))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000u64 {
            assert!(seen.insert(derive_seed(42, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn derived_seed_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }
}
