//! In-memory row store of user records.
//!
//! Records are stored in one flat `Vec<u32>` with a stride of `k` values per
//! row, which keeps scans over a single pair of attributes cache-friendly and
//! avoids one allocation per record (10⁷-record sweeps are routine in the
//! evaluation).

use crate::attr::Schema;
use crate::error::{Error, Result};

/// A dataset of `n` user records over a [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    /// Row-major values, `len == n * schema.len()`.
    values: Vec<u32>,
}

impl Dataset {
    /// An empty dataset over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Dataset {
            schema,
            values: Vec::new(),
        }
    }

    /// Builds a dataset from row-major flat storage.
    ///
    /// `values.len()` must be a multiple of the schema width and every value
    /// must be inside its attribute's domain.
    pub fn from_flat(schema: Schema, values: Vec<u32>) -> Result<Self> {
        let k = schema.len();
        if !values.len().is_multiple_of(k) {
            return Err(Error::InvalidRecord(format!(
                "flat storage of {} values is not a multiple of schema width {k}",
                values.len()
            )));
        }
        for row in values.chunks_exact(k) {
            schema.check_record(row)?;
        }
        Ok(Dataset { schema, values })
    }

    /// Builds a dataset from individual rows.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Vec<u32>>) -> Result<Self> {
        let mut ds = Dataset::empty(schema);
        for row in rows {
            ds.push(&row)?;
        }
        Ok(ds)
    }

    /// Appends one record.
    pub fn push(&mut self, record: &[u32]) -> Result<()> {
        self.schema.check_record(record)?;
        self.values.extend_from_slice(record);
        Ok(())
    }

    /// Appends one record without validating it.
    ///
    /// Intended for trusted generators (the `felip-datasets` crate) on hot
    /// paths; `debug_assert!`s still fire in debug builds.
    pub fn push_unchecked(&mut self, record: &[u32]) {
        debug_assert!(self.schema.check_record(record).is_ok());
        self.values.extend_from_slice(record);
    }

    /// The schema shared by all records.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records `n`.
    pub fn len(&self) -> usize {
        if self.schema.is_empty() {
            0
        } else {
            self.values.len() / self.schema.len()
        }
    }

    /// `true` when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The record at `row` as a slice of `k` values.
    ///
    /// # Panics
    /// Panics when `row >= self.len()`.
    pub fn row(&self, row: usize) -> &[u32] {
        let k = self.schema.len();
        &self.values[row * k..(row + 1) * k]
    }

    /// The value of attribute `attr` in record `row`.
    pub fn value(&self, row: usize, attr: usize) -> u32 {
        self.values[row * self.schema.len() + attr]
    }

    /// Iterator over all records.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.values.chunks_exact(self.schema.len())
    }

    /// Raw flat storage (row-major, stride `k`).
    pub fn flat(&self) -> &[u32] {
        &self.values
    }

    /// A new dataset holding only the first `n` records (or all records if
    /// fewer). Used by the evaluation when sweeping the population size.
    pub fn truncated(&self, n: usize) -> Dataset {
        let k = self.schema.len();
        let keep = n.min(self.len()) * k;
        Dataset {
            schema: self.schema.clone(),
            values: self.values[..keep].to_vec(),
        }
    }

    /// Exact marginal distribution of attribute `attr` (fractions summing to
    /// 1 for a non-empty dataset). Useful for tests and ground-truth checks.
    pub fn marginal(&self, attr: usize) -> Vec<f64> {
        let d = self.schema.domain(attr) as usize;
        let mut counts = vec![0u64; d];
        let k = self.schema.len();
        for row in self.values.chunks_exact(k) {
            counts[row[attr] as usize] += 1;
        }
        let n = self.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("a", 10),
            Attribute::categorical("b", 3),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_access() {
        let mut ds = Dataset::empty(schema());
        ds.push(&[4, 2]).unwrap();
        ds.push(&[9, 0]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[4, 2]);
        assert_eq!(ds.value(1, 0), 9);
        assert_eq!(ds.rows().count(), 2);
    }

    #[test]
    fn push_validates_domain() {
        let mut ds = Dataset::empty(schema());
        assert!(ds.push(&[10, 0]).is_err());
        assert!(ds.push(&[0, 3]).is_err());
        assert!(ds.push(&[0]).is_err());
        assert!(ds.is_empty());
    }

    #[test]
    fn from_flat_checks_stride() {
        assert!(Dataset::from_flat(schema(), vec![1, 2, 3]).is_err());
        let ds = Dataset::from_flat(schema(), vec![1, 2, 3, 0]).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(schema(), vec![vec![1, 1], vec![2, 2]]).unwrap();
        assert_eq!(ds.row(1), &[2, 2]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let ds = Dataset::from_rows(schema(), vec![vec![1, 1], vec![2, 2], vec![3, 0]]).unwrap();
        let t = ds.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1), &[2, 2]);
        // Truncating beyond the length is a no-op.
        assert_eq!(ds.truncated(10).len(), 3);
    }

    #[test]
    fn marginal_sums_to_one() {
        let ds = Dataset::from_rows(
            schema(),
            vec![vec![1, 1], vec![1, 2], vec![3, 1], vec![1, 0]],
        )
        .unwrap();
        let m = ds.marginal(0);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m[1] - 0.75).abs() < 1e-12);
        let mb = ds.marginal(1);
        assert!((mb[1] - 0.5).abs() < 1e-12);
    }
}
