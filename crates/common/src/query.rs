//! λ-dimensional counting queries (§4 of the paper).
//!
//! A query is a conjunction of predicates, one per distinct attribute:
//!
//! * `BETWEEN lo AND hi` (inclusive) on a numerical attribute,
//! * `IN {v₁, …}` on a categorical attribute,
//! * `= v` on either (represented as a one-element set / unit range).
//!
//! The answer of a query is the *fraction* of records satisfying every
//! predicate: `f̃_q = |{v_i | v_i^t ∈ v_t ∀ a_t ∈ A_q}| / n`.

use serde::{Deserialize, Serialize};

use crate::attr::{AttrKind, Schema};
use crate::dataset::Dataset;
use crate::error::{Error, Result};

/// The constraint a predicate places on one attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateTarget {
    /// Inclusive range `[lo, hi]` on a numerical attribute.
    Range {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// Membership in a set of categorical values (sorted, deduplicated).
    Set(Vec<u32>),
}

impl PredicateTarget {
    /// `true` when the value `v` satisfies this constraint.
    pub fn matches(&self, v: u32) -> bool {
        match self {
            PredicateTarget::Range { lo, hi } => *lo <= v && v <= *hi,
            PredicateTarget::Set(vals) => vals.binary_search(&v).is_ok(),
        }
    }

    /// Number of domain values selected by this constraint.
    pub fn selected_count(&self) -> u32 {
        match self {
            PredicateTarget::Range { lo, hi } => hi - lo + 1,
            PredicateTarget::Set(vals) => vals.len() as u32,
        }
    }
}

/// One conjunct of a query: a constraint on a single attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// Index of the attribute in the schema.
    pub attr: usize,
    /// The constraint applied to that attribute.
    pub target: PredicateTarget,
}

impl Predicate {
    /// `attr BETWEEN lo AND hi` (inclusive).
    pub fn between(attr: usize, lo: u32, hi: u32) -> Self {
        Predicate {
            attr,
            target: PredicateTarget::Range { lo, hi },
        }
    }

    /// `attr IN values`. Values are sorted and deduplicated.
    pub fn in_set(attr: usize, mut values: Vec<u32>) -> Self {
        values.sort_unstable();
        values.dedup();
        Predicate {
            attr,
            target: PredicateTarget::Set(values),
        }
    }

    /// `attr = value`.
    pub fn equals(attr: usize, value: u32) -> Self {
        Predicate {
            attr,
            target: PredicateTarget::Set(vec![value]),
        }
    }

    /// Fraction of the attribute's domain selected by this predicate —
    /// the query *selectivity* `r` on this dimension (§5.2).
    pub fn selectivity(&self, schema: &Schema) -> f64 {
        self.target.selected_count() as f64 / schema.domain(self.attr) as f64
    }
}

/// A conjunction of predicates over distinct attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    predicates: Vec<Predicate>,
}

impl Query {
    /// Builds a query, validating it against `schema`:
    /// each predicate must reference a distinct, existing attribute; ranges
    /// must be non-empty, inside the domain, and applied to numerical
    /// attributes; sets must be non-empty and inside the domain.
    ///
    /// Predicates are stored sorted by attribute index.
    pub fn new(schema: &Schema, mut predicates: Vec<Predicate>) -> Result<Self> {
        if predicates.is_empty() {
            return Err(Error::InvalidQuery(
                "query must have at least one predicate".into(),
            ));
        }
        predicates.sort_by_key(|p| p.attr);
        for (i, p) in predicates.iter().enumerate() {
            if p.attr >= schema.len() {
                return Err(Error::InvalidQuery(format!(
                    "predicate references attribute #{} but schema has {}",
                    p.attr,
                    schema.len()
                )));
            }
            if i > 0 && predicates[i - 1].attr == p.attr {
                return Err(Error::InvalidQuery(format!(
                    "two predicates on attribute #{}",
                    p.attr
                )));
            }
            let a = schema.attr(p.attr);
            match &p.target {
                PredicateTarget::Range { lo, hi } => {
                    if a.kind == AttrKind::Categorical {
                        return Err(Error::InvalidQuery(format!(
                            "range predicate on categorical attribute `{}`",
                            a.name
                        )));
                    }
                    if lo > hi {
                        return Err(Error::InvalidQuery(format!("empty range [{lo}, {hi}]")));
                    }
                    if *hi >= a.domain {
                        return Err(Error::InvalidQuery(format!(
                            "range [{lo}, {hi}] exceeds domain 0..{} of `{}`",
                            a.domain, a.name
                        )));
                    }
                }
                PredicateTarget::Set(vals) => {
                    if vals.is_empty() {
                        return Err(Error::InvalidQuery("empty IN set".into()));
                    }
                    if let Some(&v) = vals.iter().find(|&&v| v >= a.domain) {
                        return Err(Error::InvalidQuery(format!(
                            "value {v} exceeds domain 0..{} of `{}`",
                            a.domain, a.name
                        )));
                    }
                }
            }
        }
        Ok(Query { predicates })
    }

    /// The predicates, sorted by attribute index.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Query dimension λ.
    pub fn dim(&self) -> usize {
        self.predicates.len()
    }

    /// Attribute indices referenced by the query (`A_q`), sorted.
    pub fn attrs(&self) -> Vec<usize> {
        self.predicates.iter().map(|p| p.attr).collect()
    }

    /// The predicate on attribute `attr`, if the query constrains it.
    pub fn predicate_on(&self, attr: usize) -> Option<&Predicate> {
        self.predicates.iter().find(|p| p.attr == attr)
    }

    /// `true` when the record satisfies all predicates.
    pub fn matches(&self, record: &[u32]) -> bool {
        self.predicates
            .iter()
            .all(|p| p.target.matches(record[p.attr]))
    }

    /// Exact answer on a dataset: fraction of matching records.
    /// Returns 0 for an empty dataset.
    pub fn true_answer(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let hits = dataset.rows().filter(|r| self.matches(r)).count();
        hits as f64 / dataset.len() as f64
    }

    /// Geometric-mean selectivity across the query's dimensions.
    pub fn mean_selectivity(&self, schema: &Schema) -> f64 {
        let prod: f64 = self
            .predicates
            .iter()
            .map(|p| p.selectivity(schema))
            .product();
        prod.powf(1.0 / self.predicates.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("age", 100),
            Attribute::categorical("edu", 5),
            Attribute::numerical("salary", 50),
        ])
        .unwrap()
    }

    fn data() -> Dataset {
        Dataset::from_rows(
            schema(),
            vec![
                vec![29, 0, 30],
                vec![55, 4, 49],
                vec![48, 3, 40],
                vec![35, 1, 25],
                vec![23, 0, 22],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_query() {
        // Age BETWEEN 30 AND 60 AND Edu IN {3, 4} AND Salary <= 40.
        let q = Query::new(
            &schema(),
            vec![
                Predicate::between(0, 30, 60),
                Predicate::in_set(1, vec![3, 4]),
                Predicate::between(2, 0, 40),
            ],
        )
        .unwrap();
        assert_eq!(q.dim(), 3);
        // Only record #3 (48, Masters=3, 40) matches: answer = 1/5.
        assert!((q.true_answer(&data()) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn equals_is_singleton_set() {
        let q = Query::new(&schema(), vec![Predicate::equals(1, 4)]).unwrap();
        assert!((q.true_answer(&data()) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn set_dedup_and_sort() {
        let p = Predicate::in_set(1, vec![4, 0, 4, 2]);
        match &p.target {
            PredicateTarget::Set(v) => assert_eq!(v, &vec![0, 2, 4]),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = Query::new(
            &schema(),
            vec![Predicate::between(0, 0, 9), Predicate::between(0, 10, 19)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("two predicates"));
    }

    #[test]
    fn rejects_range_on_categorical() {
        assert!(Query::new(&schema(), vec![Predicate::between(1, 0, 1)]).is_err());
    }

    #[test]
    fn rejects_out_of_domain() {
        assert!(Query::new(&schema(), vec![Predicate::between(0, 0, 100)]).is_err());
        assert!(Query::new(&schema(), vec![Predicate::in_set(1, vec![5])]).is_err());
        assert!(Query::new(&schema(), vec![Predicate::between(0, 10, 5)]).is_err());
        assert!(Query::new(&schema(), vec![Predicate::in_set(1, vec![])]).is_err());
        assert!(Query::new(&schema(), vec![]).is_err());
    }

    #[test]
    fn selectivity() {
        let s = schema();
        assert!((Predicate::between(0, 0, 49).selectivity(&s) - 0.5).abs() < 1e-12);
        assert!((Predicate::in_set(1, vec![0, 1]).selectivity(&s) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_answer_is_zero() {
        let q = Query::new(&schema(), vec![Predicate::equals(1, 0)]).unwrap();
        assert_eq!(q.true_answer(&Dataset::empty(schema())), 0.0);
    }

    #[test]
    fn predicates_sorted_by_attr() {
        let q = Query::new(
            &schema(),
            vec![Predicate::between(2, 0, 10), Predicate::between(0, 0, 10)],
        )
        .unwrap();
        assert_eq!(q.attrs(), vec![0, 2]);
        assert!(q.predicate_on(2).is_some());
        assert!(q.predicate_on(1).is_none());
    }
}
