//! Property-based tests for the shared data model.

use proptest::prelude::*;

use felip_common::hash::{mix64, universal_hash};
use felip_common::metrics::{mae, mean, rmse, sample_variance};
use felip_common::{Attribute, Dataset, Predicate, Query, Schema};

fn small_schema(dn: u32, dc: u32) -> Schema {
    Schema::new(vec![
        Attribute::numerical("x", dn),
        Attribute::categorical("c", dc),
    ])
    .expect("valid schema")
}

proptest! {
    /// The universal hash always lands in range and is deterministic.
    #[test]
    fn hash_in_range(seed in any::<u64>(), v in any::<u32>(), g in 1u32..10_000) {
        let h = universal_hash(seed, v, g);
        prop_assert!(h < g);
        prop_assert_eq!(h, universal_hash(seed, v, g));
    }

    /// mix64 is a bijection-ish mixer: distinct inputs we generate rarely
    /// collide, and zero is not a fixed point family (sanity).
    #[test]
    fn mix64_no_trivial_collisions(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(mix64(a), mix64(b));
    }

    /// A query's true answer equals the fraction of matching rows computed
    /// naively, and is monotone under predicate strengthening.
    #[test]
    fn true_answer_matches_naive(
        dn in 2u32..64,
        dc in 2u32..8,
        rows in proptest::collection::vec((0u32..64, 0u32..8), 1..200),
        lo in 0u32..64,
        hi in 0u32..64,
    ) {
        let schema = small_schema(dn, dc);
        let rows: Vec<Vec<u32>> =
            rows.into_iter().map(|(x, c)| vec![x % dn, c % dc]).collect();
        let data = Dataset::from_rows(schema.clone(), rows.clone()).unwrap();
        let (lo, hi) = ((lo % dn).min(hi % dn), (lo % dn).max(hi % dn));
        let q = Query::new(&schema, vec![Predicate::between(0, lo, hi)]).unwrap();
        let naive = rows.iter().filter(|r| lo <= r[0] && r[0] <= hi).count() as f64
            / rows.len() as f64;
        prop_assert!((q.true_answer(&data) - naive).abs() < 1e-12);

        // Strengthened query can only shrink the answer.
        let q2 = Query::new(
            &schema,
            vec![Predicate::between(0, lo, hi), Predicate::equals(1, 0)],
        ).unwrap();
        prop_assert!(q2.true_answer(&data) <= q.true_answer(&data) + 1e-12);
    }

    /// Predicate selectivity is `selected / domain` and in (0, 1].
    #[test]
    fn selectivity_bounds(dn in 2u32..256, a in 0u32..256, b in 0u32..256) {
        let schema = small_schema(dn, 4);
        let (lo, hi) = ((a % dn).min(b % dn), (a % dn).max(b % dn));
        let p = Predicate::between(0, lo, hi);
        let s = p.selectivity(&schema);
        prop_assert!(s > 0.0 && s <= 1.0);
        prop_assert!((s - (hi - lo + 1) as f64 / dn as f64).abs() < 1e-12);
    }

    /// Metric identities: MAE ≤ RMSE, both zero iff vectors equal; mean and
    /// variance behave on constants.
    #[test]
    fn metric_identities(xs in proptest::collection::vec(0.0f64..1.0, 1..50)) {
        let zeros = vec![0.0; xs.len()];
        prop_assert!(mae(&xs, &xs) < 1e-15);
        prop_assert!(rmse(&xs, &xs) < 1e-15);
        prop_assert!(mae(&xs, &zeros) <= rmse(&xs, &zeros) + 1e-12);
        let c = vec![0.7; xs.len()];
        prop_assert!((mean(&c) - 0.7).abs() < 1e-12);
        prop_assert!(sample_variance(&c) < 1e-12);
    }

    /// Dataset flat storage and row access agree; truncation keeps prefixes.
    #[test]
    fn dataset_storage_roundtrip(
        rows in proptest::collection::vec((0u32..16, 0u32..4), 1..100),
        keep in 0usize..120,
    ) {
        let schema = small_schema(16, 4);
        let rows: Vec<Vec<u32>> = rows.into_iter().map(|(x, c)| vec![x, c]).collect();
        let data = Dataset::from_rows(schema, rows.clone()).unwrap();
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(data.row(i), r.as_slice());
        }
        let t = data.truncated(keep);
        prop_assert_eq!(t.len(), keep.min(rows.len()));
        for i in 0..t.len() {
            prop_assert_eq!(t.row(i), data.row(i));
        }
        // Marginals are distributions.
        let m = data.marginal(0);
        prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
