//! TDG and HDG baselines (Yang et al., VLDB 2021; §3.2 of the FELIP paper).
//!
//! Both share FELIP's collection/answering pipeline; what differs — and what
//! the §6.3 comparison isolates — is grid sizing:
//!
//! * one global granularity for all 1-D grids (`g₁`) and one for all 2-D
//!   grids (`g₂ × g₂`), derived for the *fixed* selectivity assumption
//!   `r = 0.5`;
//! * granularities rounded to the closest power of two (so cells divide the
//!   domain evenly — the limitation FELIP's variable-width cells remove);
//! * OLH everywhere (no adaptive protocol choice).

use felip::{CollectionPlan, Estimator, FelipConfig, SelectivityPrior, Strategy};
use felip_common::{AttrKind, Dataset, Error, Result, Schema};
use felip_fo::FoKind;
use felip_grid::optimize::{optimize_grid, AxisInput, SizingInput};
use felip_grid::GridSpec;

/// Which of the two grid baselines to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridBaseline {
    /// Two-Dimensional Grid: 2-D grids only.
    Tdg,
    /// Hybrid-Dimensional Grid: 2-D grids plus 1-D grids for every attribute.
    Hdg,
}

impl std::fmt::Display for GridBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridBaseline::Tdg => write!(f, "TDG"),
            GridBaseline::Hdg => write!(f, "HDG"),
        }
    }
}

/// The closest power of two to `v` (ties round up), clamped to `[1, max]`.
pub fn closest_power_of_two(v: f64, max: u32) -> u32 {
    if v <= 1.0 {
        return 1;
    }
    let exp = v.log2().round() as u32;
    (1u32 << exp.min(30)).clamp(1, max.max(1))
}

/// Builds the TDG/HDG collection plan over an all-numerical schema.
///
/// TDG/HDG assume every attribute shares one domain `d`; with heterogeneous
/// domains we follow the same formula per grid but clamp to each attribute's
/// domain (the granularity itself is still global, derived from the maximum
/// domain — matching the reference implementation's single-`d` behaviour).
pub fn plan(
    which: GridBaseline,
    schema: &Schema,
    n: usize,
    epsilon: f64,
    seed: u64,
) -> Result<CollectionPlan> {
    if schema
        .attrs()
        .iter()
        .any(|a| a.kind == AttrKind::Categorical)
    {
        return Err(Error::InvalidParameter(format!(
            "{which} supports numerical (range-query) attributes only"
        )));
    }
    let k = schema.len();
    if k < 2 {
        return Err(Error::InvalidParameter(
            "grid baselines need at least two attributes".into(),
        ));
    }
    let pairs = schema.pairs();
    let m = match which {
        GridBaseline::Tdg => pairs.len(),
        GridBaseline::Hdg => k + pairs.len(),
    };
    let d_max = schema
        .attrs()
        .iter()
        .map(|a| a.domain)
        .max()
        .expect("non-empty schema");

    // The paper's constants (§6.3 uses the same α values for all systems).
    let config = FelipConfig::new(epsilon)
        .with_strategy(match which {
            GridBaseline::Tdg => Strategy::Oug,
            GridBaseline::Hdg => Strategy::Ohg,
        })
        .with_forced_fo(FoKind::Olh)
        .with_selectivity(SelectivityPrior::Uniform(0.5));

    let axis = |d: u32| AxisInput {
        domain: d,
        kind: AttrKind::Numerical,
        selectivity: 0.5,
    };
    // Global granularities from the FELIP error model at r = 0.5 (the
    // formulas of §5.2 reduce to the VLDB'21 ones under that assumption),
    // then power-of-two rounding — the §3.2 limitation.
    let (g2_cont, _) = optimize_grid(
        SizingInput {
            n,
            m,
            epsilon,
            alpha1: config.alpha1,
            alpha2: config.alpha2,
            x: axis(d_max),
            y: Some(axis(d_max)),
        },
        FoKind::Olh,
    );
    let g2 = closest_power_of_two(g2_cont.lx as f64, d_max);
    let g1 = match which {
        GridBaseline::Tdg => 0,
        GridBaseline::Hdg => {
            let (g1_cont, _) = optimize_grid(
                SizingInput {
                    n,
                    m,
                    epsilon,
                    alpha1: config.alpha1,
                    alpha2: config.alpha2,
                    x: axis(d_max),
                    y: None,
                },
                FoKind::Olh,
            );
            closest_power_of_two(g1_cont.lx as f64, d_max)
        }
    };

    let mut grids = Vec::with_capacity(m);
    if which == GridBaseline::Hdg {
        for a in 0..k {
            grids.push(GridSpec::one_dim(
                schema,
                a,
                g1.min(schema.domain(a)),
                FoKind::Olh,
            )?);
        }
    }
    for (i, j) in pairs {
        grids.push(GridSpec::two_dim(
            schema,
            i,
            j,
            g2.min(schema.domain(i)),
            g2.min(schema.domain(j)),
            FoKind::Olh,
        )?);
    }
    CollectionPlan::from_specs(schema, n, &config, grids, seed)
}

/// Runs the full TDG pipeline over `dataset` and returns the estimator.
pub fn run_tdg(dataset: &Dataset, epsilon: f64, seed: u64) -> Result<Estimator> {
    run(GridBaseline::Tdg, dataset, epsilon, seed)
}

/// Runs the full HDG pipeline over `dataset` and returns the estimator.
pub fn run_hdg(dataset: &Dataset, epsilon: f64, seed: u64) -> Result<Estimator> {
    run(GridBaseline::Hdg, dataset, epsilon, seed)
}

fn run(which: GridBaseline, dataset: &Dataset, epsilon: f64, seed: u64) -> Result<Estimator> {
    let plan = plan(which, dataset.schema(), dataset.len(), epsilon, seed)?;
    let agg = felip::simulate::collect(dataset, &plan, seed ^ 0x7d67)?;
    agg.estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::rng::seeded_rng;
    use felip_common::{Attribute, Predicate, Query};
    use felip_grid::GridId;
    use rand::Rng;

    fn schema(k: usize, d: u32) -> Schema {
        Schema::new(
            (0..k)
                .map(|i| Attribute::numerical(format!("a{i}"), d))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn power_of_two_rounding() {
        assert_eq!(closest_power_of_two(0.3, 1024), 1);
        assert_eq!(closest_power_of_two(1.4, 1024), 1);
        assert_eq!(closest_power_of_two(3.0, 1024), 4); // log2(3) ≈ 1.58 → 2²
        assert_eq!(closest_power_of_two(11.0, 1024), 8); // log2(11) ≈ 3.46 → 2³
        assert_eq!(closest_power_of_two(12.0, 1024), 16); // log2(12) ≈ 3.58 → 2⁴
        assert_eq!(closest_power_of_two(500.0, 64), 64); // clamped to domain
    }

    #[test]
    fn tdg_plan_shape() {
        let s = schema(4, 64);
        let p = plan(GridBaseline::Tdg, &s, 100_000, 1.0, 1).unwrap();
        assert_eq!(p.num_groups(), 6); // C(4,2)
        for g in p.grids() {
            assert!(matches!(g.id(), GridId::Two(_, _)));
            assert_eq!(g.fo, FoKind::Olh);
            // Same power-of-two granularity everywhere.
            let lx = g.axes()[0].cells();
            assert!(lx.is_power_of_two());
            assert_eq!(lx, g.axes()[1].cells());
        }
    }

    #[test]
    fn hdg_plan_has_one_dim_grids_for_all_attrs() {
        let s = schema(4, 64);
        let p = plan(GridBaseline::Hdg, &s, 100_000, 1.0, 1).unwrap();
        assert_eq!(p.num_groups(), 4 + 6);
        let ones: Vec<_> = p
            .grids()
            .iter()
            .filter(|g| matches!(g.id(), GridId::One(_)))
            .collect();
        assert_eq!(ones.len(), 4);
        let g1 = ones[0].axes()[0].cells();
        assert!(g1.is_power_of_two());
        assert!(
            ones.iter().all(|g| g.axes()[0].cells() == g1),
            "g1 must be global"
        );
    }

    #[test]
    fn rejects_categorical_attributes() {
        let s = Schema::new(vec![
            Attribute::numerical("a", 64),
            Attribute::categorical("c", 4),
        ])
        .unwrap();
        assert!(plan(GridBaseline::Tdg, &s, 1000, 1.0, 0).is_err());
        assert!(plan(GridBaseline::Hdg, &s, 1000, 1.0, 0).is_err());
    }

    #[test]
    fn rejects_single_attribute() {
        assert!(plan(GridBaseline::Tdg, &schema(1, 64), 1000, 1.0, 0).is_err());
    }

    #[test]
    fn tdg_and_hdg_answer_reasonably() {
        let s = schema(3, 64);
        let n = 60_000;
        let mut rng = seeded_rng(3);
        let mut data = Dataset::empty(s.clone());
        for _ in 0..n {
            // Skewed towards low values on attribute 0.
            let a = (rng.gen::<f64>() * rng.gen::<f64>() * 64.0) as u32;
            data.push(&[a.min(63), rng.gen_range(0..64), rng.gen_range(0..64)])
                .unwrap();
        }
        let q = Query::new(
            &s,
            vec![Predicate::between(0, 0, 31), Predicate::between(1, 0, 31)],
        )
        .unwrap();
        let truth = q.true_answer(&data);
        let tdg = run_tdg(&data, 1.0, 5).unwrap().answer(&q).unwrap();
        let hdg = run_hdg(&data, 1.0, 5).unwrap().answer(&q).unwrap();
        assert!((tdg - truth).abs() < 0.15, "TDG {tdg} vs {truth}");
        assert!((hdg - truth).abs() < 0.15, "HDG {hdg} vs {truth}");
    }
}
