#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Baseline LDP mechanisms FELIP is evaluated against.
//!
//! All three baselines are re-implemented from their published descriptions
//! (quoted in §3 of the FELIP paper):
//!
//! * [`hio`] — **HIO** (Wang et al., SIGMOD'19): per-attribute interval
//!   hierarchies with branching factor `b`; users are divided over all
//!   `∏(h_i + 1)` k-dim levels and report their k-dim interval through OLH.
//!   The evaluation's main comparator for point+range queries.
//! * [`tdg`] — **TDG** (Yang et al., VLDB'21): one 2-D grid per attribute
//!   pair, a single global granularity `g₂` rounded to a power of two,
//!   OLH everywhere, in-cell uniformity when answering.
//! * `hdg` (in [`tdg`]) — **HDG** (same source): TDG plus 1-D grids of one global
//!   granularity `g₁`, combined through response matrices.
//!
//! TDG and HDG deliberately reuse the FELIP pipeline (collection,
//! post-processing, response matrices, λ-D fitting) with their own sizing
//! rules injected via [`felip::CollectionPlan::from_specs`] — the paper's
//! comparison isolates exactly that difference (§5.8).

pub mod hio;
pub mod tdg;

pub use hio::{run_hio, Hio, HioEstimator};
pub use tdg::{closest_power_of_two, run_hdg, run_tdg, GridBaseline};
