//! HIO baseline (Wang et al., SIGMOD 2019; §3.1 of the FELIP paper).
//!
//! HIO builds, for each attribute, a hierarchy of intervals with branching
//! factor `b`: level 0 is the root (the whole domain), level `j` has `b^j`
//! near-equal intervals, and the leaf level has one value per interval.
//! Categorical attributes get exactly two levels (root, leaves). A *k-dim
//! level* is one choice of level per attribute; users are divided uniformly
//! over all `∏(h_i + 1)` k-dim levels, and each user reports — through OLH —
//! which k-dim interval of its level combination contains its record.
//!
//! A query is answered by expanding it to all `k` attributes (unconstrained
//! attributes take the root interval), covering each attribute's constraint
//! with the minimal set of hierarchy intervals, and summing the estimated
//! frequencies of every combination of cover intervals; each combination
//! lives at one k-dim level and is estimated from that level's user group.
//!
//! The group count grows as `(h+1)^k`, which is exactly the curse of
//! dimensionality the paper's Figures 3–5 expose: with large domains or many
//! attributes each group holds a handful of users and the estimates drown in
//! noise.

use std::collections::HashMap;

use rand::{Rng, RngCore};

use felip_common::hash::{mix64, universal_hash};
use felip_common::rng::{derive_seed, seeded_rng};
use felip_common::{AttrKind, Dataset, Error, Predicate, PredicateTarget, Query, Result, Schema};
use felip_grid::Binning;

/// OLH over a `u64` interval domain. The k-dim level domains of HIO can
/// exceed `u32` (e.g. the all-leaves level of four 256-value attributes has
/// 256⁴ ≈ 4.3·10⁹ intervals), so HIO carries its own minimal OLH instead of
/// reusing `felip_fo::Olh`: support counting is lazy (per queried interval),
/// so the domain size never needs to be enumerated or even representable in
/// memory.
#[derive(Debug, Clone, Copy)]
struct Olh64 {
    /// Hash range `g = ⌈e^ε⌉ + 1`.
    g: u32,
    /// GRR keep-probability over the hashed domain.
    p: f64,
}

impl Olh64 {
    fn new(epsilon: f64) -> Self {
        let g = (epsilon.exp().ceil() as u32).saturating_add(1).max(2);
        let e = epsilon.exp();
        Olh64 {
            g,
            p: e / (e + g as f64 - 1.0),
        }
    }

    /// Hashes a 64-bit interval index into `0..g` under `seed`.
    #[inline]
    fn hash(&self, seed: u64, value: u64) -> u32 {
        universal_hash(seed ^ mix64(value >> 32), value as u32, self.g)
    }

    /// Client-side perturbation: `⟨seed, GRR_g(H_seed(v))⟩`.
    fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> (u64, u32) {
        let seed: u64 = rng.gen();
        let h = self.hash(seed, value);
        let out = if rng.gen_bool(self.p) {
            h
        } else {
            let mut v = rng.gen_range(0..self.g - 1);
            if v >= h {
                v += 1;
            }
            v
        };
        (seed, out)
    }

    /// De-biased frequency of `value` from `support` matching reports out
    /// of `n`.
    fn estimate(&self, support: usize, n: usize) -> f64 {
        let inv_g = 1.0 / self.g as f64;
        (support as f64 / n as f64 - inv_g) / (self.p - inv_g)
    }
}

/// One per-attribute interval hierarchy.
#[derive(Debug, Clone)]
struct Hierarchy {
    /// Binning of each level; `levels[0]` is the root (one cell),
    /// `levels.last()` the leaves (one value per cell).
    levels: Vec<Binning>,
}

impl Hierarchy {
    fn numerical(domain: u32, b: u32) -> Self {
        let mut levels = Vec::new();
        let mut cells = 1u32;
        loop {
            levels.push(Binning::equal(domain, cells.min(domain)).expect("valid binning"));
            if cells >= domain {
                break;
            }
            cells = cells.saturating_mul(b);
        }
        Hierarchy { levels }
    }

    fn categorical(domain: u32) -> Self {
        let mut levels = vec![Binning::equal(domain, 1).expect("valid binning")];
        if domain > 1 {
            levels.push(Binning::identity(domain).expect("valid binning"));
        }
        Hierarchy { levels }
    }

    fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Minimal exact cover of the inclusive value range `[lo, hi]` by
    /// hierarchy intervals, greedy longest-first. Returns `(level, index)`
    /// pairs. Works for non-nesting level boundaries too because the leaf
    /// level always provides single-value fallback intervals.
    fn cover_range(&self, lo: u32, hi: u32) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        let mut at = lo;
        while at <= hi {
            let mut best: Option<(usize, u32, u32)> = None; // (level, idx, end)
            for (lvl, bin) in self.levels.iter().enumerate() {
                let idx = bin.cell_of(at);
                let (s, e) = bin.cell_range(idx); // [s, e)
                if s == at && e <= hi + 1 && best.is_none_or(|(_, _, be)| e > be) {
                    best = Some((lvl, idx, e));
                }
            }
            let (lvl, idx, end) =
                best.expect("leaf level always provides an aligned single-value interval");
            out.push((lvl, idx));
            at = end;
        }
        out
    }

    /// Cover of a categorical predicate: the root when the whole domain is
    /// selected, otherwise one leaf per selected value.
    fn cover_set(&self, values: &[u32], domain: u32) -> Vec<(usize, u32)> {
        if values.len() as u32 == domain {
            vec![(0, 0)]
        } else {
            let leaf = self.num_levels() - 1;
            values.iter().map(|&v| (leaf, v)).collect()
        }
    }
}

/// The HIO mechanism configuration plus per-attribute hierarchies.
#[derive(Debug, Clone)]
pub struct Hio {
    schema: Schema,
    epsilon: f64,
    hierarchies: Vec<Hierarchy>,
    /// Mixed-radix strides over per-attribute level counts; the k-dim level
    /// tuple `(l_1..l_k)` flattens to `Σ l_i · stride_i`.
    level_strides: Vec<u64>,
    /// Total number of k-dim levels (= user groups), `∏(h_i + 1)`.
    num_groups: u64,
}

impl Hio {
    /// Builds HIO over `schema` with branching factor `b` (the paper's
    /// evaluation uses `b = 4`).
    ///
    /// Fails when the group count `∏(h_i + 1)` overflows a sane bound
    /// (2³²) — at that point every group would be empty anyway.
    pub fn new(schema: &Schema, epsilon: f64, b: u32) -> Result<Self> {
        // `!(x > 0.0)` (rather than `x <= 0.0`) also rejects NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(epsilon > 0.0) {
            return Err(Error::InvalidParameter("epsilon must be positive".into()));
        }
        if b < 2 {
            return Err(Error::InvalidParameter(
                "branching factor must be at least 2".into(),
            ));
        }
        let hierarchies: Vec<Hierarchy> = schema
            .attrs()
            .iter()
            .map(|a| match a.kind {
                AttrKind::Numerical => Hierarchy::numerical(a.domain, b),
                AttrKind::Categorical => Hierarchy::categorical(a.domain),
            })
            .collect();
        let mut strides = vec![0u64; hierarchies.len()];
        let mut total: u64 = 1;
        for (i, h) in hierarchies.iter().enumerate().rev() {
            strides[i] = total;
            total = total
                .checked_mul(h.num_levels() as u64)
                .ok_or_else(|| Error::InvalidParameter("HIO k-dim level count overflows".into()))?;
        }
        if total > u32::MAX as u64 {
            return Err(Error::InvalidParameter(format!(
                "HIO would need {total} user groups; refusing (> 2^32)"
            )));
        }
        Ok(Hio {
            schema: schema.clone(),
            epsilon,
            hierarchies,
            level_strides: strides,
            num_groups: total,
        })
    }

    /// Number of user groups (k-dim levels).
    pub fn num_groups(&self) -> u64 {
        self.num_groups
    }

    /// Decodes a flat group id into the per-attribute level tuple.
    fn levels_of_group(&self, group: u64) -> Vec<usize> {
        let mut rem = group;
        self.level_strides
            .iter()
            .zip(&self.hierarchies)
            .map(|(&stride, h)| {
                let l = (rem / stride) as usize;
                rem %= stride;
                debug_assert!(l < h.num_levels());
                l
            })
            .collect()
    }

    /// The OLH domain size of a level tuple: the number of k-dim intervals.
    /// Can exceed `u32` (hence `u64` — see [`Olh64`]). Support counting is
    /// lazy, so production code never needs this; tests use it to bound
    /// projected interval indices.
    #[cfg(test)]
    fn domain_of_levels(&self, levels: &[usize]) -> u64 {
        levels
            .iter()
            .zip(&self.hierarchies)
            .map(|(&l, h)| h.levels[l].cells() as u64)
            .product()
    }

    /// Flattens a record into its k-dim interval index at a level tuple.
    fn interval_of_record(&self, levels: &[usize], record: &[u32]) -> u64 {
        let mut idx = 0u64;
        for ((&l, h), &v) in levels.iter().zip(&self.hierarchies).zip(record) {
            let bin = &h.levels[l];
            idx = idx * bin.cells() as u64 + bin.cell_of(v) as u64;
        }
        idx
    }

    /// Flattens per-attribute interval indices into the k-dim index.
    fn interval_of_parts(&self, levels: &[usize], parts: &[u32]) -> u64 {
        let mut idx = 0u64;
        for ((&l, h), &p) in levels.iter().zip(&self.hierarchies).zip(parts) {
            idx = idx * h.levels[l].cells() as u64 + p as u64;
        }
        idx
    }

    /// Runs the collection phase over `dataset` (each record = one user) and
    /// returns the query-answering estimator.
    pub fn collect(&self, dataset: &Dataset, seed: u64) -> Result<HioEstimator> {
        if dataset.schema() != &self.schema {
            return Err(Error::InvalidParameter(
                "dataset schema does not match HIO schema".into(),
            ));
        }
        if dataset.is_empty() {
            return Err(Error::InvalidParameter(
                "cannot collect from an empty dataset".into(),
            ));
        }
        let mut groups: HashMap<u64, GroupReports> = HashMap::new();
        let mut rng = seeded_rng(derive_seed(seed, 0x810));
        let assign_seed = derive_seed(seed, 0x851);
        let olh = Olh64::new(self.epsilon);
        for (u, record) in dataset.rows().enumerate() {
            let group = mix64(assign_seed ^ (u as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                % self.num_groups;
            let levels = self.levels_of_group(group);
            let value = self.interval_of_record(&levels, record);
            let (seed, bucket) = olh.perturb(value, &mut rng);
            groups
                .entry(group)
                .or_default()
                .reports
                .push((seed, bucket));
        }
        Ok(HioEstimator {
            hio: self.clone(),
            groups,
        })
    }
}

/// Raw OLH reports of one group, kept for lazy support counting.
#[derive(Debug, Clone, Default)]
struct GroupReports {
    reports: Vec<(u64, u32)>,
}

/// HIO's aggregator-side state: per-group OLH reports, estimated lazily per
/// queried k-dim interval (support counting over the group's reports).
#[derive(Debug, Clone)]
pub struct HioEstimator {
    hio: Hio,
    groups: HashMap<u64, GroupReports>,
}

impl HioEstimator {
    /// Estimates the answer of `query` (§3.1: expand to all `k` attributes,
    /// cover each constraint, sum every cover combination's interval
    /// frequency). The result is clamped to `[0, 1]`.
    ///
    /// The naive cartesian expansion over covers is `∏ |cover_a|`
    /// combinations, which explodes for high-λ queries (the λ = 10 point of
    /// Figure 4 would need > 10⁸ combinations). We instead iterate over the
    /// *non-empty* groups only: a combination at level tuple `T` is
    /// estimated from group `T`'s reports, and empty groups estimate 0, so
    /// only tuples that actually received users — at most `min(n, ∏(h+1))`
    /// of them — can contribute. Within one group, only the cover entries
    /// at that group's exact levels combine, which is a tiny product
    /// (ranges contribute ≤ 2(b−1) intervals per level).
    pub fn answer(&self, query: &Query) -> Result<f64> {
        let query = Query::new(&self.hio.schema, query.predicates().to_vec())?;
        let k = self.hio.schema.len();
        // Per-attribute covers; unconstrained attributes use the root.
        let covers: Vec<Vec<(usize, u32)>> = (0..k)
            .map(|a| match query.predicate_on(a) {
                None => vec![(0usize, 0u32)],
                Some(Predicate {
                    target: PredicateTarget::Range { lo, hi },
                    ..
                }) => self.hio.hierarchies[a].cover_range(*lo, *hi),
                Some(Predicate {
                    target: PredicateTarget::Set(vals),
                    ..
                }) => self.hio.hierarchies[a].cover_set(vals, self.hio.schema.domain(a)),
            })
            .collect();
        // Regroup cover entries by hierarchy level per attribute.
        let cover_by_level: Vec<Vec<Vec<u32>>> = covers
            .iter()
            .enumerate()
            .map(|(a, cover)| {
                let mut per = vec![Vec::new(); self.hio.hierarchies[a].num_levels()];
                for &(lvl, idx) in cover {
                    per[lvl].push(idx);
                }
                per
            })
            .collect();

        let olh = Olh64::new(self.hio.epsilon);
        let mut total = 0.0;
        let mut entries: Vec<&[u32]> = Vec::with_capacity(k);
        let mut parts = vec![0u32; k];
        'groups: for (&group, reports) in &self.groups {
            let n = reports.reports.len();
            if n == 0 {
                continue;
            }
            let levels = self.hio.levels_of_group(group);
            entries.clear();
            for (a, &lvl) in levels.iter().enumerate() {
                let es = &cover_by_level[a][lvl];
                if es.is_empty() {
                    continue 'groups; // no cover interval at this group's level
                }
                entries.push(es);
            }
            // Cartesian product over this group's (small) entry lists.
            let mut idx = vec![0usize; k];
            loop {
                for a in 0..k {
                    parts[a] = entries[a][idx[a]];
                }
                let value = self.hio.interval_of_parts(&levels, &parts);
                // The group is a uniform random sample of the population, so
                // its local frequency estimate is already an unbiased
                // estimate of the population frequency.
                let support = reports
                    .reports
                    .iter()
                    .filter(|(s, x)| olh.hash(*s, value) == *x)
                    .count();
                total += olh.estimate(support, n);
                let mut a = k;
                loop {
                    if a == 0 {
                        continue 'groups;
                    }
                    a -= 1;
                    idx[a] += 1;
                    if idx[a] < entries[a].len() {
                        break;
                    }
                    idx[a] = 0;
                }
            }
        }
        Ok(total.clamp(0.0, 1.0))
    }

    /// Answers a batch of queries.
    pub fn answer_all(&self, queries: &[Query]) -> Result<Vec<f64>> {
        queries.iter().map(|q| self.answer(q)).collect()
    }
}

/// Convenience: build + collect in one call (branching factor 4, the
/// evaluation's setting).
pub fn run_hio(dataset: &Dataset, epsilon: f64, seed: u64) -> Result<HioEstimator> {
    Hio::new(dataset.schema(), epsilon, 4)?.collect(dataset, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::Attribute;
    use rand::Rng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 64),
            Attribute::numerical("y", 64),
            Attribute::categorical("c", 4),
        ])
        .unwrap()
    }

    #[test]
    fn hierarchy_level_structure() {
        let h = Hierarchy::numerical(64, 4);
        // 1, 4, 16, 64 cells.
        assert_eq!(h.num_levels(), 4);
        assert_eq!(h.levels[0].cells(), 1);
        assert_eq!(h.levels[1].cells(), 4);
        assert_eq!(h.levels[3].cells(), 64);
        let hc = Hierarchy::categorical(4);
        assert_eq!(hc.num_levels(), 2);
        assert_eq!(hc.levels[1].cells(), 4);
    }

    #[test]
    fn hierarchy_non_power_domain() {
        let h = Hierarchy::numerical(100, 4);
        // 1, 4, 16, 64, 100 cells (the 256-cell level clamps to leaves).
        assert_eq!(h.levels.last().unwrap().cells(), 100);
        for lvl in &h.levels {
            assert_eq!(lvl.domain(), 100);
        }
    }

    #[test]
    fn cover_is_exact_and_minimal_for_aligned_ranges() {
        let h = Hierarchy::numerical(64, 4);
        // [0, 15] is exactly level-1 interval 0.
        assert_eq!(h.cover_range(0, 15), vec![(1, 0)]);
        // [0, 63] is the root.
        assert_eq!(h.cover_range(0, 63), vec![(0, 0)]);
        // [16, 31] is level-1 interval 1.
        assert_eq!(h.cover_range(16, 31), vec![(1, 1)]);
    }

    #[test]
    fn cover_tiles_arbitrary_ranges() {
        let h = Hierarchy::numerical(100, 4);
        for (lo, hi) in [(0u32, 99u32), (3, 97), (50, 50), (10, 11), (37, 81)] {
            let cover = h.cover_range(lo, hi);
            // The cover must tile [lo, hi] exactly.
            let mut at = lo;
            for &(lvl, idx) in &cover {
                let (s, e) = h.levels[lvl].cell_range(idx);
                assert_eq!(s, at, "gap or overlap at {at}");
                at = e;
            }
            assert_eq!(at, hi + 1, "cover does not reach hi");
        }
    }

    #[test]
    fn categorical_cover() {
        let h = Hierarchy::categorical(4);
        assert_eq!(h.cover_set(&[0, 1, 2, 3], 4), vec![(0, 0)]);
        assert_eq!(h.cover_set(&[1, 3], 4), vec![(1, 1), (1, 3)]);
    }

    #[test]
    fn group_count() {
        let hio = Hio::new(&schema(), 1.0, 4).unwrap();
        // x, y: 4 levels each (1,4,16,64); c: 2 levels → 4·4·2 = 32 groups.
        assert_eq!(hio.num_groups(), 32);
    }

    #[test]
    fn level_tuple_round_trip() {
        let hio = Hio::new(&schema(), 1.0, 4).unwrap();
        for g in 0..hio.num_groups() {
            let levels = hio.levels_of_group(g);
            let back: u64 = levels
                .iter()
                .zip(&hio.level_strides)
                .map(|(&l, &s)| l as u64 * s)
                .sum();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn record_projection_consistency() {
        let hio = Hio::new(&schema(), 1.0, 4).unwrap();
        let record = [37u32, 5, 2];
        for g in 0..hio.num_groups() {
            let levels = hio.levels_of_group(g);
            let v = hio.interval_of_record(&levels, &record);
            assert!(v < hio.domain_of_levels(&levels));
            // Projection must agree with part-wise flattening.
            let parts: Vec<u32> = levels
                .iter()
                .zip(&hio.hierarchies)
                .zip(&record)
                .map(|((&l, h), &x)| h.levels[l].cell_of(x))
                .collect();
            assert_eq!(v, hio.interval_of_parts(&levels, &parts));
        }
    }

    #[test]
    fn end_to_end_accuracy_on_small_schema() {
        // Small schema so each of the 32 groups gets thousands of users.
        let s = schema();
        let n = 80_000;
        let mut rng = seeded_rng(4);
        let mut data = Dataset::empty(s.clone());
        for _ in 0..n {
            let x = rng.gen_range(0..32u32); // lower half only
            let y = rng.gen_range(0..64u32);
            let c = if rng.gen_bool(0.6) {
                0
            } else {
                rng.gen_range(1..4u32)
            };
            data.push(&[x, y, c]).unwrap();
        }
        let est = run_hio(&data, 1.0, 9).unwrap();
        let q = Query::new(
            &s,
            vec![Predicate::between(0, 0, 31), Predicate::in_set(2, vec![0])],
        )
        .unwrap();
        let truth = q.true_answer(&data); // ≈ 0.6
        let got = est.answer(&q).unwrap();
        assert!((got - truth).abs() < 0.25, "HIO {got} vs truth {truth}");
    }

    #[test]
    fn unconstrained_query_uses_root() {
        let s = schema();
        let data = {
            let mut rng = seeded_rng(5);
            let mut d = Dataset::empty(s.clone());
            for _ in 0..20_000 {
                d.push(&[
                    rng.gen_range(0..64),
                    rng.gen_range(0..64),
                    rng.gen_range(0..4),
                ])
                .unwrap();
            }
            d
        };
        let est = run_hio(&data, 1.0, 10).unwrap();
        // Full-domain range on x: answer ≈ 1.
        let q = Query::new(&s, vec![Predicate::between(0, 0, 63)]).unwrap();
        let got = est.answer(&q).unwrap();
        assert!(got > 0.7, "full-domain query answered {got}");
    }

    #[test]
    fn rejects_mismatched_dataset() {
        let hio = Hio::new(&schema(), 1.0, 4).unwrap();
        let other = Schema::new(vec![Attribute::numerical("z", 8)]).unwrap();
        let ds = Dataset::empty(other);
        assert!(hio.collect(&ds, 0).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Hio::new(&schema(), 0.0, 4).is_err());
        assert!(Hio::new(&schema(), 1.0, 1).is_err());
    }
}
