//! Collection planning: grid enumeration, per-grid sizing, AFO choice, and
//! population partitioning.

use felip_common::hash::mix64;
use felip_common::{Result, Schema};
use felip_fo::afo::choose_oracle;
use felip_fo::variance::{grr_variance_factor, olh_variance_factor};
use felip_fo::FoKind;
use felip_grid::optimize::{optimize_grid, AxisInput, SizingInput};
use felip_grid::{Axis, Binning, GridId, GridSpec};

use crate::config::{FelipConfig, Strategy};

/// The aggregator's public collection plan: which grids exist, how each is
/// binned, which protocol each uses, and how users map to groups.
///
/// The plan is sent to clients (it contains no private data) so each user
/// can project and perturb locally.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CollectionPlan {
    schema: Schema,
    config: FelipConfig,
    n: usize,
    grids: Vec<GridSpec>,
    /// Seed driving the user → group assignment.
    assignment_seed: u64,
}

impl CollectionPlan {
    /// Builds the plan for `n` users over `schema` (§5, steps 1–2).
    ///
    /// Grid enumeration: a 2-D grid for every attribute pair; under
    /// [`Strategy::Ohg`] additionally a 1-D grid for every *numerical*
    /// attribute (§5.2). The group count `m` equals the grid count; each
    /// grid is sized for both GRR and OLH and the protocol achieving the
    /// lower minimised error is selected (the AFO, §5.3), unless
    /// [`FelipConfig::force_fo`] pins one.
    pub fn build(
        schema: &Schema,
        n: usize,
        config: &FelipConfig,
        assignment_seed: u64,
    ) -> Result<Self> {
        Self::build_inner(schema, n, config, assignment_seed, None)
    }

    /// Like [`CollectionPlan::build`], but bins numerical axes by equal
    /// *mass* against the given per-attribute value histograms instead of
    /// equal width — the data-aware two-phase extension (DESIGN.md §8).
    /// `weights[a]` is `None` for attributes without prior shape knowledge
    /// (categorical attributes are always ignored: they are never binned).
    pub fn build_data_aware(
        schema: &Schema,
        n: usize,
        config: &FelipConfig,
        assignment_seed: u64,
        weights: &[Option<Vec<f64>>],
    ) -> Result<Self> {
        if weights.len() != schema.len() {
            return Err(felip_common::Error::InvalidParameter(format!(
                "{} weight histograms for {} attributes",
                weights.len(),
                schema.len()
            )));
        }
        for (a, w) in weights.iter().enumerate() {
            if let Some(w) = w {
                if w.len() != schema.domain(a) as usize {
                    return Err(felip_common::Error::InvalidParameter(format!(
                        "attribute {a}: histogram has {} entries for domain {}",
                        w.len(),
                        schema.domain(a)
                    )));
                }
            }
        }
        Self::build_inner(schema, n, config, assignment_seed, Some(weights))
    }

    fn build_inner(
        schema: &Schema,
        n: usize,
        config: &FelipConfig,
        assignment_seed: u64,
        weights: Option<&[Option<Vec<f64>>]>,
    ) -> Result<Self> {
        let mut span = felip_obs::span!("plan");
        config.validate(schema)?;
        if n == 0 {
            return Err(felip_common::Error::InvalidParameter(
                "cannot plan a collection for zero users".into(),
            ));
        }
        let ids = Self::grid_ids(schema, config.strategy);
        let m = ids.len();
        span.field("grids", m);
        span.field("n", n);

        let mut grids = Vec::with_capacity(m);
        for (index, id) in ids.into_iter().enumerate() {
            let spec = Self::size_one_grid(schema, n, m, config, id, weights)?;
            felip_obs::event(
                "plan.grid",
                &[
                    ("index", index.into()),
                    ("grid", id.to_string().into()),
                    ("cells", spec.num_cells().into()),
                    ("fo", spec.fo.to_string().into()),
                ],
            );
            grids.push(spec);
        }
        Ok(CollectionPlan {
            schema: schema.clone(),
            config: config.clone(),
            n,
            grids,
            assignment_seed,
        })
    }

    /// Builds a plan from externally sized grid specifications.
    ///
    /// This is the extension point the TDG/HDG baselines use: they follow
    /// the same collect → estimate → answer pipeline as FELIP but size every
    /// grid with one global power-of-two granularity (§3.2), so they
    /// construct the [`GridSpec`]s themselves and inject them here.
    pub fn from_specs(
        schema: &Schema,
        n: usize,
        config: &FelipConfig,
        grids: Vec<GridSpec>,
        assignment_seed: u64,
    ) -> Result<Self> {
        config.validate(schema)?;
        if n == 0 {
            return Err(felip_common::Error::InvalidParameter(
                "cannot plan a collection for zero users".into(),
            ));
        }
        if grids.is_empty() {
            return Err(felip_common::Error::InvalidParameter(
                "plan must contain at least one grid".into(),
            ));
        }
        for g in &grids {
            for attr in g.id().attrs() {
                if attr >= schema.len() {
                    return Err(felip_common::Error::InvalidParameter(format!(
                        "grid {} references attribute {attr} outside the schema",
                        g.id()
                    )));
                }
            }
        }
        Ok(CollectionPlan {
            schema: schema.clone(),
            config: config.clone(),
            n,
            grids,
            assignment_seed,
        })
    }

    /// The grid identifiers a strategy creates, in deterministic order:
    /// 1-D grids (OHG only, numerical attributes) then all 2-D pairs.
    ///
    /// A single-attribute schema (k = 1) degenerates to one 1-D grid for
    /// either strategy — the paper assumes k ≥ 2, but the library handles
    /// the boundary so frequency estimation on one attribute just works.
    pub fn grid_ids(schema: &Schema, strategy: Strategy) -> Vec<GridId> {
        if schema.len() == 1 {
            return vec![GridId::One(0)];
        }
        let mut ids = Vec::new();
        if strategy == Strategy::Ohg {
            for a in schema.numerical_indices() {
                ids.push(GridId::One(a));
            }
        }
        for (i, j) in schema.pairs() {
            ids.push(GridId::Two(i, j));
        }
        ids
    }

    fn size_one_grid(
        schema: &Schema,
        n: usize,
        m: usize,
        config: &FelipConfig,
        id: GridId,
        weights: Option<&[Option<Vec<f64>>]>,
    ) -> Result<GridSpec> {
        let axis_input = |attr: usize| AxisInput {
            domain: schema.domain(attr),
            kind: schema.attr(attr).kind,
            selectivity: config.selectivity.for_attr(attr),
        };
        let sizing = |x: usize, y: Option<usize>| SizingInput {
            n,
            m,
            epsilon: config.epsilon,
            alpha1: config.alpha1,
            alpha2: config.alpha2,
            x: axis_input(x),
            y: y.map(axis_input),
        };
        let input = match id {
            GridId::One(a) => sizing(a, None),
            GridId::Two(i, j) => sizing(i, Some(j)),
        };

        // Size for each candidate protocol, then adapt: the protocol whose
        // *minimised total error* is lower wins. For fixed-size grids
        // (categorical) this reduces exactly to the variance rule of Eq. 13.
        let fo = match config.force_fo {
            Some(fo) => fo,
            None => {
                let (size_grr, err_grr) = optimize_grid(input, FoKind::Grr);
                let (_size_olh, err_olh) = optimize_grid(input, FoKind::Olh);
                if err_grr <= err_olh {
                    // Double-check with the plain Eq. 13 rule on the GRR
                    // grid's own cell count; they agree except at ties.
                    let _ = choose_oracle(config.epsilon, size_grr.cells());
                    FoKind::Grr
                } else {
                    // `choose_oracle` is not consulted on this branch, so
                    // record the per-grid decision for the AFO counters here.
                    felip_obs::counter!("fo.afo.chose_olh", 1, "grids");
                    FoKind::Olh
                }
            }
        };
        let (size, _err) = optimize_grid(input, fo);
        // Axis construction: equal width by default; equal mass against the
        // phase-1 histogram when one is available for a numerical attribute.
        let make_axis = |attr: usize, cells: u32| -> Result<Axis> {
            let hist = weights.and_then(|w| w[attr].as_ref());
            match hist {
                Some(h) if schema.attr(attr).kind.is_numerical() => {
                    Axis::with_binning(schema, attr, Binning::equal_mass(h, cells)?)
                }
                _ => Axis::new(schema, attr, cells),
            }
        };
        match id {
            GridId::One(a) => GridSpec::from_axes(vec![make_axis(a, size.lx)?], fo),
            GridId::Two(i, j) => GridSpec::from_axes(
                vec![
                    make_axis(i, size.lx)?,
                    make_axis(j, size.ly.expect("2-D size"))?,
                ],
                fo,
            ),
        }
    }

    /// The schema this plan covers.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration the plan was built with.
    pub fn config(&self) -> &FelipConfig {
        &self.config
    }

    /// Planned population size `n`.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of user groups `m` (= number of grids).
    pub fn num_groups(&self) -> usize {
        self.grids.len()
    }

    /// The grid specifications, indexed by group.
    pub fn grids(&self) -> &[GridSpec] {
        &self.grids
    }

    /// The grid a given user reports on (§5.1: users are divided randomly
    /// into `m` groups; we use a keyed hash of the user index so assignment
    /// is decentralised, stateless, and uniform).
    pub fn group_of(&self, user_index: usize) -> usize {
        (mix64(self.assignment_seed ^ (user_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            % self.grids.len() as u64) as usize
    }

    /// Per-cell estimation variance of each grid under this plan — the
    /// protocol's variance factor scaled by `m/n` (§5.1) — used as
    /// consistency weights in post-processing.
    pub fn cell_variances(&self) -> Vec<f64> {
        let m = self.num_groups() as f64;
        self.grids
            .iter()
            .map(|g| {
                let factor = match g.fo {
                    FoKind::Grr => grr_variance_factor(self.config.epsilon, g.num_cells()),
                    FoKind::Olh => olh_variance_factor(self.config.epsilon),
                };
                factor * m / self.n as f64
            })
            .collect()
    }

    /// Index of the grid with identifier `id`, if planned.
    pub fn grid_index(&self, id: GridId) -> Option<usize> {
        self.grids.iter().position(|g| g.id() == id)
    }

    /// A structural fingerprint of everything clients and the server must
    /// agree on to exchange reports: schema (names, kinds, domains), ε,
    /// population size, assignment seed, and every grid's protocol, axes,
    /// and bin edges.
    ///
    /// The wire protocol embeds this hash in each frame and the snapshot
    /// format embeds it in the header, so a client built from a different
    /// plan — or a snapshot taken under one — is rejected up front instead
    /// of silently corrupting counts. The hash is computed with the
    /// workspace's own [`mix64`] chain, so it is stable across processes,
    /// platforms, and compiler versions (unlike `std`'s `DefaultHasher`,
    /// which makes no such promise).
    pub fn schema_hash(&self) -> u64 {
        fn fold(h: u64, x: u64) -> u64 {
            mix64(h.rotate_left(7) ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }
        fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
            h = fold(h, bytes.len() as u64);
            for chunk in bytes.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = fold(h, u64::from_le_bytes(word));
            }
            h
        }
        // Version tag: bump when the hashed structure changes meaning.
        let mut h = fold(0, 0x4645_4c49_505f_4831); // "FELIP_H1"
        h = fold(h, self.schema.len() as u64);
        for attr in self.schema.attrs() {
            h = fold_bytes(h, attr.name.as_bytes());
            h = fold(h, attr.kind.is_numerical() as u64);
            h = fold(h, attr.domain as u64);
        }
        h = fold(h, self.config.epsilon.to_bits());
        h = fold(h, self.n as u64);
        h = fold(h, self.assignment_seed);
        h = fold(h, self.grids.len() as u64);
        for grid in &self.grids {
            h = fold(
                h,
                match grid.fo {
                    FoKind::Grr => 1,
                    FoKind::Olh => 2,
                },
            );
            h = fold(h, grid.axes().len() as u64);
            for axis in grid.axes() {
                h = fold(h, axis.attr as u64);
                h = fold(h, axis.binning.edges().len() as u64);
                for &edge in axis.binning.edges() {
                    h = fold(h, edge as u64);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("a", 256),
            Attribute::numerical("b", 256),
            Attribute::categorical("c", 4),
        ])
        .unwrap()
    }

    #[test]
    fn oug_plans_one_grid_per_pair() {
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Oug);
        let plan = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        assert_eq!(plan.num_groups(), 3); // C(3,2)
        assert!(plan
            .grids()
            .iter()
            .all(|g| matches!(g.id(), GridId::Two(_, _))));
    }

    #[test]
    fn ohg_adds_numerical_one_dim_grids() {
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
        let plan = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        // k_n = 2 numerical 1-D grids + 3 pairs.
        assert_eq!(plan.num_groups(), 5);
        let ones: Vec<_> = plan
            .grids()
            .iter()
            .filter(|g| matches!(g.id(), GridId::One(_)))
            .collect();
        assert_eq!(ones.len(), 2);
        // No 1-D grid for the categorical attribute.
        assert!(plan.grid_index(GridId::One(2)).is_none());
    }

    #[test]
    fn one_dim_grids_finer_than_two_dim_axes() {
        // The 1-D grids exist to capture finer-grained marginals (§3.2).
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), 1_000_000, &cfg, 7).unwrap();
        let g1 = &plan.grids()[plan.grid_index(GridId::One(0)).unwrap()];
        let g2 = &plan.grids()[plan.grid_index(GridId::Two(0, 1)).unwrap()];
        assert!(
            g1.axes()[0].cells() > g2.axes()[0].cells(),
            "1-D {} vs 2-D axis {}",
            g1.axes()[0].cells(),
            g2.axes()[0].cells()
        );
    }

    #[test]
    fn categorical_grids_prefer_grr_when_small() {
        // cat × cat grid with 4 cells at ε = 1: GRR variance factor
        // (e + 2)/(e−1)² beats OLH's 4e/(e−1)².
        let s = Schema::new(vec![
            Attribute::categorical("x", 2),
            Attribute::categorical("y", 2),
        ])
        .unwrap();
        let plan = CollectionPlan::build(&s, 100_000, &FelipConfig::new(1.0), 7).unwrap();
        assert_eq!(plan.grids()[0].fo, FoKind::Grr);
    }

    #[test]
    fn large_grids_prefer_olh() {
        let s = Schema::new(vec![
            Attribute::categorical("x", 64),
            Attribute::categorical("y", 64),
        ])
        .unwrap();
        let plan = CollectionPlan::build(&s, 100_000, &FelipConfig::new(1.0), 7).unwrap();
        assert_eq!(plan.grids()[0].fo, FoKind::Olh);
    }

    #[test]
    fn force_fo_pins_protocol() {
        let cfg = FelipConfig::new(1.0).with_forced_fo(FoKind::Olh);
        let plan = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        assert!(plan.grids().iter().all(|g| g.fo == FoKind::Olh));
    }

    #[test]
    fn group_assignment_is_uniform_and_deterministic() {
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        let m = plan.num_groups();
        let mut counts = vec![0usize; m];
        for u in 0..50_000 {
            let g = plan.group_of(u);
            assert_eq!(g, plan.group_of(u), "assignment must be deterministic");
            counts[g] += 1;
        }
        let expect = 50_000 / m;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).abs() < (expect as i64) / 5,
                "unbalanced groups: {counts:?}"
            );
        }
    }

    #[test]
    fn cell_variances_reflect_protocol_and_size() {
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        let vars = plan.cell_variances();
        assert_eq!(vars.len(), plan.num_groups());
        assert!(vars.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn rejects_zero_population() {
        assert!(CollectionPlan::build(&schema(), 0, &FelipConfig::new(1.0), 7).is_err());
    }

    #[test]
    fn single_attribute_schema_degenerates_to_one_grid() {
        for kind in [
            Attribute::numerical("only", 64),
            Attribute::categorical("only", 5),
        ] {
            let s = Schema::new(vec![kind]).unwrap();
            for strategy in [Strategy::Oug, Strategy::Ohg] {
                let cfg = FelipConfig::new(1.0).with_strategy(strategy);
                let plan = CollectionPlan::build(&s, 10_000, &cfg, 7).unwrap();
                assert_eq!(plan.num_groups(), 1);
                assert_eq!(plan.grids()[0].id(), GridId::One(0));
                assert_eq!(plan.group_of(123), 0);
            }
        }
    }

    #[test]
    fn schema_hash_is_stable_and_discriminating() {
        let cfg = FelipConfig::new(1.0);
        let a = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        let b = CollectionPlan::build(&schema(), 100_000, &cfg, 7).unwrap();
        assert_eq!(a.schema_hash(), b.schema_hash(), "same plan, same hash");

        // Any parameter clients must agree on changes the fingerprint.
        let other_seed = CollectionPlan::build(&schema(), 100_000, &cfg, 8).unwrap();
        assert_ne!(a.schema_hash(), other_seed.schema_hash());
        let other_n = CollectionPlan::build(&schema(), 99_999, &cfg, 7).unwrap();
        assert_ne!(a.schema_hash(), other_n.schema_hash());
        let other_eps =
            CollectionPlan::build(&schema(), 100_000, &FelipConfig::new(1.5), 7).unwrap();
        assert_ne!(a.schema_hash(), other_eps.schema_hash());
        let other_schema = Schema::new(vec![
            Attribute::numerical("a", 256),
            Attribute::numerical("b", 256),
            Attribute::categorical("d", 4),
        ])
        .unwrap();
        let renamed = CollectionPlan::build(&other_schema, 100_000, &cfg, 7).unwrap();
        assert_ne!(a.schema_hash(), renamed.schema_hash());
    }

    #[test]
    fn different_epsilon_changes_granularity() {
        let lo = CollectionPlan::build(&schema(), 1_000_000, &FelipConfig::new(0.5), 7).unwrap();
        let hi = CollectionPlan::build(&schema(), 1_000_000, &FelipConfig::new(3.0), 7).unwrap();
        let g_lo = &lo.grids()[lo.grid_index(GridId::One(0)).unwrap()];
        let g_hi = &hi.grids()[hi.grid_index(GridId::One(0)).unwrap()];
        assert!(
            g_hi.axes()[0].cells() > g_lo.axes()[0].cells(),
            "more budget should afford finer grids ({} vs {})",
            g_hi.axes()[0].cells(),
            g_lo.axes()[0].cells()
        );
    }
}
