//! End-to-end simulation: runs the whole plan → collect → estimate pipeline
//! over an in-memory dataset, standing in for a real fleet of devices.

use std::sync::Arc;

use rand::Rng;
use rayon::prelude::*;

use felip_common::rng::{derive_seed, seeded_rng};
use felip_common::{Dataset, Result};
use felip_fo::Report;

use crate::aggregator::{Aggregator, OracleSet};
use crate::answer::Estimator;
use crate::config::FelipConfig;
use crate::plan::CollectionPlan;

/// Simulates a full FELIP collection over `dataset` and returns the
/// query-answering [`Estimator`].
///
/// Each record plays one user: it is assigned to a group, projected onto
/// that group's grid, perturbed under ε-LDP, and ingested by the aggregator.
/// The simulation is deterministic in `seed` and parallelises over record
/// shards (each shard owns an independent RNG stream and a private
/// aggregator; shards merge at the end, which
/// [`Aggregator::merge`] makes exactly equivalent to sequential ingestion).
pub fn simulate(dataset: &Dataset, config: &FelipConfig, seed: u64) -> Result<Estimator> {
    let mut span = felip_obs::span!("simulate");
    span.field("users", dataset.len());
    let plan = CollectionPlan::build(
        dataset.schema(),
        dataset.len(),
        config,
        derive_seed(seed, 0),
    )?;
    let agg = collect(dataset, &plan, derive_seed(seed, 1))?;
    agg.estimate()
}

/// Runs only the collection phase, returning the raw [`Aggregator`] (used by
/// tests and ablations that inspect pre-post-processing state).
pub fn collect(dataset: &Dataset, plan: &CollectionPlan, seed: u64) -> Result<Aggregator> {
    let mut collect_span = felip_obs::span!("collect");
    // One shared plan handle and one oracle set for the whole collection;
    // every shard clones the `Arc`s instead of rebuilding either.
    let plan = Arc::new(plan.clone());
    let oracles = Arc::new(OracleSet::build(&plan));

    const SHARD: usize = 16_384;
    let n = dataset.len();
    if n == 0 {
        return Err(felip_common::Error::InvalidParameter(
            "cannot collect from an empty dataset".into(),
        ));
    }
    let num_shards = n.div_ceil(SHARD);
    collect_span.field("shards", num_shards);
    collect_span.field("reports", n);
    // Shard work runs on rayon workers whose thread-local span stacks are
    // empty; parent the per-shard spans to `collect` explicitly.
    let collect_id = collect_span.id();
    let mut shards: Vec<Aggregator> = (0..num_shards)
        .into_par_iter()
        .map(|s| {
            let mut shard_span = felip_obs::global().span_child("shard", collect_id);
            let mut rng = seeded_rng(derive_seed(seed, s as u64));
            let lo = s * SHARD;
            let hi = ((s + 1) * SHARD).min(n);
            shard_span.field("reports", hi - lo);
            // Perturb into per-group report buffers first (record order, so
            // the RNG stream is identical to per-report ingestion), then
            // hand each buffer to the batch kernel in one call per grid.
            let mut buffers: Vec<Vec<Report>> = vec![Vec::new(); plan.num_groups()];
            {
                let _perturb = felip_obs::global().span_child("perturb", shard_span.id());
                for u in lo..hi {
                    let record = dataset.row(u);
                    let group = plan.group_of(u);
                    let grid = &plan.grids()[group];
                    let cell = grid.cell_of_record(record);
                    buffers[group].push(oracles.get(group).perturb(cell, &mut rng));
                }
            }
            let mut agg = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
            {
                let _ingest = felip_obs::global().span_child("ingest", shard_span.id());
                for (group, reports) in buffers.iter().enumerate() {
                    agg.ingest_group_batch(group, reports)
                        .expect("group index is valid");
                }
            }
            agg
        })
        .collect();
    let mut total = shards
        .pop()
        .expect("num_shards >= 1 when the dataset is non-empty");
    for s in &shards {
        total.merge(s)?;
    }
    Ok(total)
}

/// Generates a uniform random dataset over `schema` — a convenience used by
/// doc examples and smoke tests (real generators live in `felip-datasets`).
pub fn uniform_dataset(schema: &felip_common::Schema, n: usize, seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut data = Dataset::empty(schema.clone());
    let mut row = vec![0u32; schema.len()];
    for _ in 0..n {
        for (slot, attr) in row.iter_mut().zip(schema.attrs()) {
            *slot = rng.gen_range(0..attr.domain);
        }
        data.push_unchecked(&row);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use felip_common::{Attribute, Predicate, Query, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 64),
            Attribute::numerical("y", 64),
            Attribute::categorical("c", 3),
        ])
        .unwrap()
    }

    #[test]
    fn simulate_is_deterministic_in_seed() {
        let data = uniform_dataset(&schema(), 20_000, 1);
        let cfg = FelipConfig::new(1.0);
        let q = Query::new(&schema(), vec![Predicate::between(0, 0, 31)]).unwrap();
        let a = simulate(&data, &cfg, 99).unwrap().answer(&q).unwrap();
        let b = simulate(&data, &cfg, 99).unwrap().answer(&q).unwrap();
        assert_eq!(a, b);
        let c = simulate(&data, &cfg, 100).unwrap().answer(&q).unwrap();
        assert_ne!(a, c, "different seeds should perturb differently");
    }

    #[test]
    fn uniform_data_uniform_estimates() {
        let data = uniform_dataset(&schema(), 50_000, 2);
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Oug);
        let est = simulate(&data, &cfg, 3).unwrap();
        let q = Query::new(
            &schema(),
            vec![Predicate::between(0, 0, 31), Predicate::between(1, 0, 31)],
        )
        .unwrap();
        let got = est.answer(&q).unwrap();
        assert!((got - 0.25).abs() < 0.08, "quadrant mass {got}");
    }

    #[test]
    fn rejects_empty_dataset() {
        let data = Dataset::empty(schema());
        assert!(simulate(&data, &FelipConfig::new(1.0), 0).is_err());
    }

    #[test]
    fn collection_covers_every_group() {
        let data = uniform_dataset(&schema(), 30_000, 4);
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), data.len(), &cfg, 5).unwrap();
        let agg = collect(&data, &plan, 6).unwrap();
        assert_eq!(agg.reports_ingested(), 30_000);
        assert!(
            agg.group_sizes().iter().all(|&s| s > 0),
            "{:?}",
            agg.group_sizes()
        );
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use crate::config::Strategy;
    use felip_common::{Attribute, Predicate, Query, Schema};

    /// Fewer users than groups: some groups receive zero reports; their
    /// grids estimate as uniform after post-processing and the pipeline
    /// still answers without panicking.
    #[test]
    fn fewer_users_than_groups() {
        let schema = Schema::new(
            (0..8)
                .map(|i| Attribute::numerical(format!("a{i}"), 16))
                .collect(),
        )
        .unwrap();
        // OHG over 8 attributes → 8 + 28 = 36 grids, but only 20 users.
        let data = uniform_dataset(&schema, 20, 3);
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
        let est = simulate(&data, &cfg, 5).unwrap();
        let q = Query::new(&schema, vec![Predicate::between(0, 0, 7)]).unwrap();
        let a = est.answer(&q).unwrap();
        assert!((0.0..=1.0).contains(&a));
        for g in est.grids() {
            assert!((g.total() - 1.0).abs() < 1e-6);
            assert!(g.freqs().iter().all(|&f| f >= 0.0));
        }
    }

    /// A single-attribute dataset end to end.
    #[test]
    fn single_attribute_end_to_end() {
        let schema = Schema::new(vec![Attribute::numerical("x", 64)]).unwrap();
        let data = uniform_dataset(&schema, 30_000, 4);
        let est = simulate(&data, &FelipConfig::new(1.0), 6).unwrap();
        let q = Query::new(&schema, vec![Predicate::between(0, 0, 31)]).unwrap();
        let a = est.answer(&q).unwrap();
        assert!((a - 0.5).abs() < 0.08, "answer {a}");
    }

    /// The marginal-augmented λ fit (extension) answers and stays in range.
    #[test]
    fn lambda_marginals_extension_runs() {
        let schema = Schema::new(vec![
            Attribute::numerical("x", 32),
            Attribute::numerical("y", 32),
            Attribute::numerical("z", 32),
        ])
        .unwrap();
        let data = uniform_dataset(&schema, 40_000, 7);
        let cfg = FelipConfig::new(1.0).with_lambda_marginals(true);
        let est = simulate(&data, &cfg, 8).unwrap();
        let q = Query::new(
            &schema,
            vec![
                Predicate::between(0, 0, 15),
                Predicate::between(1, 0, 15),
                Predicate::between(2, 0, 15),
            ],
        )
        .unwrap();
        let a = est.answer(&q).unwrap();
        assert!((a - 0.125).abs() < 0.06, "answer {a} vs 0.125");
    }
}
