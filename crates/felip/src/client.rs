//! Client-side perturbation: what runs on the user's device.

use rand::RngCore;

use felip_common::{Error, Result};
use felip_fo::afo::make_oracle;
use felip_fo::Report;

use crate::aggregator::OracleSet;
use crate::plan::CollectionPlan;

/// One user's perturbed contribution: which group (grid) it belongs to and
/// the LDP report for that grid. This — and only this — leaves the device.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UserReport {
    /// Group (= grid) index the user was assigned to.
    pub group: usize,
    /// The perturbed cell report.
    pub report: Report,
}

impl UserReport {
    /// Checks that this report could have been produced by a client
    /// following `plan`: the group index names an existing grid and the
    /// report's kind/shape matches that grid's oracle.
    ///
    /// This is the server's admission check for untrusted wire input; a
    /// mismatch yields [`Error::ReportMismatch`] (or
    /// [`Error::InvalidReport`] for an out-of-range group), never a panic.
    pub fn validate(&self, plan: &CollectionPlan, oracles: &OracleSet) -> Result<()> {
        if self.group >= plan.num_groups() {
            return Err(Error::InvalidReport(format!(
                "group {} out of range 0..{}",
                self.group,
                plan.num_groups()
            )));
        }
        oracles.get(self.group).check_report(&self.report)
    }
}

/// Produces the user's ε-LDP report (§5, user side).
///
/// The user looks up its assigned grid from the public `plan`, projects its
/// private `record` onto a cell of that grid, and perturbs the cell index
/// with the grid's frequency oracle. The whole record is protected: only
/// the perturbed cell of one grid is transmitted, and the perturbation
/// satisfies ε-LDP (§5.7).
pub fn respond(
    plan: &CollectionPlan,
    user_index: usize,
    record: &[u32],
    rng: &mut dyn RngCore,
) -> Result<UserReport> {
    plan.schema().check_record(record)?;
    let group = plan.group_of(user_index);
    let grid = &plan.grids()[group];
    let cell = grid.cell_of_record(record);
    let oracle = make_oracle(grid.fo, plan.config().epsilon, grid.num_cells());
    Ok(UserReport {
        group,
        report: oracle.perturb(cell, rng),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FelipConfig;
    use felip_common::rng::seeded_rng;
    use felip_common::{Attribute, Schema};
    use felip_fo::FoKind;

    fn plan() -> CollectionPlan {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 64),
            Attribute::numerical("b", 64),
        ])
        .unwrap();
        CollectionPlan::build(&schema, 10_000, &FelipConfig::new(1.0), 3).unwrap()
    }

    #[test]
    fn report_targets_assigned_group() {
        let p = plan();
        let mut rng = seeded_rng(0);
        for u in 0..20 {
            let r = respond(&p, u, &[10, 20], &mut rng).unwrap();
            assert_eq!(r.group, p.group_of(u));
        }
    }

    #[test]
    fn report_type_matches_grid_protocol() {
        // Every honest report passes the server's admission check; the check
        // itself enforces kind + shape against the grid's oracle.
        let p = plan();
        let oracles = OracleSet::build(&p);
        let mut rng = seeded_rng(0);
        for u in 0..50 {
            let r = respond(&p, u, &[0, 0], &mut rng).unwrap();
            let grid = &p.grids()[r.group];
            match (grid.fo, &r.report) {
                (FoKind::Grr, Report::Grr(v)) => assert!(*v < grid.num_cells()),
                (FoKind::Olh, Report::Olh { value, .. }) => {
                    // OLH report value lives in the hash range, not the grid.
                    assert!(*value < 64, "hash range is small");
                }
                _ => {}
            }
            r.validate(&p, &oracles).unwrap();
        }
    }

    #[test]
    fn validate_rejects_mismatched_reports() {
        let p = plan();
        let oracles = OracleSet::build(&p);
        let mut rng = seeded_rng(1);
        let honest = respond(&p, 0, &[0, 0], &mut rng).unwrap();

        // Foreign protocol for the group's oracle.
        let mismatched = UserReport {
            group: honest.group,
            report: Report::Oue(vec![0]),
        };
        let err = mismatched.validate(&p, &oracles).unwrap_err();
        assert!(matches!(err, Error::ReportMismatch(_)), "{err}");

        // Group index beyond the plan.
        let foreign_group = UserReport {
            group: p.num_groups(),
            report: honest.report.clone(),
        };
        let err = foreign_group.validate(&p, &oracles).unwrap_err();
        assert!(matches!(err, Error::InvalidReport(_)), "{err}");
    }

    #[test]
    fn rejects_invalid_record() {
        let p = plan();
        let mut rng = seeded_rng(0);
        assert!(respond(&p, 0, &[64, 0], &mut rng).is_err());
        assert!(respond(&p, 0, &[0], &mut rng).is_err());
    }

    #[test]
    fn randomisation_differs_across_users() {
        // Perturbation must actually be random: identical records from many
        // users must not all produce identical reports.
        let p = plan();
        let mut rng = seeded_rng(9);
        let reports: Vec<_> = (0..40)
            .map(|u| respond(&p, u, &[32, 32], &mut rng).unwrap().report)
            .collect();
        let first = &reports[0];
        assert!(reports.iter().any(|r| r != first));
    }
}
