//! Query answering from estimated grids (§5.5–§5.6).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use felip_common::{AttrKind, Error, Query, Result};
use felip_grid::lambda::{fit_constraints, Constraint, PairAnswer};
use felip_grid::response::ResponseMatrix;
use felip_grid::{EstimatedGrid, GridId};

use crate::plan::CollectionPlan;

/// The aggregator's query-answering state: post-processed grids plus a lazy
/// cache of per-pair response matrices.
///
/// Response matrices can be large (`d_i × d_j`), so they are built on first
/// use per attribute pair and shared thereafter (the cache is thread-safe;
/// answering queries takes `&self`).
pub struct Estimator {
    plan: Arc<CollectionPlan>,
    grids: Vec<EstimatedGrid>,
    matrices: Mutex<HashMap<(usize, usize), Arc<ResponseMatrix>>>,
}

impl std::fmt::Debug for Estimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Estimator")
            .field("grids", &self.grids.len())
            .finish_non_exhaustive()
    }
}

impl Estimator {
    /// Wraps post-processed grids (called by
    /// [`crate::aggregator::Aggregator::estimate`]). Accepts the plan by
    /// value or as a shared `Arc` handle.
    pub fn new(plan: impl Into<Arc<CollectionPlan>>, grids: Vec<EstimatedGrid>) -> Self {
        Estimator {
            plan: plan.into(),
            grids,
            matrices: Mutex::new(HashMap::new()),
        }
    }

    /// The plan behind this estimator.
    pub fn plan(&self) -> &CollectionPlan {
        &self.plan
    }

    /// The post-processed grids.
    pub fn grids(&self) -> &[EstimatedGrid] {
        &self.grids
    }

    /// Convergence threshold for the iterative fitting stages: `1/n` (§5.5).
    fn threshold(&self) -> f64 {
        1.0 / self.plan.population() as f64
    }

    /// The response matrix for attribute pair `(i, j)` (`i < j`), building
    /// and caching it on first use (Algorithm 3).
    pub fn response_matrix(&self, i: usize, j: usize) -> Result<Arc<ResponseMatrix>> {
        if i >= j {
            return Err(Error::InvalidQuery(format!(
                "pair must satisfy i < j, got ({i}, {j})"
            )));
        }
        if let Some(m) = self
            .matrices
            .lock()
            .expect("matrix cache poisoned")
            .get(&(i, j))
        {
            felip_obs::counter!("felip.answer.matrix_cache_hits", 1);
            return Ok(Arc::clone(m));
        }
        felip_obs::counter!("felip.answer.matrix_cache_misses", 1);
        let schema = self.plan.schema();
        let pair_idx = self.plan.grid_index(GridId::Two(i, j)).ok_or_else(|| {
            Error::InvalidQuery(format!("no grid planned for attribute pair ({i}, {j})"))
        })?;
        let pair_grid = &self.grids[pair_idx];

        let both_categorical = schema.attr(i).kind == AttrKind::Categorical
            && schema.attr(j).kind == AttrKind::Categorical;
        let matrix = if both_categorical {
            // The cat × cat grid is already at value granularity (§5.5).
            ResponseMatrix::from_cat_cat_grid(pair_grid)
        } else {
            // Γ = {G(i), G(j), G(i,j)} — 1-D grids exist only under OHG and
            // only for numerical attributes.
            let mut related: Vec<&EstimatedGrid> = vec![pair_grid];
            for a in [i, j] {
                if let Some(idx) = self.plan.grid_index(GridId::One(a)) {
                    related.push(&self.grids[idx]);
                }
            }
            ResponseMatrix::build(
                i,
                j,
                schema.domain(i),
                schema.domain(j),
                &related,
                self.threshold(),
            )?
        };
        let arc = Arc::new(matrix);
        self.matrices
            .lock()
            .expect("matrix cache poisoned")
            .insert((i, j), Arc::clone(&arc));
        Ok(arc)
    }

    /// Estimates the answer of `query` (a frequency in `[0, 1]`).
    ///
    /// * λ = 1 — answered from the finest grid covering the attribute;
    /// * λ = 2 — answered exactly from the pair's response matrix;
    /// * λ ≥ 3 — split into `C(λ, 2)` 2-D queries answered from response
    ///   matrices, then fitted with Algorithm 4.
    pub fn answer(&self, query: &Query) -> Result<f64> {
        let mut span = felip_obs::span!("answer");
        span.field("lambda", query.predicates().len());
        // Re-validate against this plan's schema (queries are cheap to check
        // and may originate elsewhere).
        let query = Query::new(self.plan.schema(), query.predicates().to_vec())?;
        let preds = query.predicates();
        let est = match preds {
            [] => unreachable!("Query::new rejects empty queries"),
            [p] => self.answer_single(p)?,
            [pi, pj] => {
                let m = self.response_matrix(pi.attr, pj.attr)?;
                m.answer(Some(pi), Some(pj))
            }
            _ => {
                let lambda = preds.len();
                let mut constraints: Vec<Constraint> =
                    Vec::with_capacity(lambda * (lambda - 1) / 2 + lambda);
                for s in 0..lambda {
                    for t in (s + 1)..lambda {
                        let m = self.response_matrix(preds[s].attr, preds[t].attr)?;
                        constraints.push(
                            PairAnswer {
                                s,
                                t,
                                answer: m.answer(Some(&preds[s]), Some(&preds[t])),
                            }
                            .into(),
                        );
                    }
                }
                if self.plan.config().lambda_marginals {
                    // Extension: pin each predicate's 1-D marginal as well.
                    for (s, p) in preds.iter().enumerate() {
                        constraints.push(Constraint {
                            mask: 1usize << s,
                            answer: self.answer_single(p)?,
                        });
                    }
                }
                let z = fit_constraints(lambda, &constraints, self.threshold());
                z[(1usize << lambda) - 1]
            }
        };
        Ok(est.clamp(0.0, 1.0))
    }

    /// Answers a batch of queries.
    pub fn answer_all(&self, queries: &[Query]) -> Result<Vec<f64>> {
        queries.iter().map(|q| self.answer(q)).collect()
    }

    fn answer_single(&self, pred: &felip_common::Predicate) -> Result<f64> {
        // Prefer the grid with the finest binning along the attribute:
        // the 1-D grid under OHG, otherwise the best 2-D marginal.
        let best = self
            .grids
            .iter()
            .filter(|g| g.spec().id().covers(pred.attr))
            .max_by_key(|g| g.spec().axis_for(pred.attr).expect("covers").cells())
            .ok_or_else(|| {
                Error::InvalidQuery(format!("no grid covers attribute {}", pred.attr))
            })?;
        Ok(best.answer(&[pred]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::client::respond;
    use crate::config::{FelipConfig, Strategy};
    use felip_common::rng::seeded_rng;
    use felip_common::{Attribute, Dataset, Predicate, Schema};
    use rand::Rng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 32),
            Attribute::numerical("y", 32),
            Attribute::categorical("c", 4),
        ])
        .unwrap()
    }

    /// Builds a skewed but simple dataset and runs the full pipeline.
    fn pipeline(strategy: Strategy, n: usize, seed: u64) -> (Dataset, Estimator) {
        let schema = schema();
        let mut rng = seeded_rng(seed);
        let mut data = Dataset::empty(schema.clone());
        for _ in 0..n {
            // x concentrated low, y uniform, c mostly category 0.
            let x = rng.gen_range(0..16u32);
            let y = rng.gen_range(0..32u32);
            let c = if rng.gen_bool(0.7) {
                0
            } else {
                rng.gen_range(1..4u32)
            };
            data.push(&[x, y, c]).unwrap();
        }
        let cfg = FelipConfig::new(1.0).with_strategy(strategy);
        let plan = crate::plan::CollectionPlan::build(&schema, n, &cfg, seed).unwrap();
        let mut agg = Aggregator::new(plan.clone());
        let mut prng = seeded_rng(seed ^ 0xabc);
        for (u, row) in data.rows().enumerate() {
            agg.ingest(&respond(&plan, u, row, &mut prng).unwrap())
                .unwrap();
        }
        (data, agg.estimate().unwrap())
    }

    #[test]
    fn two_dim_query_accuracy() {
        let (data, est) = pipeline(Strategy::Ohg, 60_000, 11);
        let q = Query::new(
            &schema(),
            vec![Predicate::between(0, 0, 15), Predicate::in_set(2, vec![0])],
        )
        .unwrap();
        let truth = q.true_answer(&data); // ≈ 0.7
        let got = est.answer(&q).unwrap();
        assert!((got - truth).abs() < 0.1, "est {got} vs truth {truth}");
    }

    #[test]
    fn single_predicate_query() {
        let (data, est) = pipeline(Strategy::Ohg, 60_000, 13);
        let q = Query::new(&schema(), vec![Predicate::between(0, 0, 7)]).unwrap();
        let truth = q.true_answer(&data); // ≈ 0.5
        let got = est.answer(&q).unwrap();
        assert!((got - truth).abs() < 0.12, "est {got} vs truth {truth}");
    }

    #[test]
    fn three_dim_query() {
        let (data, est) = pipeline(Strategy::Ohg, 60_000, 17);
        let q = Query::new(
            &schema(),
            vec![
                Predicate::between(0, 0, 15),
                Predicate::between(1, 0, 15),
                Predicate::in_set(2, vec![0]),
            ],
        )
        .unwrap();
        let truth = q.true_answer(&data); // ≈ 0.35
        let got = est.answer(&q).unwrap();
        assert!((got - truth).abs() < 0.15, "est {got} vs truth {truth}");
    }

    /// OUG on *uniform* data (its design point): the in-cell uniformity
    /// assumption is exact there. On skewed data OUG pays the
    /// non-uniformity bias by design — that regime is covered by the
    /// strategy-comparison integration tests.
    #[test]
    fn oug_also_answers() {
        let sch = schema();
        let n = 60_000;
        let mut rng = seeded_rng(19);
        let mut data = Dataset::empty(sch.clone());
        for _ in 0..n {
            data.push(&[
                rng.gen_range(0..32),
                rng.gen_range(0..32),
                rng.gen_range(0..4),
            ])
            .unwrap();
        }
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Oug);
        let plan = crate::plan::CollectionPlan::build(&sch, n, &cfg, 19).unwrap();
        let mut agg = Aggregator::new(plan.clone());
        let mut prng = seeded_rng(20);
        for (u, row) in data.rows().enumerate() {
            agg.ingest(&respond(&plan, u, row, &mut prng).unwrap())
                .unwrap();
        }
        let est = agg.estimate().unwrap();
        let q = Query::new(
            &sch,
            vec![Predicate::between(0, 0, 15), Predicate::between(1, 0, 31)],
        )
        .unwrap();
        let truth = q.true_answer(&data); // ≈ 0.5
        let got = est.answer(&q).unwrap();
        assert!((got - truth).abs() < 0.12, "est {got} vs truth {truth}");
    }

    #[test]
    fn answers_are_clamped() {
        let (_, est) = pipeline(Strategy::Ohg, 5_000, 23);
        // A maximally selective query: noisy estimate may dip negative
        // before clamping.
        let q = Query::new(
            &schema(),
            vec![
                Predicate::between(0, 31, 31),
                Predicate::between(1, 0, 0),
                Predicate::in_set(2, vec![3]),
            ],
        )
        .unwrap();
        let got = est.answer(&q).unwrap();
        assert!((0.0..=1.0).contains(&got));
    }

    #[test]
    fn response_matrix_is_cached() {
        let (_, est) = pipeline(Strategy::Ohg, 10_000, 29);
        let a = est.response_matrix(0, 1).unwrap();
        let b = est.response_matrix(0, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn rejects_reversed_pair() {
        let (_, est) = pipeline(Strategy::Ohg, 5_000, 31);
        assert!(est.response_matrix(1, 0).is_err());
        assert!(est.response_matrix(1, 1).is_err());
    }

    #[test]
    fn rejects_query_on_unknown_attribute() {
        let (_, est) = pipeline(Strategy::Ohg, 5_000, 37);
        let q = Query::new(&schema(), vec![Predicate::between(0, 0, 5)]).unwrap();
        // Mangle: build a query for a *different* schema and sneak it in.
        let other = Schema::new(vec![
            Attribute::numerical("p", 100),
            Attribute::numerical("q", 100),
            Attribute::numerical("r", 100),
            Attribute::numerical("s", 100),
        ])
        .unwrap();
        let bad = Query::new(&other, vec![Predicate::between(3, 0, 99)]).unwrap();
        assert!(est.answer(&bad).is_err());
        assert!(est.answer(&q).is_ok());
    }

    #[test]
    fn answer_all_matches_individual() {
        let (_, est) = pipeline(Strategy::Oug, 10_000, 41);
        let qs = vec![
            Query::new(&schema(), vec![Predicate::between(0, 0, 15)]).unwrap(),
            Query::new(&schema(), vec![Predicate::in_set(2, vec![0, 1])]).unwrap(),
        ];
        let batch = est.answer_all(&qs).unwrap();
        for (q, b) in qs.iter().zip(&batch) {
            assert_eq!(est.answer(q).unwrap(), *b);
        }
    }

    /// Categorical × categorical pairs must bypass the IPF and use the grid
    /// directly.
    #[test]
    fn cat_cat_matrix_is_the_grid() {
        let schema = Schema::new(vec![
            Attribute::categorical("a", 3),
            Attribute::categorical("b", 4),
        ])
        .unwrap();
        let n = 30_000;
        let mut rng = seeded_rng(5);
        let mut data = Dataset::empty(schema.clone());
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            let b = if a == 0 { 0 } else { rng.gen_range(0..4u32) };
            data.push(&[a, b]).unwrap();
        }
        let cfg = FelipConfig::new(2.0);
        let plan = crate::plan::CollectionPlan::build(&schema, n, &cfg, 1).unwrap();
        let mut agg = Aggregator::new(plan.clone());
        let mut prng = seeded_rng(6);
        for (u, row) in data.rows().enumerate() {
            agg.ingest(&respond(&plan, u, row, &mut prng).unwrap())
                .unwrap();
        }
        let est = agg.estimate().unwrap();
        let q = Query::new(
            &schema,
            vec![Predicate::equals(0, 0), Predicate::equals(1, 0)],
        )
        .unwrap();
        let truth = q.true_answer(&data); // ≈ 1/3
        let got = est.answer(&q).unwrap();
        assert!((got - truth).abs() < 0.08, "est {got} vs truth {truth}");
    }
}
