//! Server-side aggregation: streaming ingestion of user reports, frequency
//! estimation, and post-processing.

use std::sync::Arc;

use felip_common::{Error, Result};
use felip_fo::afo::make_oracle;
use felip_fo::{FrequencyOracle, Report};
use felip_grid::postprocess::post_process;
use felip_grid::EstimatedGrid;

use crate::answer::Estimator;
use crate::client::UserReport;
use crate::plan::CollectionPlan;

/// One frequency oracle per grid of a [`CollectionPlan`], instantiated once
/// and shared (`Arc`) across every aggregator collecting for that plan.
///
/// Oracles are stateless parameter bundles, but building one still walks the
/// plan's grid specs; sharding a collection across many [`Aggregator`]s used
/// to rebuild the full set per shard. Building the set once and handing
/// clones of the `Arc` to [`Aggregator::with_oracles`] makes shard spin-up
/// allocation-free apart from the count vectors.
pub struct OracleSet {
    oracles: Vec<Box<dyn FrequencyOracle>>,
}

impl OracleSet {
    /// Instantiates the oracle for every grid in `plan`, in grid order.
    pub fn build(plan: &CollectionPlan) -> Self {
        let oracles = plan
            .grids()
            .iter()
            .map(|g| make_oracle(g.fo, plan.config().epsilon, g.num_cells()))
            .collect();
        OracleSet { oracles }
    }

    /// The oracle serving group/grid `g`.
    pub fn get(&self, g: usize) -> &dyn FrequencyOracle {
        &*self.oracles[g]
    }

    /// Number of oracles (== the plan's number of grids).
    pub fn len(&self) -> usize {
        self.oracles.len()
    }

    /// Whether the set is empty (a plan always has at least one grid).
    pub fn is_empty(&self) -> bool {
        self.oracles.is_empty()
    }
}

impl std::fmt::Debug for OracleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleSet")
            .field("oracles", &self.oracles.len())
            .finish()
    }
}

/// The aggregator: ingests perturbed reports group by group, then estimates
/// every grid and post-processes (§5, aggregator side).
///
/// Ingestion is *streaming*: each report is folded into per-grid support
/// counts immediately (GRR: one counter bump; OLH: one hash evaluation per
/// grid cell), so the aggregator's memory is `O(Σ grid cells)` regardless of
/// the population size. Batched ingestion ([`Aggregator::ingest_batch`] /
/// [`Aggregator::ingest_group_batch`]) keeps the same state but routes whole
/// report slices through the oracles' cache-blocked batch kernels.
pub struct Aggregator {
    plan: Arc<CollectionPlan>,
    oracles: Arc<OracleSet>,
    counts: Vec<Vec<u64>>,
    group_sizes: Vec<usize>,
}

impl std::fmt::Debug for Aggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aggregator")
            .field("groups", &self.plan.num_groups())
            .field("reports", &self.reports_ingested())
            .finish_non_exhaustive()
    }
}

impl Aggregator {
    /// An empty aggregator for `plan`, building its own oracle set.
    ///
    /// Accepts the plan by value or already wrapped in an `Arc`; when
    /// spinning up many aggregators for one plan (sharded collection),
    /// prefer [`Aggregator::with_oracles`] so the plan and oracles are
    /// shared rather than rebuilt per shard.
    pub fn new(plan: impl Into<Arc<CollectionPlan>>) -> Self {
        let plan = plan.into();
        let oracles = Arc::new(OracleSet::build(&plan));
        Aggregator::with_oracles(plan, oracles)
    }

    /// An empty aggregator sharing an existing plan and oracle set.
    ///
    /// # Panics
    /// Panics when `oracles` was not built for a plan with the same number
    /// of grids.
    pub fn with_oracles(plan: Arc<CollectionPlan>, oracles: Arc<OracleSet>) -> Self {
        assert_eq!(
            oracles.len(),
            plan.grids().len(),
            "oracle set does not match the plan's grids"
        );
        let counts = plan
            .grids()
            .iter()
            .map(|g| vec![0u64; g.num_cells() as usize])
            .collect();
        let group_sizes = vec![0; plan.num_groups()];
        Aggregator {
            plan,
            oracles,
            counts,
            group_sizes,
        }
    }

    /// Rebuilds an aggregator from previously captured state (a durable
    /// snapshot): per-grid support counts plus per-group report tallies.
    ///
    /// Counts are exact `u64` tallies, so a restored aggregator continues
    /// ingestion — and later estimation — bit-identically to one that never
    /// stopped. Shapes are validated against the plan; a snapshot from a
    /// different plan is rejected with [`Error::InvalidParameter`].
    pub fn restore(
        plan: Arc<CollectionPlan>,
        oracles: Arc<OracleSet>,
        counts: Vec<Vec<u64>>,
        group_sizes: Vec<usize>,
    ) -> Result<Self> {
        if counts.len() != plan.grids().len() {
            return Err(Error::InvalidParameter(format!(
                "snapshot has {} grids, plan has {}",
                counts.len(),
                plan.grids().len()
            )));
        }
        for (g, (grid, cells)) in plan.grids().iter().zip(&counts).enumerate() {
            if cells.len() != grid.num_cells() as usize {
                return Err(Error::InvalidParameter(format!(
                    "snapshot grid {g} has {} cells, plan expects {}",
                    cells.len(),
                    grid.num_cells()
                )));
            }
        }
        if group_sizes.len() != plan.num_groups() {
            return Err(Error::InvalidParameter(format!(
                "snapshot has {} groups, plan has {}",
                group_sizes.len(),
                plan.num_groups()
            )));
        }
        if oracles.len() != plan.grids().len() {
            return Err(Error::InvalidParameter(
                "oracle set does not match the plan's grids".into(),
            ));
        }
        Ok(Aggregator {
            plan,
            oracles,
            counts,
            group_sizes,
        })
    }

    /// The plan this aggregator collects for.
    pub fn plan(&self) -> &CollectionPlan {
        &self.plan
    }

    /// The shared plan handle (cheap to clone across shards).
    pub fn plan_handle(&self) -> Arc<CollectionPlan> {
        Arc::clone(&self.plan)
    }

    /// The shared oracle set (cheap to clone across shards).
    pub fn oracles(&self) -> Arc<OracleSet> {
        Arc::clone(&self.oracles)
    }

    /// Number of reports ingested so far.
    pub fn reports_ingested(&self) -> usize {
        self.group_sizes
            .iter()
            // ARITH: diagnostic total — a pegged value beats failing a
            // read-only accessor (per-group sizes stay exact regardless).
            .fold(0usize, |acc, &s| acc.saturating_add(s))
    }

    /// Reports ingested per group.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// The raw per-grid support counts accumulated so far (one vector per
    /// grid, indexed by cell) — exact `u64` tallies, so any two ingestion
    /// orders of the same reports yield identical counts.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Order-sensitive 64-bit digest of the exact aggregator state (counts
    /// and group sizes). Two aggregators have equal digests iff their state
    /// is bit-identical — a compact fingerprint for determinism checks and
    /// simulation traces, far cheaper to compare and log than the full
    /// count vectors.
    pub fn counts_digest(&self) -> u64 {
        let mut h = 0x6366_5f64_6967_6573u64; // "cf_diges"
        for grid in &self.counts {
            h = felip_common::hash::mix64(h ^ grid.len() as u64);
            for &c in grid {
                h = felip_common::hash::mix64(h ^ c);
            }
        }
        for &s in &self.group_sizes {
            h = felip_common::hash::mix64(h ^ s as u64);
        }
        h
    }

    /// Folds one user report into the group's support counts.
    pub fn ingest(&mut self, report: &UserReport) -> Result<()> {
        let g = report.group;
        if g >= self.plan.num_groups() {
            return Err(Error::InvalidReport(format!(
                "group {g} out of range 0..{}",
                self.plan.num_groups()
            )));
        }
        // One relaxed fetch_add per report — negligible next to the oracle
        // accumulate walk this path already pays per report.
        felip_obs::counter!("felip.ingest.reports", 1, "reports");
        self.oracles
            .get(g)
            .accumulate(&report.report, &mut self.counts[g])?;
        self.group_sizes[g] = self.group_sizes[g].checked_add(1).ok_or_else(|| {
            Error::CountOverflow(format!("group {g} size would exceed usize::MAX"))
        })?;
        Ok(())
    }

    /// Folds a slice of same-group reports into that group's support counts
    /// with one batch-kernel call.
    ///
    /// This is the zero-copy hot path of the ingestion pipeline: callers
    /// that already hold a group's reports contiguously (the sharded
    /// collector buffers per group) hand the slice straight to the oracle's
    /// [`FrequencyOracle::accumulate_batch`], which for OLH runs the
    /// cache-blocked support-counting kernel. Bit-for-bit equivalent to
    /// calling [`Aggregator::ingest`] once per report.
    pub fn ingest_group_batch(&mut self, group: usize, reports: &[Report]) -> Result<()> {
        if group >= self.plan.num_groups() {
            return Err(Error::InvalidReport(format!(
                "group {group} out of range 0..{}",
                self.plan.num_groups()
            )));
        }
        felip_obs::counter!("felip.ingest.batches", 1, "batches");
        felip_obs::counter!("felip.ingest.reports", reports.len(), "reports");
        self.oracles
            .get(group)
            .accumulate_batch(reports, &mut self.counts[group])?;
        self.group_sizes[group] = self.group_sizes[group]
            .checked_add(reports.len())
            .ok_or_else(|| {
                Error::CountOverflow(format!("group {group} size would exceed usize::MAX"))
            })?;
        Ok(())
    }

    /// Folds a mixed-group batch of user reports into the support counts,
    /// bucketing by group and dispatching one batch-kernel call per grid.
    ///
    /// Validates every group index before touching any state, so a failed
    /// call leaves the aggregator unchanged. Bucketing clones each report
    /// once (cheap for GRR/OLH, one `Vec` copy for OUE); when reports are
    /// already grouped contiguously, [`Aggregator::ingest_group_batch`]
    /// avoids even that.
    pub fn ingest_batch(&mut self, reports: &[UserReport]) -> Result<()> {
        let num_groups = self.plan.num_groups();
        if let Some(bad) = reports.iter().find(|r| r.group >= num_groups) {
            return Err(Error::InvalidReport(format!(
                "group {} out of range 0..{num_groups}",
                bad.group
            )));
        }
        let mut buckets: Vec<Vec<Report>> = vec![Vec::new(); num_groups];
        for r in reports {
            buckets[r.group].push(r.report.clone());
        }
        for (g, bucket) in buckets.iter().enumerate() {
            if !bucket.is_empty() {
                self.ingest_group_batch(g, bucket)?;
            }
        }
        Ok(())
    }

    /// Merges another aggregator built from the *same plan* (used to combine
    /// per-shard aggregators after parallel ingestion).
    ///
    /// On `Err` (shape mismatch or a count that would overflow) the
    /// receiver's state is unspecified — discard it; a partially merged
    /// aggregator must never feed an estimate.
    ///
    /// # Panics
    /// Panics when the two aggregators have different group structures.
    pub fn merge(&mut self, other: &Aggregator) -> Result<()> {
        assert_eq!(self.counts.len(), other.counts.len(), "plans differ");
        for (g, (mine, theirs)) in self.counts.iter_mut().zip(&other.counts).enumerate() {
            assert_eq!(mine.len(), theirs.len(), "grid shapes differ");
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a = a.checked_add(*b).ok_or_else(|| {
                    Error::CountOverflow(format!(
                        "grid {g} support count would exceed u64::MAX in merge"
                    ))
                })?;
            }
        }
        for (g, (a, b)) in self
            .group_sizes
            .iter_mut()
            .zip(&other.group_sizes)
            .enumerate()
        {
            *a = a.checked_add(*b).ok_or_else(|| {
                Error::CountOverflow(format!("group {g} size would exceed usize::MAX in merge"))
            })?;
        }
        Ok(())
    }

    /// Estimates every grid's cell frequencies, runs post-processing
    /// (consistency + non-negativity, §5.4), and returns the query-answering
    /// [`Estimator`].
    pub fn estimate(&self) -> Result<Estimator> {
        let mut span = felip_obs::span!("estimate");
        span.field("reports", self.reports_ingested());
        if self.reports_ingested() == 0 {
            return Err(Error::InvalidParameter("no reports ingested".into()));
        }
        let mut grids: Vec<EstimatedGrid> = self
            .plan
            .grids()
            .iter()
            .zip(&self.oracles.oracles)
            .zip(&self.counts)
            .zip(&self.group_sizes)
            .map(|(((spec, oracle), counts), &size)| {
                let freqs = oracle.estimate_from_counts(counts, size);
                EstimatedGrid::new(spec.clone(), freqs)
            })
            .collect();
        let variances = self.plan.cell_variances();
        post_process(
            &mut grids,
            self.plan.schema().len(),
            &variances,
            self.plan.config().postprocess_rounds,
        )?;
        Ok(Estimator::new(Arc::clone(&self.plan), grids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::respond;
    use crate::config::{FelipConfig, Strategy};
    use felip_common::rng::seeded_rng;
    use felip_common::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("c", 3),
        ])
        .unwrap()
    }

    fn collected(n: usize, seed: u64) -> Aggregator {
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
        let plan = CollectionPlan::build(&schema(), n, &cfg, seed).unwrap();
        let mut agg = Aggregator::new(plan.clone());
        let mut rng = seeded_rng(seed);
        for u in 0..n {
            // Deterministic synthetic population: a in the lower half,
            // c biased to 0.
            let a = (u % 16) as u32;
            let c = if u % 4 == 0 { 1 } else { 0 };
            let r = respond(&plan, u, &[a, c], &mut rng).unwrap();
            agg.ingest(&r).unwrap();
        }
        agg
    }

    #[test]
    fn ingest_counts_by_group() {
        let agg = collected(5_000, 1);
        assert_eq!(agg.reports_ingested(), 5_000);
        assert!(agg.group_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn estimate_produces_valid_grids() {
        let est = collected(20_000, 2).estimate().unwrap();
        for g in est.grids() {
            assert!(g.freqs().iter().all(|&f| f >= 0.0));
            assert!((g.total() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn estimates_reflect_the_data() {
        // All mass in a ∈ [0, 16): the 1-D grid for attribute 0 must put
        // (nearly) everything in the lower half.
        let est = collected(40_000, 3).estimate().unwrap();
        let g = est
            .grids()
            .iter()
            .find(|g| g.spec().id() == felip_grid::GridId::One(0))
            .expect("OHG has a 1-D grid for attr 0");
        let lower: f64 = g
            .freqs()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let (lo, _) = g.spec().axes()[0].binning.cell_range(*i as u32);
                lo < 16
            })
            .map(|(_, f)| f)
            .sum();
        assert!(lower > 0.8, "lower-half mass {lower}");
    }

    #[test]
    fn merge_equals_sequential() {
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), 1_000, &cfg, 9).unwrap();
        let mut rng = seeded_rng(9);
        let reports: Vec<_> = (0..1_000)
            .map(|u| respond(&plan, u, &[(u % 32) as u32, 0], &mut rng).unwrap())
            .collect();

        let mut whole = Aggregator::new(plan.clone());
        for r in &reports {
            whole.ingest(r).unwrap();
        }
        let mut left = Aggregator::new(plan.clone());
        let mut right = Aggregator::new(plan.clone());
        for r in &reports[..500] {
            left.ingest(r).unwrap();
        }
        for r in &reports[500..] {
            right.ingest(r).unwrap();
        }
        left.merge(&right).expect("merge");
        assert_eq!(left.reports_ingested(), whole.reports_ingested());
        assert_eq!(left.group_sizes(), whole.group_sizes());
        // Identical counts → identical estimates.
        let a = left.estimate().unwrap();
        let b = whole.estimate().unwrap();
        for (ga, gb) in a.grids().iter().zip(b.grids()) {
            assert_eq!(ga.freqs(), gb.freqs());
        }
    }

    #[test]
    fn rejects_foreign_group() {
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), 100, &cfg, 0).unwrap();
        let mut agg = Aggregator::new(plan);
        let bad = UserReport {
            group: 999,
            report: felip_fo::Report::Grr(0),
        };
        assert!(agg.ingest(&bad).is_err());
    }

    #[test]
    fn estimate_requires_reports() {
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), 100, &cfg, 0).unwrap();
        assert!(Aggregator::new(plan).estimate().is_err());
    }
}
