//! Two-phase, data-aware collection (extension; the paper's first future-
//! work item in §7: "enhance data decomposition to avoid cells with low
//! true counts, so the noise does not dominate the estimation").
//!
//! Phase 1 spends a fraction ρ of the population learning coarse 1-D
//! marginals of the numerical attributes under ε-LDP. Phase 2 collects from
//! the remaining users on grids whose numerical axes are binned by *equal
//! estimated mass* instead of equal width, so no cell is left holding a
//! sliver of the distribution whose estimate is pure noise.
//!
//! Privacy: every user participates in exactly one phase and submits
//! exactly one ε-LDP report, so the whole protocol satisfies ε-LDP — the
//! budget is never split (§5.1's principle applied across phases).

use felip_common::{Dataset, Error, Result, Schema};

use crate::answer::Estimator;
use crate::config::FelipConfig;
use crate::plan::CollectionPlan;
use crate::simulate::collect;

/// Number of cells in the coarse phase-1 marginal grids.
const PHASE1_CELLS: u32 = 32;

/// Builds the phase-1 plan: one coarse 1-D grid per numerical attribute
/// (categorical attributes need no shape learning — they are never binned).
///
/// Returns `None` when the schema has no numerical attributes (two-phase
/// collection degenerates to a plain one-phase run).
pub fn phase1_plan(
    schema: &Schema,
    n1: usize,
    config: &FelipConfig,
    seed: u64,
) -> Result<Option<CollectionPlan>> {
    let numerical = schema.numerical_indices();
    if numerical.is_empty() {
        return Ok(None);
    }
    let grids = numerical
        .into_iter()
        .map(|a| {
            let cells = PHASE1_CELLS.min(schema.domain(a));
            felip_grid::GridSpec::one_dim(
                schema,
                a,
                cells,
                felip_fo::afo::choose_oracle(config.epsilon, cells),
            )
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Some(CollectionPlan::from_specs(
        schema, n1, config, grids, seed,
    )?))
}

/// Turns a phase-1 estimator into per-attribute value histograms for
/// [`CollectionPlan::build_data_aware`] (uniform spread within the coarse
/// cells; post-processing already made the marginals non-negative).
pub fn histograms_from_phase1(est: &Estimator) -> Result<Vec<Option<Vec<f64>>>> {
    let schema = est.plan().schema();
    (0..schema.len())
        .map(|a| {
            if schema.attr(a).kind.is_numerical() {
                est.histogram(a).map(Some)
            } else {
                Ok(None)
            }
        })
        .collect()
}

/// Runs the full two-phase pipeline over `dataset`: the first
/// `phase1_fraction` of records report on coarse marginal grids, the rest
/// on mass-balanced FELIP grids. Returns the phase-2 estimator.
///
/// `phase1_fraction` must be in `(0, 1)`; around 0.1 is a sensible default
/// (enough signal to place bin edges, little budget diverted from the main
/// collection).
pub fn simulate_two_phase(
    dataset: &Dataset,
    config: &FelipConfig,
    phase1_fraction: f64,
    seed: u64,
) -> Result<Estimator> {
    if !(phase1_fraction > 0.0 && phase1_fraction < 1.0) {
        return Err(Error::InvalidParameter(format!(
            "phase-1 fraction {phase1_fraction} outside (0, 1)"
        )));
    }
    let n = dataset.len();
    let n1 = ((n as f64 * phase1_fraction) as usize).max(1);
    if n1 >= n {
        return Err(Error::InvalidParameter(
            "dataset too small to split into two phases".into(),
        ));
    }
    let schema = dataset.schema();

    // Phase 1: learn coarse numerical marginals from the first n1 users.
    let weights = match phase1_plan(schema, n1, config, seed ^ 0x9e37)? {
        None => vec![None; schema.len()],
        Some(plan) => {
            let phase1_data = dataset.truncated(n1);
            let agg = collect(&phase1_data, &plan, seed ^ 0x7f4a)?;
            histograms_from_phase1(&agg.estimate()?)?
        }
    };

    // Phase 2: mass-balanced grids for the remaining users.
    let n2 = n - n1;
    let plan2 = CollectionPlan::build_data_aware(schema, n2, config, seed ^ 0xc15, &weights)?;
    let phase2_data =
        Dataset::from_flat(schema.clone(), dataset.flat()[n1 * schema.len()..].to_vec())?;
    let agg = collect(&phase2_data, &plan2, seed ^ 0x1ce4)?;
    agg.estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate;
    use felip_common::rng::seeded_rng;
    use felip_common::{Attribute, Predicate, Query};
    use rand::Rng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 128),
            Attribute::numerical("y", 128),
            Attribute::categorical("c", 4),
        ])
        .unwrap()
    }

    /// Heavily skewed data: 90% of x-mass inside [0, 8).
    fn skewed(n: usize, seed: u64) -> Dataset {
        let mut rng = seeded_rng(seed);
        let mut data = Dataset::empty(schema());
        for _ in 0..n {
            let x = if rng.gen_bool(0.9) {
                rng.gen_range(0..8)
            } else {
                rng.gen_range(8..128)
            };
            data.push(&[x, rng.gen_range(0..128), rng.gen_range(0..4)])
                .unwrap();
        }
        data
    }

    #[test]
    fn phase1_plan_covers_numerical_attrs_only() {
        let cfg = FelipConfig::new(1.0);
        let plan = phase1_plan(&schema(), 1_000, &cfg, 1).unwrap().unwrap();
        assert_eq!(plan.num_groups(), 2);
        assert!(plan
            .grids()
            .iter()
            .all(|g| matches!(g.id(), felip_grid::GridId::One(0 | 1))));
        // No numerical attributes → no phase 1.
        let cat_only = Schema::new(vec![Attribute::categorical("c", 4)]).unwrap();
        assert!(phase1_plan(&cat_only, 100, &cfg, 1).unwrap().is_none());
    }

    #[test]
    fn two_phase_produces_mass_balanced_grids() {
        let data = skewed(60_000, 2);
        let est = simulate_two_phase(&data, &FelipConfig::new(1.0), 0.1, 3).unwrap();
        // The 1-D grid for x should bin the dense head [0, 8) finer than
        // equal width would (equal width at l cells ⇒ first cell spans
        // 128/l ≥ 8 values whenever l ≤ 16).
        let g = est
            .grids()
            .iter()
            .find(|g| g.spec().id() == felip_grid::GridId::One(0))
            .expect("OHG plans a 1-D grid for x");
        let first_width = g.spec().axes()[0].binning.width(0);
        let l = g.spec().axes()[0].cells();
        let equal_width = 128 / l.max(1);
        assert!(
            first_width < equal_width.max(2),
            "first cell width {first_width} not finer than equal width {equal_width} (l = {l})"
        );
    }

    #[test]
    fn two_phase_answers_reasonably() {
        let data = skewed(60_000, 4);
        let q = Query::new(&schema(), vec![Predicate::between(0, 0, 7)]).unwrap();
        let truth = q.true_answer(&data); // ≈ 0.9
        let two = simulate_two_phase(&data, &FelipConfig::new(1.0), 0.1, 5).unwrap();
        let got = two.answer(&q).unwrap();
        assert!(
            (got - truth).abs() < 0.1,
            "two-phase {got} vs truth {truth}"
        );
    }

    #[test]
    fn two_phase_helps_on_narrow_queries_over_skewed_data() {
        // Narrow queries inside the dense head are where equal-width cells
        // are most wasteful. Average over a few seeds.
        let data = skewed(80_000, 6);
        let queries: Vec<Query> = (0..6)
            .map(|i| Query::new(&schema(), vec![Predicate::between(0, i, i + 3)]).unwrap())
            .collect();
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
        let mut one_total = 0.0;
        let mut two_total = 0.0;
        for seed in [1u64, 2, 3] {
            let one = simulate(&data, &FelipConfig::new(1.0), seed).unwrap();
            let two = simulate_two_phase(&data, &FelipConfig::new(1.0), 0.1, seed).unwrap();
            for (q, t) in queries.iter().zip(&truth) {
                one_total += (one.answer(q).unwrap() - t).abs();
                two_total += (two.answer(q).unwrap() - t).abs();
            }
        }
        assert!(
            two_total < one_total,
            "two-phase ({two_total:.4}) should beat one-phase ({one_total:.4}) here"
        );
    }

    #[test]
    fn rejects_bad_fraction_and_tiny_datasets() {
        let data = skewed(100, 7);
        let cfg = FelipConfig::new(1.0);
        assert!(simulate_two_phase(&data, &cfg, 0.0, 1).is_err());
        assert!(simulate_two_phase(&data, &cfg, 1.0, 1).is_err());
        let tiny = skewed(1, 8);
        assert!(simulate_two_phase(&tiny, &cfg, 0.5, 1).is_err());
    }

    #[test]
    fn categorical_only_schema_degenerates() {
        let s = Schema::new(vec![
            Attribute::categorical("a", 4),
            Attribute::categorical("b", 3),
        ])
        .unwrap();
        let mut rng = seeded_rng(9);
        let mut data = Dataset::empty(s.clone());
        for _ in 0..10_000 {
            data.push(&[rng.gen_range(0..4), rng.gen_range(0..3)])
                .unwrap();
        }
        let est = simulate_two_phase(&data, &FelipConfig::new(1.0), 0.1, 2).unwrap();
        let q = Query::new(&s, vec![Predicate::equals(0, 1)]).unwrap();
        assert!((0.0..=1.0).contains(&est.answer(&q).unwrap()));
    }
}
