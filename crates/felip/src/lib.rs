#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! FELIP: locally differentially private frequency estimation on
//! multidimensional datasets (Costa Filho & Machado, EDBT 2023).
//!
//! FELIP answers λ-dimensional counting queries — conjunctions of `IN`
//! predicates on categorical attributes and `BETWEEN` predicates on
//! numerical ones — over data that every user perturbs locally under ε-LDP
//! before it ever reaches the aggregator.
//!
//! # Pipeline
//!
//! 1. **Plan** ([`CollectionPlan::build`]): the aggregator enumerates the
//!    grids (2-D per attribute pair; OHG adds 1-D per numerical attribute),
//!    sizes each grid individually by minimising its bias/variance error
//!    (§5.2), picks the better of GRR/OLH per grid (the Adaptive Frequency
//!    Oracle, §5.3), and divides users into one group per grid (§5.1).
//! 2. **Collect** ([`client::respond`] → [`Aggregator::ingest`]): each user
//!    projects their record onto their group's grid and reports the
//!    perturbed cell through the grid's oracle.
//! 3. **Estimate** ([`Aggregator::estimate`]): per-cell frequencies are
//!    de-biased, then post-processed — non-negativity (Algorithm 1) and
//!    cross-grid consistency (Algorithm 2), alternated (§5.4).
//! 4. **Answer** ([`Estimator::answer`]): 2-D queries are answered from
//!    per-pair response matrices (Algorithm 3, §5.5); λ-D queries are fitted
//!    from their `C(λ,2)` associated 2-D answers (Algorithm 4, §5.6).
//!
//! # Quick start
//!
//! ```
//! use felip::{FelipConfig, Strategy, simulate};
//! use felip_common::{Attribute, Dataset, Predicate, Query, Schema};
//! use felip_common::rng::seeded_rng;
//! use rand::Rng;
//!
//! // A toy dataset: age (numerical, 0..64) × membership (categorical, 3).
//! let schema = Schema::new(vec![
//!     Attribute::numerical("age", 64),
//!     Attribute::categorical("tier", 3),
//! ]).unwrap();
//! let mut rng = seeded_rng(1);
//! let mut data = Dataset::empty(schema.clone());
//! for _ in 0..20_000 {
//!     let age = rng.gen_range(0..64u32);
//!     let tier = rng.gen_range(0..3u32);
//!     data.push(&[age, tier]).unwrap();
//! }
//!
//! // Collect under ε = 1 LDP with the hybrid-grid strategy and answer.
//! let config = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
//! let estimator = simulate(&data, &config, 42).unwrap();
//! let q = Query::new(&schema, vec![
//!     Predicate::between(0, 16, 47),
//!     Predicate::in_set(1, vec![0, 2]),
//! ]).unwrap();
//! let est = estimator.answer(&q).unwrap();
//! let truth = q.true_answer(&data);
//! assert!((est - truth).abs() < 0.2);
//! ```

pub mod aggregator;
pub mod answer;
pub mod client;
pub mod config;
pub mod plan;
pub mod query;
pub mod simulate;
pub mod stats;
pub mod twophase;

pub use aggregator::{Aggregator, OracleSet};
pub use answer::Estimator;
pub use client::{respond, UserReport};
pub use config::{FelipConfig, SelectivityPrior, Strategy};
pub use plan::CollectionPlan;
pub use query::{QueryEngine, RefreshOutcome};
pub use simulate::simulate;
pub use stats::AnswerWithError;
pub use twophase::simulate_two_phase;
