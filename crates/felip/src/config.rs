//! FELIP configuration.

use felip_common::{Error, Result, Schema};
use felip_fo::FoKind;

/// Which FELIP strategy builds the grid collection (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Strategy {
    /// Optimized Uniform Grid: one 2-D grid per attribute pair; in-cell
    /// uniformity is assumed when answering. Best on uniform data.
    Oug,
    /// Optimized Hybrid Grid: OUG's 2-D grids plus one finer 1-D grid per
    /// numerical attribute, used to refine the response matrices. Best on
    /// skewed data.
    Ohg,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Oug => write!(f, "OUG"),
            Strategy::Ohg => write!(f, "OHG"),
        }
    }
}

/// Prior knowledge of query selectivity used when sizing grids (§5, §5.2).
///
/// The aggregator may know the exact selectivity of the workload it will
/// serve, a per-attribute estimate, or nothing (FELIP then uses 0.5, the
/// same assumption TDG/HDG hard-code).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SelectivityPrior {
    /// One expected selectivity for every attribute.
    Uniform(f64),
    /// Per-attribute expected selectivities (schema order).
    PerAttribute(Vec<f64>),
}

impl SelectivityPrior {
    /// The expected selectivity for attribute `attr`.
    pub fn for_attr(&self, attr: usize) -> f64 {
        match self {
            SelectivityPrior::Uniform(r) => *r,
            SelectivityPrior::PerAttribute(rs) => rs[attr],
        }
    }

    /// Validates the prior against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let check = |r: f64| {
            if r > 0.0 && r <= 1.0 {
                Ok(())
            } else {
                Err(Error::InvalidParameter(format!(
                    "selectivity {r} outside (0, 1]"
                )))
            }
        };
        match self {
            SelectivityPrior::Uniform(r) => check(*r),
            SelectivityPrior::PerAttribute(rs) => {
                if rs.len() != schema.len() {
                    return Err(Error::InvalidParameter(format!(
                        "{} selectivities for {} attributes",
                        rs.len(),
                        schema.len()
                    )));
                }
                rs.iter().try_for_each(|&r| check(r))
            }
        }
    }
}

/// Full configuration of a FELIP collection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FelipConfig {
    /// Privacy budget ε each user's report satisfies.
    pub epsilon: f64,
    /// OUG or OHG.
    pub strategy: Strategy,
    /// 1-D non-uniformity constant α₁ (paper default 0.7).
    pub alpha1: f64,
    /// 2-D non-uniformity constant α₂ (paper default 0.03).
    pub alpha2: f64,
    /// Expected query selectivity used to size grids.
    pub selectivity: SelectivityPrior,
    /// When set, disables the Adaptive FO and forces one protocol everywhere
    /// (the OUG-OLH / OHG-OLH ablations of §6.3).
    pub force_fo: Option<FoKind>,
    /// Consistency ↔ non-negativity alternation rounds in post-processing
    /// (§5.4 "multiple times"; 2 matches the reference behaviour).
    pub postprocess_rounds: usize,
    /// Extension (off by default = faithful Algorithm 4): when answering a
    /// λ-D query with λ ≥ 3, additionally constrain the fit with the 1-D
    /// marginal answer of every predicate. The marginals are available from
    /// the same grids at no extra privacy cost and pin the otherwise
    /// under-determined pairs-only fit (see the `ablation_marginals` bench).
    pub lambda_marginals: bool,
}

impl FelipConfig {
    /// A configuration with the paper's defaults: OHG, α₁ = 0.7, α₂ = 0.03,
    /// selectivity prior 0.5, adaptive oracle on, 2 post-processing rounds.
    pub fn new(epsilon: f64) -> Self {
        FelipConfig {
            epsilon,
            strategy: Strategy::Ohg,
            alpha1: 0.7,
            alpha2: 0.03,
            selectivity: SelectivityPrior::Uniform(0.5),
            force_fo: None,
            postprocess_rounds: 2,
            lambda_marginals: false,
        }
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the selectivity prior.
    pub fn with_selectivity(mut self, prior: SelectivityPrior) -> Self {
        self.selectivity = prior;
        self
    }

    /// Forces a single protocol (disables AFO).
    pub fn with_forced_fo(mut self, fo: FoKind) -> Self {
        self.force_fo = Some(fo);
        self
    }

    /// Overrides the non-uniformity constants.
    pub fn with_alphas(mut self, alpha1: f64, alpha2: f64) -> Self {
        self.alpha1 = alpha1;
        self.alpha2 = alpha2;
        self
    }

    /// Overrides the post-processing round count.
    pub fn with_postprocess_rounds(mut self, rounds: usize) -> Self {
        self.postprocess_rounds = rounds;
        self
    }

    /// Enables the marginal-augmented λ-D fit (extension; see
    /// [`FelipConfig::lambda_marginals`]).
    pub fn with_lambda_marginals(mut self, on: bool) -> Self {
        self.lambda_marginals = on;
        self
    }

    /// Validates the configuration against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        // `!(x > 0.0)` (rather than `x <= 0.0`) also rejects NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.epsilon > 0.0) {
            return Err(Error::InvalidParameter(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.alpha1 > 0.0) || !(self.alpha2 > 0.0) {
            return Err(Error::InvalidParameter(
                "alpha constants must be positive".into(),
            ));
        }
        self.selectivity.validate(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_common::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("a", 10),
            Attribute::numerical("b", 10),
        ])
        .unwrap()
    }

    #[test]
    fn defaults_match_paper() {
        let c = FelipConfig::new(1.0);
        assert_eq!(c.strategy, Strategy::Ohg);
        assert!((c.alpha1 - 0.7).abs() < 1e-12);
        assert!((c.alpha2 - 0.03).abs() < 1e-12);
        assert_eq!(c.selectivity.for_attr(0), 0.5);
        assert!(c.force_fo.is_none());
        assert!(!c.lambda_marginals, "extensions default off");
        assert!(c.validate(&schema()).is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = FelipConfig::new(2.0)
            .with_strategy(Strategy::Oug)
            .with_forced_fo(FoKind::Olh)
            .with_alphas(0.5, 0.05)
            .with_postprocess_rounds(3)
            .with_lambda_marginals(true)
            .with_selectivity(SelectivityPrior::PerAttribute(vec![0.1, 0.9]));
        assert_eq!(c.strategy, Strategy::Oug);
        assert_eq!(c.force_fo, Some(FoKind::Olh));
        assert_eq!(c.postprocess_rounds, 3);
        assert_eq!(c.selectivity.for_attr(1), 0.9);
        assert!(c.lambda_marginals);
        assert!(c.validate(&schema()).is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(FelipConfig::new(0.0).validate(&schema()).is_err());
        assert!(FelipConfig::new(1.0)
            .with_alphas(0.0, 0.03)
            .validate(&schema())
            .is_err());
        assert!(FelipConfig::new(1.0)
            .with_selectivity(SelectivityPrior::Uniform(0.0))
            .validate(&schema())
            .is_err());
        assert!(FelipConfig::new(1.0)
            .with_selectivity(SelectivityPrior::PerAttribute(vec![0.5]))
            .validate(&schema())
            .is_err());
        assert!(FelipConfig::new(1.0)
            .with_selectivity(SelectivityPrior::PerAttribute(vec![0.5, 1.5]))
            .validate(&schema())
            .is_err());
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::Oug.to_string(), "OUG");
        assert_eq!(Strategy::Ohg.to_string(), "OHG");
    }
}
