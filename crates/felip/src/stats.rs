//! Derived statistics on top of query answering: analytic error bars and
//! mean estimation.
//!
//! The paper's error analysis (§5.7) gives closed-form noise variances per
//! grid cell; summing them over the cells a query touches yields an
//! analytic standard error for the estimate — the number an analyst needs
//! to decide whether a reported difference is signal or LDP noise. Mean
//! estimation over a numerical attribute falls out of the 1-D marginal
//! (bin midpoints weighted by estimated frequencies), a common companion
//! query in LDP deployments.

use felip_common::{AttrKind, Error, Query, Result};
use felip_grid::GridId;

use crate::answer::Estimator;

/// A query answer with its analytic one-standard-deviation error bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerWithError {
    /// The frequency estimate, clamped to `[0, 1]`.
    pub estimate: f64,
    /// Analytic standard error from the noise model (§5.7). A first-order
    /// bound: it accounts for FO noise over the touched cells of the
    /// answering grids, not for non-uniformity bias or λ-D fitting error.
    pub std_error: f64,
}

impl Estimator {
    /// Answers `query` together with an analytic standard error.
    ///
    /// The error model follows §5.7: each grid cell contributes an
    /// independent zero-mean noise term with the grid's per-cell variance
    /// (`cell_variances` of the plan); a query that touches `c` cells of
    /// grid `G` with selection weights `w_i` accumulates
    /// `Σ w_i² · Var_G`. For λ ≥ 3 we report the error of the *largest*
    /// associated 2-D answer — a conservative proxy, since Algorithm 4's
    /// multiplicative updates only shrink mass.
    pub fn answer_with_error(&self, query: &Query) -> Result<AnswerWithError> {
        let estimate = self.answer(query)?;
        let preds = query.predicates();
        let variances = self.plan().cell_variances();

        // Variance of answering a predicate set from one grid.
        let grid_answer_variance = |grid_idx: usize, attrs: &[usize]| -> f64 {
            let grid = &self.grids()[grid_idx];
            let var0 = variances[grid_idx];
            // Product over axes of Σ w², where w are the per-axis selection
            // weights (1 for unconstrained axes).
            let mut sum_sq = 1.0;
            for axis in grid.spec().axes() {
                if let Some(p) = preds
                    .iter()
                    .find(|p| p.attr == axis.attr && attrs.contains(&p.attr))
                {
                    let w = grid.axis_selection_weights(axis.attr, p);
                    sum_sq *= w.iter().map(|x| x * x).sum::<f64>();
                } else {
                    sum_sq *= axis.cells() as f64;
                }
            }
            sum_sq * var0
        };

        let variance = match preds.len() {
            0 => unreachable!("queries are non-empty"),
            1 => {
                let attr = preds[0].attr;
                // Same grid choice as answer_single: finest covering grid.
                let (idx, _) = self
                    .grids()
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.spec().id().covers(attr))
                    .max_by_key(|(_, g)| g.spec().axis_for(attr).expect("covers").cells())
                    .ok_or_else(|| {
                        Error::InvalidQuery(format!("no grid covers attribute {attr}"))
                    })?;
                grid_answer_variance(idx, &[attr])
            }
            _ => {
                // For every pair of query attributes with a planned 2-D
                // grid, compute that grid's answer variance; report the
                // worst (λ = 2 has exactly one).
                let mut worst: f64 = 0.0;
                for (a, pa) in preds.iter().enumerate() {
                    for pb in preds.iter().skip(a + 1) {
                        let (i, j) = (pa.attr.min(pb.attr), pa.attr.max(pb.attr));
                        if let Some(idx) = self.plan().grid_index(GridId::Two(i, j)) {
                            worst = worst.max(grid_answer_variance(idx, &[i, j]));
                        }
                    }
                }
                worst
            }
        };
        Ok(AnswerWithError {
            estimate,
            std_error: variance.sqrt(),
        })
    }

    /// Estimates the mean of a numerical attribute under the collected
    /// data: `Σ midpoint(cell) · f̂(cell)` over the finest 1-D view of the
    /// attribute (with in-cell uniformity, the midpoint is the conditional
    /// mean).
    pub fn mean(&self, attr: usize) -> Result<f64> {
        let schema = self.plan().schema();
        if attr >= schema.len() {
            return Err(Error::InvalidQuery(format!(
                "attribute {attr} outside the schema of {} attributes",
                schema.len()
            )));
        }
        if schema.attr(attr).kind != AttrKind::Numerical {
            return Err(Error::InvalidQuery(format!(
                "mean of categorical attribute `{}` is undefined",
                schema.attr(attr).name
            )));
        }
        let grid = self
            .grids()
            .iter()
            .filter(|g| g.spec().id().covers(attr))
            .max_by_key(|g| g.spec().axis_for(attr).expect("covers").cells())
            .ok_or_else(|| Error::InvalidQuery(format!("no grid covers attribute {attr}")))?;
        let axis = grid.spec().axis_for(attr).expect("covers");
        let marginal = grid.marginal_along(attr);
        let total: f64 = marginal.iter().sum();
        if total <= 0.0 {
            return Ok((schema.domain(attr) as f64 - 1.0) / 2.0);
        }
        let mut mean = 0.0;
        for (cell, f) in marginal.iter().enumerate() {
            let (lo, hi) = axis.binning.cell_range(cell as u32); // [lo, hi)
            let midpoint = (lo as f64 + (hi - 1) as f64) / 2.0;
            mean += midpoint * f;
        }
        Ok(mean / total)
    }

    /// Estimates the full distribution (histogram) of one attribute at
    /// value granularity, spreading each cell's mass uniformly over its
    /// values. Sums to ≈ 1.
    pub fn histogram(&self, attr: usize) -> Result<Vec<f64>> {
        let schema = self.plan().schema();
        if attr >= schema.len() {
            return Err(Error::InvalidQuery(format!(
                "attribute {attr} outside the schema of {} attributes",
                schema.len()
            )));
        }
        let grid = self
            .grids()
            .iter()
            .filter(|g| g.spec().id().covers(attr))
            .max_by_key(|g| g.spec().axis_for(attr).expect("covers").cells())
            .ok_or_else(|| Error::InvalidQuery(format!("no grid covers attribute {attr}")))?;
        let axis = grid.spec().axis_for(attr).expect("covers");
        let marginal = grid.marginal_along(attr);
        let mut hist = vec![0.0; schema.domain(attr) as usize];
        for (cell, f) in marginal.iter().enumerate() {
            let (lo, hi) = axis.binning.cell_range(cell as u32);
            let share = f / (hi - lo) as f64;
            for slot in &mut hist[lo as usize..hi as usize] {
                *slot = share;
            }
        }
        Ok(hist)
    }
}

/// Checks whether two estimates differ significantly at ~95% confidence
/// given their analytic error bars (two-sigma rule on the difference).
pub fn significantly_different(a: &AnswerWithError, b: &AnswerWithError) -> bool {
    let combined = (a.std_error * a.std_error + b.std_error * b.std_error).sqrt();
    (a.estimate - b.estimate).abs() > 2.0 * combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FelipConfig, Strategy};
    use crate::simulate::{simulate, uniform_dataset};
    use felip_common::{Attribute, Predicate, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("x", 64),
            Attribute::numerical("y", 64),
            Attribute::categorical("c", 4),
        ])
        .unwrap()
    }

    fn estimator(n: usize, seed: u64) -> (felip_common::Dataset, Estimator) {
        let data = uniform_dataset(&schema(), n, seed);
        let est = simulate(
            &data,
            &FelipConfig::new(1.0).with_strategy(Strategy::Ohg),
            seed,
        )
        .unwrap();
        (data, est)
    }

    #[test]
    fn error_bars_cover_the_truth_mostly() {
        let (data, est) = estimator(40_000, 3);
        let q = Query::new(&schema(), vec![Predicate::between(0, 0, 31)]).unwrap();
        let a = est.answer_with_error(&q).unwrap();
        let truth = q.true_answer(&data);
        assert!(a.std_error > 0.0);
        // Three-sigma check (loose; one seeded draw).
        assert!(
            (a.estimate - truth).abs() < 4.0 * a.std_error + 0.02,
            "estimate {} ± {} vs truth {truth}",
            a.estimate,
            a.std_error
        );
    }

    #[test]
    fn error_shrinks_with_population() {
        let (_, small) = estimator(5_000, 4);
        let (_, large) = estimator(80_000, 4);
        let q = Query::new(
            &schema(),
            vec![Predicate::between(0, 0, 31), Predicate::between(1, 0, 31)],
        )
        .unwrap();
        let se_small = small.answer_with_error(&q).unwrap().std_error;
        let se_large = large.answer_with_error(&q).unwrap().std_error;
        assert!(se_large < se_small, "{se_large} !< {se_small}");
    }

    #[test]
    fn mean_of_uniform_attribute_is_middle() {
        let (_, est) = estimator(60_000, 5);
        let m = est.mean(0).unwrap();
        // Uniform over 0..64 → mean 31.5.
        assert!((m - 31.5).abs() < 3.0, "mean {m}");
    }

    #[test]
    fn mean_rejects_categorical_and_bad_attr() {
        let (_, est) = estimator(2_000, 6);
        assert!(est.mean(2).is_err());
        assert!(est.mean(9).is_err());
    }

    #[test]
    fn histogram_is_a_distribution() {
        let (_, est) = estimator(30_000, 7);
        let h = est.histogram(0).unwrap();
        assert_eq!(h.len(), 64);
        assert!(h.iter().all(|&f| f >= 0.0));
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        // Uniform data → roughly flat histogram.
        let (min, max) = h.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        assert!(max - min < 0.05, "uniform histogram spread {min}..{max}");
    }

    #[test]
    fn histogram_of_categorical_attribute() {
        let (_, est) = estimator(30_000, 8);
        let h = est.histogram(2).unwrap();
        assert_eq!(h.len(), 4);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn significance_test() {
        let a = AnswerWithError {
            estimate: 0.5,
            std_error: 0.01,
        };
        let b = AnswerWithError {
            estimate: 0.4,
            std_error: 0.01,
        };
        let c = AnswerWithError {
            estimate: 0.49,
            std_error: 0.01,
        };
        assert!(significantly_different(&a, &b));
        assert!(!significantly_different(&a, &c));
    }
}
