//! Incremental estimation: serve λ-D frequency queries from streaming
//! counts without re-running the full batch pipeline per query.
//!
//! [`QueryEngine`] caches, per grid, the de-biased frequency vector
//! produced by [`FrequencyOracle::estimate_from_counts`] together with the
//! exact support counts it was computed from. On [`QueryEngine::refresh`]
//! with a new snapshot-consistent count read, only the grids whose counts
//! changed are re-estimated; the post-processing pass (norm-sub +
//! cross-grid consistency, DESIGN.md §17) is then re-run over the full
//! grid set, because consistency couples grids that share an attribute and
//! therefore does *not* commute with per-grid updates — whereas per-grid
//! de-biasing is a pure function of `(counts, group_size)` and does.
//!
//! The headline invariant: the [`Estimator`] produced by a refresh is
//! **bit-identical** to [`Aggregator::estimate`] run offline on the same
//! counts. This holds unconditionally (no hashing, no tolerance): cached
//! grids are keyed by the full count vector compared exactly, so a reused
//! de-biased vector is the very same `f64` sequence a fresh
//! `estimate_from_counts` call on identical inputs would produce, and the
//! global post-processing pass is shared with the batch path verbatim.
//!
//! Each refresh that observes changed counts advances the engine's
//! **epoch** — the cache key exposed on the wire (`QueryReply.epoch`) so
//! clients can reason about answer staleness relative to the ingest head.
//!
//! [`FrequencyOracle::estimate_from_counts`]: felip_fo::FrequencyOracle::estimate_from_counts

use std::sync::Arc;

use felip_common::{Error, Result};
use felip_grid::postprocess::post_process;
use felip_grid::EstimatedGrid;

use crate::aggregator::{Aggregator, OracleSet};
use crate::answer::Estimator;
use crate::plan::CollectionPlan;

/// One grid's cached de-biased estimate, keyed by the exact counts and
/// group size it was computed from.
struct GridCache {
    counts: Vec<u64>,
    size: usize,
    freqs: Vec<f64>,
}

/// What one [`QueryEngine::refresh`] did, plus the estimator to answer
/// queries from.
#[derive(Debug)]
pub struct RefreshOutcome {
    /// The post-processed estimator for the refreshed counts.
    pub estimator: Arc<Estimator>,
    /// Ingest epoch this estimator is keyed by.
    pub epoch: u64,
    /// Total reports behind the estimator (sum of group sizes).
    pub reports: u64,
    /// True when the refresh was a pure cache hit (no grid changed, no
    /// post-processing re-run).
    pub warm: bool,
    /// Grids whose de-biased estimates were recomputed this refresh.
    pub refreshed_grids: usize,
}

/// The incremental estimation engine (DESIGN.md §17).
///
/// Feed it snapshot-consistent count reads via [`refresh`]; it returns a
/// post-processed [`Estimator`] bit-identical to the offline batch path on
/// the same counts, reusing per-grid de-biasing work across refreshes.
///
/// [`refresh`]: QueryEngine::refresh
pub struct QueryEngine {
    plan: Arc<CollectionPlan>,
    oracles: Arc<OracleSet>,
    grids: Vec<Option<GridCache>>,
    estimator: Option<Arc<Estimator>>,
    epoch: u64,
    reports: u64,
}

impl QueryEngine {
    /// A cold engine for `plan`: epoch 0, nothing cached.
    pub fn new(plan: Arc<CollectionPlan>, oracles: Arc<OracleSet>) -> Self {
        let groups = plan.num_groups();
        QueryEngine {
            plan,
            oracles,
            grids: (0..groups).map(|_| None).collect(),
            estimator: None,
            epoch: 0,
            reports: 0,
        }
    }

    /// The engine's plan.
    pub fn plan(&self) -> &Arc<CollectionPlan> {
        &self.plan
    }

    /// Current cache epoch: 0 means nothing cached; advances by one on
    /// every refresh that observed changed counts.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reports behind the currently cached estimator.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// The cached estimator, if any refresh has completed since the last
    /// [`reset`](QueryEngine::reset).
    pub fn estimator(&self) -> Option<Arc<Estimator>> {
        self.estimator.as_ref().map(Arc::clone)
    }

    /// Drops every cached grid and the cached estimator and rewinds the
    /// epoch to 0. Called after a state restore so a resumed server can
    /// never serve a pre-restore cached grid.
    pub fn reset(&mut self) {
        for slot in &mut self.grids {
            *slot = None;
        }
        self.estimator = None;
        self.epoch = 0;
        self.reports = 0;
    }

    /// Refreshes the engine from a snapshot-consistent count read.
    ///
    /// `counts` and `group_sizes` must have the plan's group shape (one
    /// count vector per grid, sized to the grid's cell count). Grids whose
    /// counts are unchanged since the cached epoch reuse their cached
    /// de-biased estimates; changed grids are re-estimated; the global
    /// post-processing pass re-runs whenever *any* grid changed. A refresh
    /// where nothing changed returns the cached estimator untouched
    /// (`warm == true`).
    pub fn refresh(
        &mut self,
        counts: &[Vec<u64>],
        group_sizes: &[usize],
    ) -> Result<RefreshOutcome> {
        let specs = self.plan.grids();
        if counts.len() != specs.len() || group_sizes.len() != specs.len() {
            return Err(Error::InvalidParameter(format!(
                "count shape {}x / sizes {} does not match plan with {} groups",
                counts.len(),
                group_sizes.len(),
                specs.len()
            )));
        }
        for (g, (spec, c)) in specs.iter().zip(counts).enumerate() {
            if c.len() != spec.num_cells() as usize {
                return Err(Error::InvalidParameter(format!(
                    "group {g} has {} counts, grid expects {}",
                    c.len(),
                    spec.num_cells()
                )));
            }
        }
        let total: u64 = group_sizes.iter().map(|&s| s as u64).sum();
        if total == 0 {
            // Mirror `Aggregator::estimate` exactly: an empty collection
            // has no estimate, warm cache or not.
            return Err(Error::InvalidParameter("no reports ingested".into()));
        }

        // Exact-key comparison: a grid is stale iff its counts or group
        // size differ from what the cache was computed from.
        let mut refreshed = 0usize;
        for (g, (c, &size)) in counts.iter().zip(group_sizes).enumerate() {
            let stale = match &self.grids[g] {
                Some(cache) => cache.size != size || cache.counts != *c,
                None => true,
            };
            if !stale {
                continue;
            }
            if self.grids[g].is_some() {
                felip_obs::counter!("query.cache.invalidations", 1);
            }
            felip_obs::counter!("query.cache.miss", 1);
            let freqs = self.oracles.get(g).estimate_from_counts(c, size);
            self.grids[g] = Some(GridCache {
                counts: c.clone(),
                size,
                freqs,
            });
            refreshed += 1;
        }

        if refreshed == 0 {
            if let Some(est) = &self.estimator {
                felip_obs::counter!("query.cache.hit", 1);
                return Ok(RefreshOutcome {
                    estimator: Arc::clone(est),
                    epoch: self.epoch,
                    reports: self.reports,
                    warm: true,
                    refreshed_grids: 0,
                });
            }
        }

        // Post-processing couples grids (cross-grid consistency), so it
        // re-runs over the full set from the cached de-biased vectors —
        // the same inputs the batch path would feed it.
        let mut grids: Vec<EstimatedGrid> = specs
            .iter()
            .zip(&self.grids)
            .map(|(spec, cache)| {
                let cache = cache.as_ref().ok_or_else(|| {
                    Error::InvalidParameter("query engine grid cache unexpectedly empty".into())
                })?;
                Ok(EstimatedGrid::new(spec.clone(), cache.freqs.clone()))
            })
            .collect::<Result<_>>()?;
        let variances = self.plan.cell_variances();
        post_process(
            &mut grids,
            self.plan.schema().len(),
            &variances,
            self.plan.config().postprocess_rounds,
        )?;
        let estimator = Arc::new(Estimator::new(Arc::clone(&self.plan), grids));
        self.estimator = Some(Arc::clone(&estimator));
        self.epoch += 1;
        self.reports = total;
        Ok(RefreshOutcome {
            estimator,
            epoch: self.epoch,
            reports: total,
            warm: false,
            refreshed_grids: refreshed,
        })
    }

    /// Convenience: refresh straight from an aggregator's current state.
    pub fn refresh_from(&mut self, agg: &Aggregator) -> Result<RefreshOutcome> {
        self.refresh(agg.counts(), agg.group_sizes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::respond;
    use crate::config::{FelipConfig, Strategy};
    use felip_common::rng::{derive_seed, seeded_rng};
    use felip_common::{Attribute, Schema};

    fn plan() -> Arc<CollectionPlan> {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("b", 4),
            Attribute::numerical("c", 16),
        ])
        .unwrap();
        let config = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
        Arc::new(CollectionPlan::build(&schema, 4_000, &config, 7).unwrap())
    }

    fn reports(plan: &Arc<CollectionPlan>, users: std::ops::Range<usize>, seed: u64) -> Aggregator {
        let mut agg = Aggregator::new(Arc::clone(plan));
        let schema = plan.schema();
        for user in users {
            let mut rng = seeded_rng(derive_seed(seed, user as u64));
            let record: Vec<u32> = (0..schema.len())
                .map(|a| (user as u32).wrapping_mul(a as u32 + 3) % schema.domain(a))
                .collect();
            let report = respond(plan, user, &record, &mut rng).unwrap();
            agg.ingest(&report).unwrap();
        }
        agg
    }

    #[test]
    fn cold_refresh_matches_batch_estimate_bit_identically() {
        let plan = plan();
        let agg = reports(&plan, 0..500, 11);
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
        let out = engine.refresh_from(&agg).unwrap();
        let batch = agg.estimate().unwrap();
        assert!(!out.warm);
        assert_eq!(out.epoch, 1);
        assert_eq!(out.refreshed_grids, plan.num_groups());
        for (inc, off) in out.estimator.grids().iter().zip(batch.grids()) {
            assert_eq!(inc.freqs(), off.freqs(), "grid freqs must be bit-identical");
        }
    }

    #[test]
    fn warm_refresh_is_a_cache_hit_and_same_estimator() {
        let plan = plan();
        let agg = reports(&plan, 0..400, 13);
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
        let first = engine.refresh_from(&agg).unwrap();
        let second = engine.refresh_from(&agg).unwrap();
        assert!(second.warm);
        assert_eq!(second.epoch, first.epoch);
        assert!(Arc::ptr_eq(&first.estimator, &second.estimator));
        let _ = plan;
    }

    #[test]
    fn partial_update_refreshes_only_changed_grids() {
        let plan = plan();
        let agg = reports(&plan, 0..600, 17);
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
        engine.refresh_from(&agg).unwrap();

        // Mutate one group's counts by hand: only that grid re-estimates,
        // but the whole estimator still matches a batch run on the
        // mutated counts bit-for-bit.
        let mut counts: Vec<Vec<u64>> = agg.counts().to_vec();
        let mut sizes = agg.group_sizes().to_vec();
        counts[0][0] += 3;
        sizes[0] += 3;
        let out = engine.refresh(&counts, &sizes).unwrap();
        assert!(!out.warm);
        assert_eq!(out.refreshed_grids, 1);
        assert_eq!(out.epoch, 2);

        let offline = Aggregator::restore(
            agg.plan_handle(),
            agg.oracles(),
            counts.clone(),
            sizes.clone(),
        )
        .unwrap()
        .estimate()
        .unwrap();
        for (inc, off) in out.estimator.grids().iter().zip(offline.grids()) {
            assert_eq!(inc.freqs(), off.freqs());
        }
        let _ = plan;
    }

    #[test]
    fn empty_counts_are_rejected_like_batch() {
        let plan = plan();
        let agg = Aggregator::new(Arc::clone(&plan));
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
        let err = engine.refresh_from(&agg).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn reset_rewinds_epoch_and_drops_cache() {
        let plan = plan();
        let agg = reports(&plan, 0..300, 19);
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
        engine.refresh_from(&agg).unwrap();
        assert_eq!(engine.epoch(), 1);
        engine.reset();
        assert_eq!(engine.epoch(), 0);
        assert!(engine.estimator().is_none());
        // Post-reset refresh is cold again: every grid recomputes.
        let out = engine.refresh_from(&agg).unwrap();
        assert_eq!(out.refreshed_grids, plan.num_groups());
        assert_eq!(out.epoch, 1);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let plan = plan();
        let agg = reports(&plan, 0..100, 23);
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
        let err = engine
            .refresh(&agg.counts()[..1], &agg.group_sizes()[..1])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
        let mut bad = agg.counts().to_vec();
        bad[0].push(0);
        let err = engine.refresh(&bad, agg.group_sizes()).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }
}
