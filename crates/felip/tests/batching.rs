//! Equivalence properties of the batched ingestion pipeline: sharded
//! collection, `ingest_batch` bucketing, and `Aggregator::merge` must all be
//! *exactly* (bit-for-bit, not statistically) equivalent to ingesting every
//! report one at a time in sequence.

use std::sync::Arc;

use proptest::prelude::*;

use felip::simulate::{collect, uniform_dataset};
use felip::{Aggregator, CollectionPlan, FelipConfig, OracleSet, Strategy, UserReport};
use felip_common::rng::{derive_seed, seeded_rng};
use felip_common::{Attribute, Schema};

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::numerical("a", 32),
        Attribute::numerical("b", 16),
        Attribute::categorical("c", 4),
    ])
    .unwrap()
}

/// Asserts two aggregators hold identical state: per-group report tallies
/// and every grid's exact support counts.
fn assert_same_state(a: &Aggregator, b: &Aggregator) {
    assert_eq!(a.group_sizes(), b.group_sizes(), "group sizes differ");
    assert_eq!(a.counts(), b.counts(), "support counts differ");
}

/// `collect` (sharded, per-group-buffered, batch-kernel ingestion) produces
/// exactly the counts and group sizes of a single sequential per-report
/// pass replaying the same per-shard RNG streams. The population spans two
/// shards so cross-shard merging is exercised.
#[test]
fn collect_matches_sequential_ingestion_across_shards() {
    // Must mirror the shard width in `felip::simulate::collect`.
    const SHARD: usize = 16_384;
    let n = SHARD + 3_000;
    let data = uniform_dataset(&schema(), n, 11);
    let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
    let plan = CollectionPlan::build(&schema(), n, &cfg, 12).unwrap();
    let seed = 13u64;

    let sharded = collect(&data, &plan, seed).unwrap();

    let oracles = OracleSet::build(&plan);
    let mut sequential = Aggregator::new(plan.clone());
    for s in 0..n.div_ceil(SHARD) {
        let mut rng = seeded_rng(derive_seed(seed, s as u64));
        for u in s * SHARD..((s + 1) * SHARD).min(n) {
            let group = plan.group_of(u);
            let cell = plan.grids()[group].cell_of_record(data.row(u));
            let report = oracles.get(group).perturb(cell, &mut rng);
            sequential.ingest(&UserReport { group, report }).unwrap();
        }
    }

    assert_same_state(&sharded, &sequential);
}

proptest! {
    /// For an arbitrary mixed-group report stream, ingesting it (a) one
    /// report at a time, (b) in one `ingest_batch` call, and (c) split into
    /// chunked shard aggregators sharing one plan/oracle set and merged,
    /// all yield identical counts and group sizes.
    #[test]
    fn batch_and_sharded_ingestion_equal_sequential(
        n in 1usize..300,
        seed in 0u64..500,
        chunk in 1usize..64,
    ) {
        let cfg = FelipConfig::new(1.0);
        let plan = Arc::new(CollectionPlan::build(&schema(), n, &cfg, seed).unwrap());
        let oracles = Arc::new(OracleSet::build(&plan));

        // An arbitrary report stream with groups interleaved (user order,
        // which the plan's group assignment scatters across groups).
        let mut rng = seeded_rng(derive_seed(seed, 7));
        let stream: Vec<UserReport> = (0..n)
            .map(|u| {
                let group = plan.group_of(u);
                let grid = &plan.grids()[group];
                let cell = (u as u32 * 31 + seed as u32) % grid.num_cells();
                UserReport { group, report: oracles.get(group).perturb(cell, &mut rng) }
            })
            .collect();

        let mut sequential = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        for r in &stream {
            sequential.ingest(r).unwrap();
        }

        let mut batched = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        batched.ingest_batch(&stream).unwrap();
        prop_assert_eq!(batched.group_sizes(), sequential.group_sizes());
        prop_assert_eq!(batched.counts(), sequential.counts());

        let mut chunks = stream.chunks(chunk);
        let mut merged = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        if let Some(first) = chunks.next() {
            merged.ingest_batch(first).unwrap();
        }
        for c in chunks {
            let mut shard = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
            shard.ingest_batch(c).unwrap();
            merged.merge(&shard).expect("merge");
        }
        prop_assert_eq!(merged.group_sizes(), sequential.group_sizes());
        prop_assert_eq!(merged.counts(), sequential.counts());
    }

    /// `ingest_batch` validates every group index before touching state: a
    /// stream with one bad report leaves the aggregator exactly unchanged.
    #[test]
    fn ingest_batch_is_atomic_on_bad_group(n in 1usize..50, seed in 0u64..200) {
        let cfg = FelipConfig::new(1.0);
        let plan = CollectionPlan::build(&schema(), n.max(2), &cfg, seed).unwrap();
        let mut agg = Aggregator::new(plan.clone());
        let mut rng = seeded_rng(seed);
        let oracles = OracleSet::build(&plan);
        let mut stream: Vec<UserReport> = (0..n)
            .map(|u| {
                let group = plan.group_of(u);
                UserReport { group, report: oracles.get(group).perturb(0, &mut rng) }
            })
            .collect();
        stream.push(UserReport { group: plan.num_groups(), report: felip_fo::Report::Grr(0) });
        prop_assert!(agg.ingest_batch(&stream).is_err());
        prop_assert_eq!(agg.reports_ingested(), 0);
        prop_assert!(agg.counts().iter().all(|c| c.iter().all(|&x| x == 0)));
    }
}
