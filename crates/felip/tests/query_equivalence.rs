//! Equivalence properties of the incremental estimation engine: every
//! answer `QueryEngine` serves from a refresh must be *bit-identical* (not
//! statistically close) to a fresh offline `Aggregator::estimate` computed
//! on the exact same count cut — across arbitrary interleavings of ingest
//! chunks and refreshes, and across the cache-warm, cache-cold, and
//! partial-grid-invalidation paths.

use std::sync::Arc;

use proptest::prelude::*;

use felip::{respond, Aggregator, CollectionPlan, Estimator, FelipConfig, QueryEngine, Strategy};
use felip_common::rng::{derive_seed, seeded_rng};
use felip_common::{Attribute, Predicate, Query, Schema};

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::numerical("a", 32),
        Attribute::categorical("b", 4),
        Attribute::numerical("c", 16),
    ])
    .unwrap()
}

fn plan(seed: u64) -> Arc<CollectionPlan> {
    let config = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
    Arc::new(CollectionPlan::build(&schema(), 4_000, &config, seed).unwrap())
}

/// Deterministic per-user records, same construction the engine unit tests
/// and the server loadgen use: value depends only on (user, attribute).
fn ingest_users(agg: &mut Aggregator, users: std::ops::Range<usize>, seed: u64) {
    let plan = agg.plan_handle();
    let schema = plan.schema();
    for user in users {
        let mut rng = seeded_rng(derive_seed(seed, user as u64));
        let record: Vec<u32> = (0..schema.len())
            .map(|a| (user as u32).wrapping_mul(a as u32 + 3) % schema.domain(a))
            .collect();
        let report = respond(&plan, user, &record, &mut rng).unwrap();
        agg.ingest(&report).unwrap();
    }
}

/// λ-D probes spanning the predicate grammar: a 1-D range marginal, a 1-D
/// categorical set, and a 3-D conjunction.
fn probes(schema: &Schema) -> Vec<Query> {
    vec![
        Query::new(schema, vec![Predicate::between(0, 4, 20)]).unwrap(),
        Query::new(schema, vec![Predicate::in_set(1, vec![0, 2])]).unwrap(),
        Query::new(
            schema,
            vec![
                Predicate::between(0, 8, 24),
                Predicate::in_set(1, vec![1, 3]),
                Predicate::between(2, 2, 9),
            ],
        )
        .unwrap(),
    ]
}

/// The headline invariant: every grid's post-processed frequencies and
/// every probe answer from the incremental estimator equal the offline
/// batch estimate on the same counts, bit for bit.
fn assert_matches_batch(est: &Estimator, agg: &Aggregator, queries: &[Query]) {
    let batch = agg.estimate().unwrap();
    for (g, (inc, off)) in est.grids().iter().zip(batch.grids()).enumerate() {
        let inc_bits: Vec<u64> = inc.freqs().iter().map(|f| f.to_bits()).collect();
        let off_bits: Vec<u64> = off.freqs().iter().map(|f| f.to_bits()).collect();
        assert_eq!(
            inc_bits, off_bits,
            "grid {g} diverges from the batch estimate"
        );
    }
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            est.answer(q).unwrap().to_bits(),
            batch.answer(q).unwrap().to_bits(),
            "probe {i} diverges from the batch estimate"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random interleavings of ingest chunks and refreshes. After every
    /// cut the incremental estimator is compared bit-for-bit against an
    /// offline batch estimate on that cut; even-sized chunks additionally
    /// re-refresh on unchanged counts to exercise the warm path mid-stream.
    #[test]
    fn interleaved_ingest_and_queries_match_batch_bit_identically(
        seed in 0u64..200,
        cuts in proptest::collection::vec(1usize..60, 1..7),
    ) {
        let plan = plan(seed);
        let queries = probes(plan.schema());
        let mut agg = Aggregator::new(Arc::clone(&plan));
        let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());

        let mut next_user = 0usize;
        let mut expected_epoch = 0u64;
        for chunk in cuts {
            ingest_users(&mut agg, next_user..next_user + chunk, seed);
            next_user += chunk;

            let out = engine.refresh_from(&agg).unwrap();
            expected_epoch += 1;
            prop_assert!(!out.warm);
            prop_assert!(out.refreshed_grids >= 1);
            prop_assert_eq!(out.epoch, expected_epoch);
            prop_assert_eq!(out.reports, next_user as u64);
            assert_matches_batch(&out.estimator, &agg, &queries);

            if chunk % 2 == 0 {
                // Unchanged counts: the cache must serve the same
                // estimator without advancing the epoch.
                let warm = engine.refresh_from(&agg).unwrap();
                prop_assert!(warm.warm);
                prop_assert_eq!(warm.epoch, expected_epoch);
                prop_assert_eq!(warm.refreshed_grids, 0);
                prop_assert!(Arc::ptr_eq(&warm.estimator, &out.estimator));
            }
        }
    }
}

/// Cold → warm → invalidation lifecycle on one engine: the cold refresh
/// recomputes every grid, the warm refresh reuses the estimator wholesale,
/// and ingesting more reports invalidates and still matches batch.
#[test]
fn cold_warm_and_invalidated_refreshes_all_match_batch() {
    let plan = plan(41);
    let queries = probes(plan.schema());
    let mut agg = Aggregator::new(Arc::clone(&plan));
    ingest_users(&mut agg, 0..350, 41);

    let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
    let cold = engine.refresh_from(&agg).unwrap();
    assert!(!cold.warm);
    assert_eq!(cold.refreshed_grids, plan.num_groups());
    assert_matches_batch(&cold.estimator, &agg, &queries);

    let warm = engine.refresh_from(&agg).unwrap();
    assert!(warm.warm);
    assert!(Arc::ptr_eq(&warm.estimator, &cold.estimator));

    ingest_users(&mut agg, 350..500, 41);
    let invalidated = engine.refresh_from(&agg).unwrap();
    assert!(!invalidated.warm);
    assert_eq!(invalidated.epoch, 2);
    assert_matches_batch(&invalidated.estimator, &agg, &queries);
}

/// A partial-grid update (a handful of users, all landing in a strict
/// subset of the plan's groups) must invalidate only the touched grids —
/// and the globally re-post-processed result must still be bit-identical
/// to a batch estimate, because cross-grid consistency re-runs over the
/// cached de-biased vectors the batch path would also produce.
#[test]
fn partial_grid_update_invalidates_only_touched_grids() {
    let plan = plan(43);
    let queries = probes(plan.schema());
    let mut agg = Aggregator::new(Arc::clone(&plan));
    ingest_users(&mut agg, 0..400, 43);

    let mut engine = QueryEngine::new(agg.plan_handle(), agg.oracles());
    engine.refresh_from(&agg).unwrap();

    // One more user touches exactly one group's grid.
    let touched: std::collections::BTreeSet<usize> = (400..401).map(|u| plan.group_of(u)).collect();
    ingest_users(&mut agg, 400..401, 43);
    let out = engine.refresh_from(&agg).unwrap();
    assert!(!out.warm);
    assert_eq!(out.refreshed_grids, touched.len());
    assert!(
        out.refreshed_grids < plan.num_groups(),
        "a single-user update must not invalidate every grid"
    );
    assert_matches_batch(&out.estimator, &agg, &queries);
}
