//! Wire-format round-trips: a deployment serialises the plan (server →
//! clients) and the reports (clients → server); both must survive JSON
//! round-trips bit-exactly.

use felip::{respond, Aggregator, CollectionPlan, FelipConfig, Strategy};
use felip_common::rng::seeded_rng;
use felip_common::{Attribute, Schema};

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::numerical("x", 64),
        Attribute::categorical("c", 4),
    ])
    .unwrap()
}

#[test]
fn plan_round_trips_through_json() {
    let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
    let plan = CollectionPlan::build(&schema(), 10_000, &cfg, 9).unwrap();
    let json = serde_json::to_string(&plan).unwrap();
    let back: CollectionPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_groups(), plan.num_groups());
    assert_eq!(back.grids(), plan.grids());
    // Group assignment (seed-dependent) must survive too.
    for u in 0..100 {
        assert_eq!(back.group_of(u), plan.group_of(u));
    }
}

#[test]
fn reports_round_trip_and_aggregate_identically() {
    let cfg = FelipConfig::new(1.0);
    let plan = CollectionPlan::build(&schema(), 2_000, &cfg, 9).unwrap();
    let mut rng = seeded_rng(1);
    let reports: Vec<_> = (0..2_000)
        .map(|u| respond(&plan, u, &[(u % 64) as u32, (u % 4) as u32], &mut rng).unwrap())
        .collect();

    // Serialise every report (as a device would), then re-ingest.
    let mut direct = Aggregator::new(plan.clone());
    let mut via_json = Aggregator::new(plan.clone());
    for r in &reports {
        direct.ingest(r).unwrap();
        let json = serde_json::to_string(r).unwrap();
        let back: felip::UserReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, r);
        via_json.ingest(&back).unwrap();
    }
    let a = direct.estimate().unwrap();
    let b = via_json.estimate().unwrap();
    for (ga, gb) in a.grids().iter().zip(b.grids()) {
        assert_eq!(ga.freqs(), gb.freqs());
    }
}

#[test]
fn config_round_trips() {
    let cfg = FelipConfig::new(2.5)
        .with_strategy(Strategy::Oug)
        .with_lambda_marginals(true)
        .with_postprocess_rounds(4);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: FelipConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}
