//! Integration tests for the pipeline's observability instrumentation:
//! a full [`simulate`] run must emit the expected stage spans, correctly
//! nested and ordered, and recording must never perturb the estimates.
//!
//! All tests here toggle the process-global recorder, so they serialize on
//! one lock (the test binary runs them on concurrent threads otherwise).

use std::sync::Mutex;

use felip::simulate::uniform_dataset;
use felip::{simulate, FelipConfig};
use felip_common::{Attribute, Predicate, Query, Schema};
use felip_obs::SpanRecord;
use proptest::prelude::*;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test must not wedge the others.
    RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::numerical("x", 64),
        Attribute::numerical("y", 64),
        Attribute::categorical("c", 4),
    ])
    .unwrap()
}

fn find<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no `{name}` span recorded"))
}

fn end_ns(s: &SpanRecord) -> u64 {
    s.start_ns + s.dur_ns
}

#[test]
fn simulate_emits_stage_spans_in_order() {
    let _g = lock();
    felip_obs::global().reset();
    felip_obs::enable();

    let data = uniform_dataset(&schema(), 20_000, 1);
    let est = simulate(&data, &FelipConfig::new(1.0), 7).unwrap();
    // A λ=2 query: exercises the response-matrix path, not just a 1-D read.
    let q = Query::new(
        &schema(),
        vec![Predicate::between(0, 0, 31), Predicate::between(1, 0, 31)],
    )
    .unwrap();
    est.answer(&q).unwrap();
    felip_obs::disable();

    let spans = felip_obs::global().finished_spans();
    for name in [
        "simulate",
        "plan",
        "collect",
        "shard",
        "perturb",
        "ingest",
        "estimate",
        "postprocess",
        "answer",
        "response_matrix",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "missing `{name}` span; got {:?}",
            spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }

    // Nesting: plan/collect/estimate under simulate; every shard under
    // collect; every perturb/ingest under a shard; postprocess under
    // estimate (same-thread stack nesting).
    let simulate_span = find(&spans, "simulate");
    let plan = find(&spans, "plan");
    let collect = find(&spans, "collect");
    let estimate = find(&spans, "estimate");
    let postprocess = find(&spans, "postprocess");
    assert_eq!(plan.parent, Some(simulate_span.id));
    assert_eq!(collect.parent, Some(simulate_span.id));
    assert_eq!(estimate.parent, Some(simulate_span.id));
    assert_eq!(postprocess.parent, Some(estimate.id));
    let shard_ids: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "shard")
        .map(|s| {
            assert_eq!(s.parent, Some(collect.id), "shard not under collect");
            s.id
        })
        .collect();
    assert_eq!(shard_ids.len(), 2, "20k users / 16384 per shard = 2 shards");
    for s in spans
        .iter()
        .filter(|s| s.name == "perturb" || s.name == "ingest")
    {
        let p = s.parent.expect("perturb/ingest spans have a parent");
        assert!(shard_ids.contains(&p), "`{}` not under a shard", s.name);
    }

    // Ordering: the pipeline stages do not overlap.
    assert!(end_ns(plan) <= collect.start_ns, "plan before collect");
    assert!(
        end_ns(collect) <= estimate.start_ns,
        "collect before estimate"
    );
    let answer = find(&spans, "answer");
    assert!(
        end_ns(estimate) <= answer.start_ns,
        "estimate before answer"
    );
    // Within each shard, perturbation completes before ingestion starts.
    for &sid in &shard_ids {
        let pert = spans
            .iter()
            .find(|s| s.name == "perturb" && s.parent == Some(sid))
            .expect("each shard perturbs");
        let ing = spans
            .iter()
            .find(|s| s.name == "ingest" && s.parent == Some(sid))
            .expect("each shard ingests");
        assert!(end_ns(pert) <= ing.start_ns, "perturb before ingest");
    }
}

#[test]
fn simulate_records_afo_and_ingest_metrics() {
    let _g = lock();
    felip_obs::global().reset();
    felip_obs::enable();
    let data = uniform_dataset(&schema(), 20_000, 2);
    simulate(&data, &FelipConfig::new(1.0), 9).unwrap();
    felip_obs::disable();

    let rec = felip_obs::global();
    let afo_grr = rec
        .metric("fo.afo.chose_grr")
        .and_then(|m| m.value.as_u64())
        .unwrap_or(0);
    let afo_olh = rec
        .metric("fo.afo.chose_olh")
        .and_then(|m| m.value.as_u64())
        .unwrap_or(0);
    let grids = afo_grr + afo_olh;
    assert!(grids > 0, "AFO decisions recorded per grid");
    let ingested = rec
        .metric("felip.ingest.reports")
        .expect("ingest counter registered")
        .value
        .as_u64()
        .expect("counter is integral");
    assert_eq!(ingested, 20_000, "every report counted exactly once");
    // One plan.grid event per grid, each carrying the chosen oracle.
    let events = rec.finished_events();
    let plan_events = events.iter().filter(|e| e.name == "plan.grid").count();
    assert_eq!(plan_events as u64, grids);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Recording is observation only: enabling the recorder must not change
    /// any estimate bit-for-bit.
    #[test]
    fn enabling_recorder_preserves_estimates(seed in 0u64..256, eps in 0.5f64..3.0) {
        let _g = lock();
        let data = uniform_dataset(&schema(), 5_000, seed ^ 0xD5);
        let cfg = FelipConfig::new(eps);
        let queries: Vec<Query> = vec![
            Query::new(&schema(), vec![Predicate::between(0, 0, 31)]).unwrap(),
            Query::new(
                &schema(),
                vec![Predicate::between(0, 8, 47), Predicate::between(1, 16, 63)],
            )
            .unwrap(),
        ];

        felip_obs::disable();
        let quiet = simulate(&data, &cfg, seed).unwrap();
        felip_obs::global().reset();
        felip_obs::enable();
        let recorded = simulate(&data, &cfg, seed).unwrap();
        felip_obs::disable();

        for q in &queries {
            let a = quiet.answer(q).unwrap();
            let b = recorded.answer(q).unwrap();
            prop_assert_eq!(a.to_bits(), b.to_bits(), "estimate changed: {} vs {}", a, b);
        }
    }
}
