//! Property-based tests for the numeric solvers.

use proptest::prelude::*;

use felip_numeric::{bisect, bisect_auto, coordinate_descent2, minimize_unimodal, Descent2Options};

proptest! {
    /// Bisection finds the root of any monotone increasing line with a sign
    /// change inside the bracket.
    #[test]
    fn bisect_linear(root in -100.0f64..100.0, slope in 0.01f64..10.0) {
        let f = |x: f64| slope * (x - root);
        let r = bisect(root - 50.0, root + 50.0, 1e-10, f).unwrap();
        prop_assert!((r - root).abs() < 1e-7, "found {r}, expected {root}");
    }

    /// Bisection on the grid-sizing derivative shape −a/x³ + b + c·x always
    /// converges to a point with |f(root)| small.
    #[test]
    fn bisect_grid_shape(a in 0.001f64..10.0, b in 1e-7f64..1e-2, c in 1e-8f64..1e-3) {
        let f = |x: f64| -a / (x * x * x) + b + c * x;
        // f(tiny) is hugely negative, f(huge) positive.
        let r = bisect(1e-3, 1e6, 1e-10, f).unwrap();
        prop_assert!(f(r).abs() < 1e-4, "f({r}) = {}", f(r));
    }

    /// bisect_auto clamps to the boundary matching the derivative's sign.
    #[test]
    fn bisect_auto_boundaries(lo in -10.0f64..0.0, hi in 1.0f64..10.0, off in 0.5f64..5.0) {
        // Derivative always positive → objective increasing → argmin at lo.
        prop_assert_eq!(bisect_auto(lo, hi, 1e-9, |_| off), lo);
        prop_assert_eq!(bisect_auto(lo, hi, 1e-9, |_| -off), hi);
    }

    /// Golden-section finds the vertex of any parabola inside the interval.
    #[test]
    fn golden_quadratic(vertex in -50.0f64..50.0, scale in 0.1f64..10.0) {
        let x = minimize_unimodal(-100.0, 100.0, 1e-10, |x| scale * (x - vertex).powi(2));
        prop_assert!((x - vertex).abs() < 1e-6, "found {x}, expected {vertex}");
    }

    /// Golden-section on a monotone function returns the matching endpoint.
    #[test]
    fn golden_monotone(lo in -10.0f64..0.0, hi in 1.0f64..10.0, slope in 0.1f64..5.0) {
        let x = minimize_unimodal(lo, hi, 1e-10, |x| slope * x);
        prop_assert!((x - lo).abs() < 1e-6);
    }

    /// Coordinate descent solves separable quadratics exactly.
    #[test]
    fn descent_separable(ax in -5.0f64..5.0, ay in -5.0f64..5.0) {
        let (x, y) = coordinate_descent2(
            (0.0, 0.0),
            Descent2Options { x_bounds: (-10.0, 10.0), y_bounds: (-10.0, 10.0), tol: 1e-8, max_sweeps: 64 },
            |x, y| (x - ax).powi(2) + (y - ay).powi(2),
        );
        prop_assert!((x - ax).abs() < 1e-4, "{x} vs {ax}");
        prop_assert!((y - ay).abs() < 1e-4, "{y} vs {ay}");
    }

    /// Coordinate descent never escapes its bounds.
    #[test]
    fn descent_respects_bounds(
        ax in -100.0f64..100.0,
        ay in -100.0f64..100.0,
        b in 0.5f64..5.0,
    ) {
        let (x, y) = coordinate_descent2(
            (0.0, 0.0),
            Descent2Options { x_bounds: (-b, b), y_bounds: (-b, b), tol: 1e-8, max_sweeps: 32 },
            |x, y| (x - ax).powi(2) + (y - ay).powi(2),
        );
        prop_assert!((-b..=b).contains(&x));
        prop_assert!((-b..=b).contains(&y));
    }
}
