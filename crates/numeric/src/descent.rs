//! Alternating (coordinate-descent) minimisation for two-variable objectives.

use crate::golden::minimize_unimodal;

/// Options for [`coordinate_descent2`].
#[derive(Debug, Clone, Copy)]
pub struct Descent2Options {
    /// Inclusive bounds for the first variable.
    pub x_bounds: (f64, f64),
    /// Inclusive bounds for the second variable.
    pub y_bounds: (f64, f64),
    /// Per-coordinate solve tolerance.
    pub tol: f64,
    /// Maximum number of full x/y sweeps.
    pub max_sweeps: usize,
}

impl Default for Descent2Options {
    fn default() -> Self {
        Descent2Options {
            x_bounds: (1.0, 1e6),
            y_bounds: (1.0, 1e6),
            tol: 1e-6,
            max_sweeps: 64,
        }
    }
}

/// Minimises `f(x, y)` by alternating exact line searches in `x` and `y`.
///
/// The 2-D grid-size objectives of §5.2 (Eqs. 9, 10, 12) are smooth and
/// strictly unimodal in each coordinate on the feasible box, so alternating
/// golden-section line searches converge to the stationary point the paper
/// obtains by solving the polynomial system directly.
///
/// Returns `(x, y)` after convergence (successive sweeps move both
/// coordinates less than `tol`) or after `max_sweeps`.
pub fn coordinate_descent2(
    start: (f64, f64),
    opts: Descent2Options,
    mut f: impl FnMut(f64, f64) -> f64,
) -> (f64, f64) {
    let clamp = |v: f64, (lo, hi): (f64, f64)| v.clamp(lo, hi);
    let mut x = clamp(start.0, opts.x_bounds);
    let mut y = clamp(start.1, opts.y_bounds);
    for _ in 0..opts.max_sweeps {
        let nx = minimize_unimodal(opts.x_bounds.0, opts.x_bounds.1, opts.tol, |v| f(v, y));
        let ny = minimize_unimodal(opts.y_bounds.0, opts.y_bounds.1, opts.tol, |v| f(nx, v));
        let moved = (nx - x).abs().max((ny - y).abs());
        x = nx;
        y = ny;
        if moved < opts.tol {
            break;
        }
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_quadratic() {
        let (x, y) = coordinate_descent2(
            (0.0, 0.0),
            Descent2Options {
                x_bounds: (-10.0, 10.0),
                y_bounds: (-10.0, 10.0),
                ..Default::default()
            },
            |x, y| (x - 2.0).powi(2) + (y + 3.0).powi(2),
        );
        assert!((x - 2.0).abs() < 1e-4);
        assert!((y + 3.0).abs() < 1e-4);
    }

    #[test]
    fn coupled_quadratic() {
        // f = x² + y² + xy − 3x − 3y; stationary point x = y = 1.
        let (x, y) = coordinate_descent2(
            (5.0, 5.0),
            Descent2Options {
                x_bounds: (-10.0, 10.0),
                y_bounds: (-10.0, 10.0),
                ..Default::default()
            },
            |x, y| x * x + y * y + x * y - 3.0 * x - 3.0 * y,
        );
        assert!((x - 1.0).abs() < 1e-4, "x = {x}");
        assert!((y - 1.0).abs() < 1e-4, "y = {y}");
    }

    #[test]
    fn grid_objective_shape() {
        // The OLH 2-D shape: (a(x·rx + y·ry)/(x·y))² + c·x·y, symmetric in
        // (x·rx, y·ry). With rx = ry the optimum must be symmetric.
        let a = 0.06;
        let c = 1e-6;
        let r = 0.5;
        let (x, y) = coordinate_descent2(
            (10.0, 10.0),
            Descent2Options {
                x_bounds: (1.0, 4096.0),
                y_bounds: (1.0, 4096.0),
                tol: 1e-7,
                ..Default::default()
            },
            |x, y| {
                let bias = a * (x * r + y * r) / (x * y);
                bias * bias + c * (x * r) * (y * r)
            },
        );
        assert!((x - y).abs() < 1e-2, "asymmetric optimum {x} vs {y}");
        assert!(x > 1.0 && x < 4096.0, "boundary optimum {x}");
    }

    #[test]
    fn respects_bounds() {
        let (x, y) = coordinate_descent2(
            (0.0, 0.0),
            Descent2Options {
                x_bounds: (1.0, 2.0),
                y_bounds: (1.0, 2.0),
                ..Default::default()
            },
            |x, y| x + y, // minimum at the lower-left corner
        );
        assert!((x - 1.0).abs() < 1e-4);
        assert!((y - 1.0).abs() < 1e-4);
    }

    #[test]
    fn start_outside_bounds_is_clamped() {
        let (x, _) = coordinate_descent2(
            (100.0, -100.0),
            Descent2Options {
                x_bounds: (0.0, 1.0),
                y_bounds: (0.0, 1.0),
                ..Default::default()
            },
            |x, y| (x - 0.5).powi(2) + (y - 0.5).powi(2),
        );
        assert!((x - 0.5).abs() < 1e-4);
    }
}
