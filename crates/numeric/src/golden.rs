//! Golden-section search for unimodal scalar minimisation.

/// Inverse golden ratio, `(√5 − 1) / 2`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Minimises a unimodal `f` on `[lo, hi]` to within `tol` and returns the
/// argmin.
///
/// Used as a derivative-free fallback by the grid-size optimiser: the error
/// objectives are strictly unimodal in each coordinate, so golden-section is
/// guaranteed to converge even when the derivative is awkward at the
/// boundary (e.g. `l = 1` where the bias term degenerates).
///
/// # Panics
/// Panics when `lo > hi` or `tol <= 0` (debug builds).
pub fn minimize_unimodal(mut lo: f64, mut hi: f64, tol: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
    debug_assert!(lo <= hi && tol > 0.0);
    if hi - lo <= tol {
        return 0.5 * (lo + hi);
    }
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    // Interval shrinks by INV_PHI per step; 300 steps cover any f64 range.
    for _ in 0..300 {
        if hi - lo <= tol {
            break;
        }
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let x = minimize_unimodal(-10.0, 10.0, 1e-10, |x| (x - 3.0) * (x - 3.0));
        assert!((x - 3.0).abs() < 1e-8);
    }

    #[test]
    fn boundary_minimum() {
        // Monotone increasing on the interval → argmin at lo.
        let x = minimize_unimodal(2.0, 5.0, 1e-10, |x| x);
        assert!((x - 2.0).abs() < 1e-8);
        let y = minimize_unimodal(2.0, 5.0, 1e-10, |x| -x);
        assert!((y - 5.0).abs() < 1e-8);
    }

    #[test]
    fn grid_error_shape() {
        // α²/l² + c·l — the 1-D OLH objective. Analytic argmin (2α²/c)^(1/3).
        let alpha2 = 0.49;
        let c = 1e-4;
        let x = minimize_unimodal(1.0, 10_000.0, 1e-8, |l| alpha2 / (l * l) + c * l);
        let expect = (2.0 * alpha2 / c).powf(1.0 / 3.0);
        assert!((x - expect).abs() / expect < 1e-5, "{x} vs {expect}");
    }

    #[test]
    fn degenerate_interval() {
        assert_eq!(minimize_unimodal(4.0, 4.0, 1e-9, |x| x), 4.0);
    }
}
