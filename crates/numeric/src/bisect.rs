//! Bracketed bisection root finding.

/// Finds a root of `f` inside `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (an endpoint that is
/// exactly zero counts as a root). Converges unconditionally for continuous
/// `f`; `tol` bounds the width of the final bracket.
///
/// Returns `None` when the bracket is invalid or the endpoint signs agree.
pub fn bisect(mut lo: f64, mut hi: f64, tol: f64, mut f: impl FnMut(f64) -> f64) -> Option<f64> {
    // `tol > 0.0` is false for NaN too, which must be rejected — hence the
    // negated form instead of `tol <= 0.0`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(lo.is_finite() && hi.is_finite()) || lo > hi || !(tol > 0.0) {
        return None;
    }
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.is_nan() || fhi.is_nan() || flo.signum() == fhi.signum() {
        return None;
    }
    // 200 halvings reduce any f64 bracket below any positive tolerance.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < tol {
            return Some(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Bisection with automatic bracket handling for the monotone-derivative
/// shapes that arise in grid-size optimisation.
///
/// The grid-size objectives are strictly convex in each coordinate on
/// `(0, ∞)`: their derivative goes from −∞ (bias term dominates) to positive
/// (noise term dominates). Three cases:
///
/// * sign change inside `[lo, hi]` → interior root via [`bisect`];
/// * derivative ≥ 0 everywhere → the objective is increasing, minimum at `lo`;
/// * derivative ≤ 0 everywhere → decreasing, minimum at `hi`.
pub fn bisect_auto(lo: f64, hi: f64, tol: f64, mut df: impl FnMut(f64) -> f64) -> f64 {
    debug_assert!(lo <= hi);
    let dlo = df(lo);
    let dhi = df(hi);
    if dlo >= 0.0 {
        return lo;
    }
    if dhi <= 0.0 {
        return hi;
    }
    bisect(lo, hi, tol, df).unwrap_or(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_root() {
        // x² − 2 on [0, 2] → √2.
        let r = bisect(0.0, 2.0, 1e-12, |x| x * x - 2.0).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn finds_cubic_root() {
        // The 1-D GRR stationarity shape: -a/x³ + b + c·x.
        let f = |x: f64| -2.0 / (x * x * x) + 0.001 + 0.0005 * x;
        let r = bisect(0.1, 1000.0, 1e-10, f).unwrap();
        assert!(f(r).abs() < 1e-6);
    }

    #[test]
    fn endpoint_roots() {
        assert_eq!(bisect(0.0, 1.0, 1e-9, |x| x), Some(0.0));
        assert_eq!(bisect(-1.0, 0.0, 1e-9, |x| x), Some(0.0));
    }

    #[test]
    fn rejects_same_sign_bracket() {
        assert!(bisect(1.0, 2.0, 1e-9, |x| x).is_none());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(bisect(2.0, 1.0, 1e-9, |x| x).is_none());
        assert!(bisect(f64::NAN, 1.0, 1e-9, |x| x).is_none());
        assert!(bisect(0.0, 1.0, 0.0, |x| x - 0.5).is_none());
        assert!(bisect(0.0, 1.0, 1e-9, |_| f64::NAN).is_none());
    }

    #[test]
    fn auto_clamps_to_endpoints() {
        // Strictly increasing derivative that is already positive at lo:
        // minimum sits at lo.
        assert_eq!(bisect_auto(1.0, 10.0, 1e-9, |x| x), 1.0);
        // Derivative negative everywhere: minimum at hi.
        assert_eq!(bisect_auto(1.0, 10.0, 1e-9, |_| -1.0), 10.0);
    }

    #[test]
    fn auto_interior() {
        let r = bisect_auto(0.1, 100.0, 1e-10, |x| x - 7.5);
        assert!((r - 7.5).abs() < 1e-8);
    }

    #[test]
    fn tolerance_respected() {
        let coarse = bisect(0.0, 4.0, 1e-2, |x| x - std::f64::consts::PI).unwrap();
        assert!((coarse - std::f64::consts::PI).abs() < 1e-2);
    }
}
