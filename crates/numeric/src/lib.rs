#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Numeric root-finding and small-system solvers.
//!
//! FELIP's grid-size optimisation (§5.2 of the paper) minimises per-grid
//! error expressions of the form *non-uniformity² + noise·sampling*. The
//! stationarity conditions are cubic (1-D GRR) or small polynomial systems
//! (2-D grids), which the paper solves "numerically … using the bisection
//! method". This crate provides exactly that substrate:
//!
//! * [`bisect()`] — bracketed scalar root finding;
//! * [`minimize_unimodal`] — golden-section minimisation used as a fallback
//!   when a derivative has no sign change inside the feasible interval;
//! * [`coordinate_descent2`] — alternating minimisation for the two-variable
//!   grid-size systems.
//!
//! The crate is dependency-free and fully deterministic.

pub mod bisect;
pub mod descent;
pub mod golden;

pub use bisect::{bisect, bisect_auto};
pub use descent::{coordinate_descent2, Descent2Options};
pub use golden::minimize_unimodal;
