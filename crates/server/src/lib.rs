//! `felip-server`: the streaming report-ingestion service (DESIGN.md §12).
//!
//! Turns the offline FELIP pipeline into a long-running network service:
//! clients perturb locally and stream [`felip::client::UserReport`] batches
//! over a checksummed binary [`wire`] protocol; a fixed pool of ingest
//! workers folds them into shard [`felip::aggregator::Aggregator`]s behind
//! bounded, backpressured [`queue`]s; and [`snapshot`]s make the
//! aggregator's exact `u64` state durable across restarts — a killed and
//! resumed server produces estimates bit-identical to one that never
//! stopped.
//!
//! The crate follows the workspace's vendored-only policy: it depends on
//! nothing outside the workspace (`std::net` sockets, `std::thread`
//! scoped workers, hand-rolled CRC-32).

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod signal;
pub mod snapshot;
pub mod wire;

pub use client::{BatchReply, Client};
pub use server::{Server, ServerConfig, ServerError, ServerRun, ServerStats};
pub use snapshot::Snapshot;
pub use wire::{Frame, FrameKind, WireError};
