//! `felip-server`: the streaming report-ingestion service (DESIGN.md §12).
//!
//! Turns the offline FELIP pipeline into a long-running network service:
//! clients perturb locally and stream [`felip::client::UserReport`] batches
//! over a checksummed binary [`wire`] protocol; a fixed pool of ingest
//! workers folds them into shard [`felip::aggregator::Aggregator`]s behind
//! bounded, backpressured [`queue`]s; and [`snapshot`]s make the
//! aggregator's exact `u64` state durable across restarts — a killed and
//! resumed server produces estimates bit-identical to one that never
//! stopped.
//!
//! The server's protocol logic is transport-agnostic: connections speak
//! through the [`transport::Transport`] trait and all per-connection
//! decisions live in the `session` state machine, so the deterministic
//! [`simharness`] can drive the *same* code over an in-memory transport
//! on a virtual clock, injecting seeded [`fault`]s (drops, corruption,
//! resets, torn snapshot writes) and asserting the
//! exactly-once-or-rejected invariant for every seed.
//!
//! The crate follows the workspace's vendored-only policy: it depends on
//! nothing outside the workspace (`std::net` sockets, `std::thread`
//! scoped workers, hand-rolled CRC-32).

#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod loadgen;
#[cfg(all(test, feature = "model"))]
mod model_tests;
mod query;
pub mod queue;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod reactor;
pub mod server;
mod session;
pub mod signal;
pub mod simharness;
pub mod snapshot;
pub mod stat;
pub mod transport;
pub mod wire;

pub use client::{BatchReply, Client, PipelinedClient, PumpStats, RetryPolicy};
pub use fault::{FaultConfig, FaultKind, FaultSchedule};
pub use server::{CutHook, CutState, Server, ServerConfig, ServerError, ServerRun, ServerStats};
pub use simharness::{SimConfig, SimReport, SimTransport};
pub use snapshot::Snapshot;
pub use transport::{RecvOutcome, TcpTransport, Transport};
pub use wire::{Frame, FrameKind, QueryAnswer, QueryMode, QueryRequest, WireError};
