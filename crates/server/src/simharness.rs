//! Deterministic fault-injection simulation of the full ingest protocol.
//!
//! The harness runs the real server-side session state machine, the real
//! [`BoundedQueue`] backpressure, the real [`Snapshot`] durability path,
//! and a faithful model of the retrying client — all single-threaded on a
//! **virtual clock**, with every frame routed through a seeded
//! [`FaultSchedule`]. Same seed, same run: the event order is a pure
//! function of the seed, which the trace hash in [`SimReport`] asserts.
//!
//! Per seed the harness checks the *exactly-once-or-rejected* invariant:
//!
//! 1. the final aggregator equals, bit for bit, an offline collection of
//!    exactly the batches the server acked — nothing lost, nothing
//!    double-counted, no matter which faults fired;
//! 2. every batch a client believes was delivered is in the server's
//!    accepted set (client-acked ⊆ server-acked);
//! 3. every batch was either server-accepted or its client exhausted the
//!    retry budget (a typed, observable failure — never silence).
//!
//! A failing seed reproduces from the CLI: `perf_smoke --chaos --seed N`.

use felip_sync::Arc;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use felip::aggregator::{Aggregator, OracleSet};
use felip::client::UserReport;
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip::query::QueryEngine;
use felip_common::hash::mix64;
use felip_common::{Attribute, Predicate, Query, Result, Schema};

use crate::client::RetryPolicy;
use crate::fault::{FaultConfig, FaultKind, FaultSchedule};
use crate::loadgen;
use crate::queue::{BoundedQueue, PopResult};
use crate::server::AtomicStats;
use crate::session::{AcceptedBatch, Session, SessionCtx};
use crate::snapshot::Snapshot;
use crate::transport::{RecvOutcome, Transport};
use crate::wire::{decode_ack, encode_batch, encode_hello, Frame, FrameKind, WireError};

/// One millisecond of virtual time, in nanoseconds.
const MS: u64 = 1_000_000;
/// Base one-way frame latency.
const LATENCY_NS: u64 = MS;
/// Client reply deadline before it declares the connection dead.
const CLIENT_TIMEOUT_NS: u64 = 50 * MS;
/// How late a `Stall` fault delivers a frame (past the client deadline).
const STALL_NS: u64 = 200 * MS;
/// Worker drain cadence.
const DRAIN_TICK_NS: u64 = 2 * MS;
/// Query client cadence: sparse enough that ingest moves between asks, so
/// the epoch cache sees both warm and invalidated refreshes.
const QUERY_TICK_NS: u64 = 15 * MS;
/// Hard ceiling on processed events — a stuck run is a violation, not a
/// hang.
const MAX_EVENTS: u64 = 2_000_000;

/// Capacity of the sim's deterministic flight ring — small enough that a
/// chaos run wraps it (a standard chaos seed records ~100–300 trace
/// events), so `verify`'s reconstruction check exercises the overwrite
/// path, not just the fill path.
const SIM_FLIGHT_CAPACITY: usize = 64;

/// The in-memory transport the sim serves connections over: frames are
/// delivered as encoded bytes (so in-flight corruption is byte-level, like
/// the real wire) and decoded on receipt, exactly where the TCP transport
/// decodes off the socket.
#[derive(Default)]
pub struct SimTransport {
    inbox: VecDeque<Result<Frame, WireError>>,
    outbox: Vec<Frame>,
    peer_closed: bool,
}

impl SimTransport {
    /// An empty, open transport.
    pub fn new() -> SimTransport {
        SimTransport::default()
    }

    /// Delivers one frame's (possibly mangled) bytes.
    pub fn deliver(&mut self, bytes: &[u8]) {
        self.inbox.push_back(Frame::decode(bytes));
    }

    /// Marks the peer as gone: once the inbox drains, `recv` reports EOF.
    pub fn close(&mut self) {
        self.peer_closed = true;
    }

    /// Takes every frame the session queued for sending.
    pub fn take_outbox(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.outbox)
    }
}

impl Transport for SimTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        self.outbox.push(frame.clone());
        Ok(())
    }

    fn recv(&mut self) -> RecvOutcome {
        match self.inbox.pop_front() {
            Some(Ok(frame)) => RecvOutcome::Frame(frame),
            Some(Err(e)) => RecvOutcome::Err(e),
            None if self.peer_closed => RecvOutcome::Eof,
            None => RecvOutcome::NoData,
        }
    }
}

/// Everything that parameterises one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed: drives the fault schedule, all latency jitter, and the
    /// synthetic report stream.
    pub seed: u64,
    /// Total simulated users (split evenly across clients).
    pub users: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Reports per batch.
    pub batch_size: usize,
    /// Fault probabilities.
    pub faults: FaultConfig,
    /// Server ingest queue capacity (small values force RETRYs).
    pub queue_capacity: usize,
    /// Batches the worker drains per tick (small values sustain pressure).
    pub drain_per_tick: usize,
    /// Virtual time of a graceful kill + snapshot + resume, if any.
    pub kill_at_ns: Option<u64>,
    /// Client retry budget per batch (and per reconnect storm).
    pub max_attempts: u32,
}

impl SimConfig {
    /// The standard chaos mix: every fault kind armed, a tight queue, and
    /// one mid-run kill+resume. This is what the CI sweep runs per seed.
    pub fn chaos(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            users: 240,
            clients: 3,
            batch_size: 20,
            faults: FaultConfig::ALL,
            queue_capacity: 2,
            drain_per_tick: 1,
            kill_at_ns: Some(120 * MS),
            max_attempts: 64,
        }
    }

    /// A fault-free baseline: the sim must then deliver every user exactly
    /// once with no faults burned.
    pub fn lossless(seed: u64) -> SimConfig {
        SimConfig {
            faults: FaultConfig::NONE,
            kill_at_ns: None,
            ..SimConfig::chaos(seed)
        }
    }
}

/// What one simulated run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The seed that reproduces this run.
    pub seed: u64,
    /// Events processed.
    pub events: u64,
    /// Order-sensitive digest of the full event trace; equal across runs
    /// of the same seed, which is the determinism assertion.
    pub trace_hash: u64,
    /// [`Aggregator::counts_digest`] of the final server state.
    pub counts_digest: u64,
    /// Reports in the final aggregator.
    pub reports_ingested: usize,
    /// Batches the server accepted (acked and counted exactly once).
    pub server_acked_batches: usize,
    /// Duplicate batches re-acked without re-ingestion.
    pub duplicates: u64,
    /// Frame faults injected by the schedule.
    pub faults_injected: u64,
    /// Snapshot writes that were torn, quarantined, and retried.
    pub snapshots_quarantined: u64,
    /// Kill + snapshot + resume cycles executed.
    pub kills: u32,
    /// Clients that exhausted their retry budget (the "or-rejected" arm
    /// of the invariant).
    pub gave_up: usize,
    /// Queries the sim's mixed query client answered (each checked
    /// bit-identical to the offline batch estimate of its cut).
    pub queries_answered: u64,
    /// Queries served straight from the warm epoch cache (no re-estimate).
    pub query_warm_hits: u64,
    /// Invariant violations; empty means the seed passed.
    pub violations: Vec<String>,
    /// Replayable fault-schedule token (`seed=…[;suppress=…]`); pass it to
    /// [`replay_token`] to re-run this exact run, faults and all.
    pub fault_token: String,
    /// `(draw index, kind)` of every frame fault that fired, in order —
    /// what [`minimize_failing_seed`] tries to switch off one by one.
    pub faults_fired: Vec<(u64, FaultKind)>,
    /// Events recorded into the sim's deterministic flight ring.
    pub flight_total: u64,
    /// Order-sensitive digest of the flight ring's final dump; equal
    /// across runs of the same seed (the postmortem-determinism
    /// assertion).
    pub flight_digest: u64,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// A report for a run that could not even be set up (plan construction
    /// failed): every counter zero, one violation naming the cause.
    fn setup_failure(seed: u64, why: String) -> SimReport {
        SimReport {
            seed,
            events: 0,
            trace_hash: 0,
            counts_digest: 0,
            reports_ingested: 0,
            server_acked_batches: 0,
            duplicates: 0,
            faults_injected: 0,
            snapshots_quarantined: 0,
            kills: 0,
            gave_up: 0,
            queries_answered: 0,
            query_warm_hits: 0,
            violations: vec![why],
            fault_token: format!("seed={seed}"),
            faults_fired: Vec::new(),
            flight_total: 0,
            flight_digest: 0,
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Client `c` takes its next action (connect or send).
    ClientWake(usize),
    /// Encoded frame bytes arriving at the server on `conn`.
    ToServer { conn: u64, bytes: Vec<u8> },
    /// Encoded frame bytes arriving at client `c` on `conn`.
    ToClient { c: usize, conn: u64, bytes: Vec<u8> },
    /// Client `c`'s reply deadline (ignored unless `token` is current).
    ClientTimeout { c: usize, token: u64 },
    /// Worker tick: drain up to `drain_per_tick` batches.
    Drain,
    /// Query tick: the mixed query client asks the incremental engine.
    Query,
    /// Graceful kill: drain, snapshot (possibly torn), restore.
    Kill,
}

struct Scheduled {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // schedule sequence as a deterministic tie-break.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    Disconnected,
    AwaitHelloAck,
    Idle,
    AwaitAck,
}

struct SimClient {
    id: u64,
    conn: u64,
    user_range: std::ops::Range<usize>,
    total_batches: usize,
    /// Count of batches acked so far; the next batch id is this + 1.
    next_batch: usize,
    state: CState,
    attempts: u32,
    token: u64,
    gave_up: bool,
    done: bool,
    /// Highest batch id this client saw acked (directly or via Hello).
    acked: u64,
}

struct Sim {
    cfg: SimConfig,
    plan: Arc<CollectionPlan>,
    oracles: Arc<OracleSet>,
    plan_hash: u64,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: u64,
    schedule: FaultSchedule,
    policy: RetryPolicy,
    clients: Vec<SimClient>,
    /// Live connections: conn id → owning client index. A connection that
    /// was reset (fault or client teardown) is removed entirely.
    conns: HashMap<u64, usize>,
    /// Connections the server has closed (error/protocol close): the
    /// server drops further input, but replies already in flight still
    /// reach the client.
    server_closed: HashSet<u64>,
    next_conn: u64,
    /// Server-side per-connection transports and sessions.
    server_conns: HashMap<u64, (SimTransport, Session)>,
    ctx: SessionCtx,
    queue: BoundedQueue<Vec<UserReport>>,
    stats: AtomicStats,
    agg: Aggregator,
    accepted: Vec<AcceptedBatch>,
    trace_hash: u64,
    events: u64,
    quarantined: u64,
    kills: u32,
    /// The sim's mixed query client: the real incremental engine, queried
    /// at deterministic virtual times against the live aggregator.
    query_engine: QueryEngine,
    /// The fixed λ-D probe every query tick asks.
    probe: Query,
    queries_answered: u64,
    query_warm_hits: u64,
    /// Armed by kill+resume: the next query must rebuild from the restored
    /// counts, never serve the pre-restore cached grid.
    expect_cold_query: bool,
    violations: Vec<String>,
    /// Sim-local deterministic flight ring: every [`Sim::trace`] call is
    /// teed into it, mirroring how the production server tees protocol
    /// events into the global ring.
    flight: felip_obs::flight::FlightRecorder,
    /// Unbounded shadow of every event fed to `flight`, in order — the
    /// ground truth `verify` reconstructs the ring window against.
    flight_shadow: Vec<felip_obs::flight::FlightEvent>,
}

/// Runs one simulated ingestion under `cfg` and checks every invariant.
pub fn run_sim(cfg: &SimConfig) -> SimReport {
    run_sim_suppressed(cfg, &HashSet::new())
}

/// [`run_sim`], but with the frame faults at the given draw indices
/// switched off — the replay/minimization entry point. The fault RNG
/// stream is unshifted, so every non-suppressed decision is identical to
/// the plain run of the same seed.
pub fn run_sim_suppressed(cfg: &SimConfig, suppressed: &HashSet<u64>) -> SimReport {
    run_sim_inner(cfg, suppressed.clone())
}

/// Re-runs the exact run a [`SimReport::fault_token`] came from.
pub fn replay_token(cfg: &SimConfig, token: &str) -> Result<SimReport, String> {
    let (seed, suppressed) = FaultSchedule::parse_token(token)?;
    let cfg = SimConfig {
        seed,
        ..cfg.clone()
    };
    Ok(run_sim_inner(&cfg, suppressed))
}

/// A failing chaos seed, shrunk: the smallest fault subset (found by
/// greedily suppressing fired faults that are not needed for the failure)
/// that still violates an invariant, plus the token that replays it.
#[derive(Debug, Clone)]
pub struct MinimizedFailure {
    /// Replay token of the minimized failing run (`seed=…;suppress=…`).
    pub token: String,
    /// Faults still firing in the minimized run.
    pub faults: Vec<(u64, FaultKind)>,
    /// The minimized run's report (still failing).
    pub report: SimReport,
}

/// Shrinks a failing seed to a minimal fault schedule: repeatedly tries
/// suppressing each fired fault and keeps every suppression that preserves
/// the failure. Returns `None` when `cfg`'s run passes (nothing to shrink).
///
/// The resulting [`MinimizedFailure::token`] pins the exact run — print it
/// in the test failure, replay it with [`replay_token`].
pub fn minimize_failing_seed(cfg: &SimConfig) -> Option<MinimizedFailure> {
    let mut failing = run_sim(cfg);
    if failing.ok() {
        return None;
    }
    let mut suppressed: HashSet<u64> = HashSet::new();
    loop {
        let mut progressed = false;
        for (idx, _) in failing.faults_fired.clone() {
            if suppressed.contains(&idx) {
                continue;
            }
            let mut trial = suppressed.clone();
            trial.insert(idx);
            let r = run_sim_suppressed(cfg, &trial);
            if !r.ok() {
                suppressed = trial;
                failing = r;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    Some(MinimizedFailure {
        token: failing.fault_token.clone(),
        faults: failing.faults_fired.clone(),
        report: failing,
    })
}

fn run_sim_inner(cfg: &SimConfig, suppressed: HashSet<u64>) -> SimReport {
    let built = Schema::new(vec![
        Attribute::numerical("a", 32),
        Attribute::categorical("c", 4),
    ])
    .and_then(|schema| CollectionPlan::build(&schema, cfg.users, &FelipConfig::new(1.0), 5));
    let plan = match built {
        Ok(p) => Arc::new(p),
        Err(e) => return SimReport::setup_failure(cfg.seed, format!("sim plan setup failed: {e}")),
    };
    let oracles = Arc::new(OracleSet::build(&plan));
    let plan_hash = plan.schema_hash();
    let probe = match Query::new(
        plan.schema(),
        vec![
            Predicate::between(0, 4, 19),
            Predicate::in_set(1, vec![1, 3]),
        ],
    ) {
        Ok(q) => q,
        Err(e) => {
            return SimReport::setup_failure(cfg.seed, format!("sim probe setup failed: {e}"))
        }
    };

    let per_client = cfg.users.div_ceil(cfg.clients.max(1));
    let clients: Vec<SimClient> = (0..cfg.clients)
        .map(|c| {
            let start = (c * per_client).min(cfg.users);
            let end = ((c + 1) * per_client).min(cfg.users);
            let n = end - start;
            SimClient {
                id: c as u64 + 1,
                conn: 0,
                user_range: start..end,
                total_batches: n.div_ceil(cfg.batch_size.max(1)),
                next_batch: 0,
                state: CState::Disconnected,
                attempts: 0,
                token: 0,
                gave_up: false,
                done: n == 0,
                acked: 0,
            }
        })
        .collect();

    let sim = Sim {
        plan: Arc::clone(&plan),
        oracles: Arc::clone(&oracles),
        plan_hash,
        heap: BinaryHeap::new(),
        seq: 0,
        now: 0,
        schedule: FaultSchedule::with_suppressed(cfg.seed, cfg.faults, suppressed),
        policy: RetryPolicy {
            max_attempts: cfg.max_attempts,
            jitter_seed: cfg.seed,
            ..RetryPolicy::default()
        },
        clients,
        conns: HashMap::new(),
        server_closed: HashSet::new(),
        next_conn: 1,
        server_conns: HashMap::new(),
        ctx: SessionCtx::new(Arc::clone(&plan), Arc::clone(&oracles), Vec::new()),
        queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
        stats: AtomicStats::default(),
        agg: Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles)),
        accepted: Vec::new(),
        trace_hash: 0x5eed_cafe_f00d_0001,
        events: 0,
        quarantined: 0,
        kills: 0,
        query_engine: QueryEngine::new(Arc::clone(&plan), Arc::clone(&oracles)),
        probe,
        queries_answered: 0,
        query_warm_hits: 0,
        expect_cold_query: false,
        violations: Vec::new(),
        flight: felip_obs::flight::FlightRecorder::deterministic(SIM_FLIGHT_CAPACITY),
        flight_shadow: Vec::new(),
        cfg: cfg.clone(),
    };
    sim.run()
}

impl Sim {
    fn schedule_ev(&mut self, at: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    fn trace(&mut self, tag: u64, a: u64, b: u64) {
        self.trace_hash = mix64(self.trace_hash ^ self.now);
        self.trace_hash = mix64(self.trace_hash ^ tag);
        self.trace_hash = mix64(self.trace_hash ^ a);
        self.trace_hash = mix64(self.trace_hash ^ b);
        // Tee into the deterministic flight ring (and the unbounded
        // shadow that `verify` checks the ring's dump against).
        let code = tag as u16;
        self.flight
            .record(felip_obs::flight::KIND_FRAME, code, a, b);
        self.flight_shadow.push(felip_obs::flight::FlightEvent {
            seq: self.flight_shadow.len() as u64,
            t_ns: 0,
            kind: felip_obs::flight::KIND_FRAME,
            code,
            a,
            b,
        });
    }

    fn latency(&mut self) -> u64 {
        LATENCY_NS + self.schedule.draw_below(MS / 10)
    }

    /// Routes one encoded frame through the fault pipeline. `to_server`
    /// picks the direction; `c` is the destination client otherwise.
    fn route(&mut self, conn: u64, frame: &Frame, to_server: bool, c: usize) {
        let mut bytes = frame.encode();
        let fault = self.schedule.next_frame_fault();
        self.trace(1, conn, fault.map_or(0, |k| k as u64 + 1));
        let lat = self.latency();
        let mut deliveries: Vec<(u64, Vec<u8>)> = Vec::new();
        match fault {
            None => deliveries.push((lat, bytes)),
            Some(FaultKind::Drop) => {}
            Some(FaultKind::Truncate) => {
                let t = self.schedule.truncate_frame(&bytes);
                deliveries.push((lat, t));
            }
            Some(FaultKind::Duplicate) => {
                deliveries.push((lat, bytes.clone()));
                let second = lat + self.latency();
                deliveries.push((second, bytes));
            }
            Some(FaultKind::Reorder) => deliveries.push((3 * lat, bytes)),
            Some(FaultKind::Corrupt) => {
                self.schedule.corrupt_frame(&mut bytes);
                deliveries.push((lat, bytes));
            }
            Some(FaultKind::Reset) => {
                self.reset_conn(conn);
                return;
            }
            Some(FaultKind::Stall) => deliveries.push((STALL_NS + lat, bytes)),
        }
        for (delay, payload) in deliveries {
            let ev = if to_server {
                Ev::ToServer {
                    conn,
                    bytes: payload,
                }
            } else {
                Ev::ToClient {
                    c,
                    conn,
                    bytes: payload,
                }
            };
            let at = self.now + delay;
            self.schedule_ev(at, ev);
        }
    }

    /// Hard reset (RST / fault): both directions dead immediately.
    fn reset_conn(&mut self, conn: u64) {
        if self.conns.remove(&conn).is_some() {
            self.trace(2, conn, 0);
        }
        self.server_conns.remove(&conn);
        self.server_closed.insert(conn);
    }

    /// Server-side protocol close: the server stops reading, but the error
    /// reply already in flight still reaches the client (like a FIN after
    /// the last write).
    fn server_close(&mut self, conn: u64) {
        self.server_conns.remove(&conn);
        self.server_closed.insert(conn);
        self.trace(2, conn, 1);
    }

    fn batch_reports(&self, c: usize, batch_idx: usize) -> Result<Vec<UserReport>> {
        let cl = &self.clients[c];
        let start = cl.user_range.start + batch_idx * self.cfg.batch_size;
        let end = (start + self.cfg.batch_size).min(cl.user_range.end);
        (start..end)
            .map(|u| loadgen::user_report(&self.plan, u, self.cfg.seed))
            .collect()
    }

    /// The client declares its connection dead (timeout, garbled reply,
    /// server error): tear it down and reconnect after backoff — unless
    /// the attempt budget is spent, in which case it gives up, observably.
    fn client_fail(&mut self, c: usize) {
        let conn = self.clients[c].conn;
        if conn != 0 {
            self.reset_conn(conn);
        }
        self.clients[c].conn = 0;
        self.clients[c].state = CState::Disconnected;
        self.clients[c].token += 1;
        let attempts = self.clients[c].attempts;
        if attempts >= self.cfg.max_attempts {
            self.clients[c].gave_up = true;
            self.trace(3, c as u64, attempts as u64);
            return;
        }
        let delay = self.policy.backoff(attempts.max(1)).as_nanos() as u64;
        let at = self.now + delay.max(MS);
        self.schedule_ev(at, Ev::ClientWake(c));
    }

    fn arm_timeout(&mut self, c: usize) {
        let token = self.clients[c].token;
        self.schedule_ev(self.now + CLIENT_TIMEOUT_NS, Ev::ClientTimeout { c, token });
    }

    fn on_client_wake(&mut self, c: usize) {
        if self.clients[c].done || self.clients[c].gave_up {
            return;
        }
        match self.clients[c].state {
            CState::Disconnected => {
                self.clients[c].attempts += 1;
                if self.clients[c].attempts > self.cfg.max_attempts {
                    self.clients[c].gave_up = true;
                    self.trace(3, c as u64, self.cfg.max_attempts as u64);
                    return;
                }
                let conn = self.next_conn;
                self.next_conn += 1;
                self.conns.insert(conn, c);
                self.clients[c].conn = conn;
                self.clients[c].state = CState::AwaitHelloAck;
                self.clients[c].token += 1;
                let hello = Frame {
                    kind: FrameKind::Hello,
                    plan_hash: self.plan_hash,
                    payload: encode_hello(self.clients[c].id),
                };
                self.trace(4, c as u64, conn);
                self.route(conn, &hello, true, c);
                self.arm_timeout(c);
            }
            CState::Idle => {
                if self.clients[c].next_batch >= self.clients[c].total_batches {
                    self.clients[c].done = true;
                    return;
                }
                self.clients[c].attempts += 1;
                if self.clients[c].attempts > self.cfg.max_attempts {
                    self.clients[c].gave_up = true;
                    self.trace(3, c as u64, self.cfg.max_attempts as u64);
                    return;
                }
                let idx = self.clients[c].next_batch;
                let batch_id = idx as u64 + 1;
                // Report generation and encoding are deterministic functions
                // of the plan; a failure is a harness defect, recorded as a
                // violation so the seed fails loudly instead of panicking.
                let payload = match self
                    .batch_reports(c, idx)
                    .map_err(|e| e.to_string())
                    .and_then(|r| encode_batch(batch_id, &r).map_err(|e| e.to_string()))
                {
                    Ok(p) => p,
                    Err(e) => {
                        self.violations
                            .push(format!("client {c}: building batch {batch_id} failed: {e}"));
                        self.clients[c].gave_up = true;
                        return;
                    }
                };
                let frame = Frame {
                    kind: FrameKind::ReportBatch,
                    plan_hash: self.plan_hash,
                    payload,
                };
                let conn = self.clients[c].conn;
                self.clients[c].state = CState::AwaitAck;
                self.clients[c].token += 1;
                self.trace(5, c as u64, batch_id);
                self.route(conn, &frame, true, c);
                self.arm_timeout(c);
            }
            // Spurious wake while a reply is pending: the timeout or the
            // reply will move the state machine.
            CState::AwaitHelloAck | CState::AwaitAck => {}
        }
    }

    fn on_to_server(&mut self, conn: u64, bytes: Vec<u8>) {
        if self.server_closed.contains(&conn) {
            self.trace(6, conn, 0);
            return;
        }
        let Some(&owner) = self.conns.get(&conn) else {
            self.trace(6, conn, 0); // late frame to a dead conn
            return;
        };
        self.trace(6, conn, bytes.len() as u64);
        let (transport, session) = self
            .server_conns
            .entry(conn)
            .or_insert_with(|| (SimTransport::new(), Session::new()));
        transport.deliver(&bytes);
        let mut close = false;
        loop {
            match transport.recv() {
                RecvOutcome::Frame(frame) => {
                    let outcome = session.on_frame(frame, &self.ctx, &self.queue, &self.stats);
                    // SimTransport::send is an infallible outbox push.
                    let _ = transport.send(&outcome.reply);
                    if let Some(batch) = outcome.accepted {
                        self.accepted.push(batch);
                    }
                    if outcome.close.is_some() {
                        close = true;
                        break;
                    }
                }
                RecvOutcome::Err(_) => {
                    // Garbled bytes (corruption/truncation in flight): the
                    // server replies with an error and closes, exactly like
                    // the TCP path.
                    let err = Frame::error(self.plan_hash, "garbled frame");
                    let _ = transport.send(&err);
                    self.stats.bump_rejected();
                    close = true;
                    break;
                }
                RecvOutcome::NoData
                | RecvOutcome::Eof
                | RecvOutcome::Idle
                | RecvOutcome::Shutdown => break,
            }
        }
        let replies = self
            .server_conns
            .get_mut(&conn)
            .map(|(t, _)| t.take_outbox())
            .unwrap_or_default();
        for reply in replies {
            self.route(conn, &reply, false, owner);
        }
        if close {
            self.server_close(conn);
        }
    }

    fn on_to_client(&mut self, c: usize, conn: u64, bytes: Vec<u8>) {
        if self.clients[c].conn != conn || !self.conns.contains_key(&conn) {
            self.trace(7, conn, 0); // stale delivery to a dead conn
            return;
        }
        self.trace(7, conn, bytes.len() as u64);
        let frame = match Frame::decode(&bytes) {
            Ok(f) => f,
            Err(_) => {
                // Reply corrupted in flight: treat the conn as broken.
                self.client_fail(c);
                return;
            }
        };
        match (self.clients[c].state, frame.kind) {
            (CState::AwaitHelloAck, FrameKind::Ack) => {
                let Ok((last, _)) = decode_ack(&frame.payload) else {
                    self.client_fail(c);
                    return;
                };
                // Resync: everything up to `last` is already accepted
                // server-side; never re-send it.
                let total = self.clients[c].total_batches;
                let cl = &mut self.clients[c];
                cl.next_batch = (last as usize).min(total);
                cl.acked = cl.acked.max(last);
                cl.state = CState::Idle;
                cl.attempts = 0;
                cl.token += 1;
                self.trace(8, c as u64, last);
                self.schedule_ev(self.now + MS / 10, Ev::ClientWake(c));
            }
            (CState::AwaitAck, FrameKind::Ack) => {
                let Ok((id, _)) = decode_ack(&frame.payload) else {
                    self.client_fail(c);
                    return;
                };
                let expect = self.clients[c].next_batch as u64 + 1;
                if id < expect {
                    return; // stale ack from a duplicated earlier frame
                }
                let cl = &mut self.clients[c];
                cl.acked = cl.acked.max(id);
                cl.next_batch += 1;
                cl.attempts = 0;
                cl.state = CState::Idle;
                cl.token += 1;
                self.trace(9, c as u64, id);
                self.schedule_ev(self.now + MS / 10, Ev::ClientWake(c));
            }
            (CState::AwaitAck, FrameKind::Retry) => {
                // Backpressure: back off and resend the same batch.
                let cl = &mut self.clients[c];
                cl.state = CState::Idle;
                cl.token += 1;
                let attempts = cl.attempts;
                self.trace(10, c as u64, attempts as u64);
                let delay = self.policy.backoff(attempts.max(1)).as_nanos() as u64;
                self.schedule_ev(self.now + delay.max(MS), Ev::ClientWake(c));
            }
            (_, FrameKind::Error) => {
                // The server rejected something (usually a frame garbled
                // in flight) and closed; reconnect and resync.
                self.trace(11, c as u64, 0);
                self.client_fail(c);
            }
            _ => {
                // A reply that makes no sense in this state (e.g. an ack
                // duplicated into Idle): ignore.
            }
        }
    }

    fn on_client_timeout(&mut self, c: usize, token: u64) {
        if self.clients[c].token != token {
            return; // the awaited reply arrived; deadline is stale
        }
        if matches!(
            self.clients[c].state,
            CState::AwaitHelloAck | CState::AwaitAck
        ) {
            self.trace(12, c as u64, self.clients[c].attempts as u64);
            self.client_fail(c);
        }
    }

    fn drain(&mut self, limit: usize) -> usize {
        let mut drained = 0;
        while drained < limit {
            match self.queue.pop_timeout(std::time::Duration::ZERO) {
                PopResult::Item(batch) => {
                    // Batches were validated at admission; a failure here
                    // means the server counted something it never checked.
                    if let Err(e) = self.agg.ingest_batch(&batch) {
                        self.violations
                            .push(format!("admitted batch failed to ingest: {e}"));
                    }
                    self.queue.task_done();
                    drained += 1;
                }
                PopResult::Empty | PopResult::Done => break,
            }
        }
        drained
    }

    /// Graceful kill + resume: drain the queue, snapshot counts *and*
    /// dedup cursors through the verified-write path (the write may be
    /// torn — then it is quarantined and retried), restore from the file
    /// just written, and drop every connection. Clients resync via Hello.
    fn on_kill(&mut self) {
        use felip_sync::atomic::{AtomicU64, Ordering};
        // Unique per process *and* per run, so concurrent sims of the same
        // seed (parallel tests) never share a file; the path feeds no sim
        // decision, so determinism is unaffected.
        static SIM_FILE_ID: AtomicU64 = AtomicU64::new(0);
        self.kills += 1;
        self.drain(usize::MAX);
        let path = std::env::temp_dir().join(format!(
            "felip-sim-{}-{}-{}.snap",
            self.cfg.seed,
            std::process::id(),
            SIM_FILE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let snap = Snapshot::capture_with_dedup(&self.agg, self.plan_hash, self.ctx.dedup_pairs());
        let mut wrote = false;
        for _attempt in 0..64 {
            let corrupt = self.schedule.snapshot_write_corrupts();
            let schedule = &mut self.schedule;
            let mut mangle = |bytes: &[u8]| {
                if corrupt {
                    Some(schedule.mangle_snapshot(bytes))
                } else {
                    None
                }
            };
            match snap.write_verified(&path, Some(&mut mangle)) {
                Ok(()) => {
                    wrote = true;
                    break;
                }
                Err(_) => self.quarantined += 1,
            }
        }
        if !wrote {
            self.violations
                .push("snapshot write never survived verification in 64 attempts".into());
            return;
        }
        let restored = Snapshot::read(&path).and_then(|s| {
            let dedup = s.dedup.clone();
            s.restore(Arc::clone(&self.plan), Arc::clone(&self.oracles))
                .map(|agg| (agg, dedup))
        });
        match restored {
            Ok((agg, dedup)) => {
                self.agg = agg;
                self.ctx =
                    SessionCtx::new(Arc::clone(&self.plan), Arc::clone(&self.oracles), dedup);
            }
            Err(e) => {
                self.violations
                    .push(format!("restore from verified snapshot failed: {e}"));
                return;
            }
        }
        let open: Vec<u64> = {
            let mut v: Vec<u64> = self.conns.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for conn in open {
            self.reset_conn(conn);
        }
        // The production server builds its query engine cold at startup —
        // resume included — so the restored sim drops the epoch cache too.
        // `expect_cold_query` turns a missing reset into a violation.
        self.query_engine.reset();
        self.expect_cold_query = true;
        self.trace(13, self.kills as u64, self.quarantined);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("quarantine"));
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }

    /// One mixed-client query against the live aggregator: refresh the
    /// incremental engine from the current (single-threaded, hence
    /// consistent) cut and hold it to the invariants — the answer's cut is
    /// exactly the ingest head, the epoch never rewinds, the first query
    /// after a kill+resume is cold, and the answer is bit-identical to the
    /// offline batch estimate of the same counts.
    fn on_query(&mut self) {
        let head = self.agg.reports_ingested();
        self.trace(14, head as u64, self.query_engine.epoch());
        if head == 0 {
            return;
        }
        let before = self.query_engine.epoch();
        let out = match self.query_engine.refresh_from(&self.agg) {
            Ok(out) => out,
            Err(e) => {
                self.violations
                    .push(format!("query refresh at {head} reports failed: {e}"));
                return;
            }
        };
        self.queries_answered += 1;
        if out.warm {
            self.query_warm_hits += 1;
        }
        if self.expect_cold_query {
            if out.warm {
                self.violations.push(
                    "first query after kill+resume served the pre-restore cached grid".into(),
                );
            }
            self.expect_cold_query = false;
        }
        if out.reports as usize != head {
            self.violations.push(format!(
                "query answered at {} reports but the ingest head is {head}",
                out.reports
            ));
        }
        if out.epoch < before {
            self.violations
                .push(format!("query epoch rewound: {before} -> {}", out.epoch));
        }
        let incremental = out.estimator.answer(&self.probe);
        let offline = self.agg.estimate().and_then(|e| e.answer(&self.probe));
        match (incremental, offline) {
            (Ok(inc), Ok(off)) => {
                if inc.to_bits() != off.to_bits() {
                    self.violations.push(format!(
                        "query answer {inc} diverges from the offline batch estimate {off} \
                         at {head} reports"
                    ));
                }
            }
            (inc, off) => self.violations.push(format!(
                "query answering failed at {head} reports: incremental {inc:?}, offline {off:?}"
            )),
        }
    }

    fn all_settled(&self) -> bool {
        self.clients.iter().all(|c| c.done || c.gave_up)
    }

    fn run(mut self) -> SimReport {
        for c in 0..self.clients.len() {
            let jitter = self.schedule.draw_below(MS);
            self.schedule_ev(jitter, Ev::ClientWake(c));
        }
        self.schedule_ev(DRAIN_TICK_NS, Ev::Drain);
        self.schedule_ev(QUERY_TICK_NS, Ev::Query);
        if let Some(at) = self.cfg.kill_at_ns {
            self.schedule_ev(at, Ev::Kill);
        }

        while let Some(Scheduled { at, ev, .. }) = self.heap.pop() {
            self.now = at.max(self.now);
            self.events += 1;
            if self.events > MAX_EVENTS {
                self.violations.push(format!(
                    "simulation did not settle within {MAX_EVENTS} events"
                ));
                break;
            }
            match ev {
                Ev::ClientWake(c) => self.on_client_wake(c),
                Ev::ToServer { conn, bytes } => self.on_to_server(conn, bytes),
                Ev::ToClient { c, conn, bytes } => self.on_to_client(c, conn, bytes),
                Ev::ClientTimeout { c, token } => self.on_client_timeout(c, token),
                Ev::Drain => {
                    self.drain(self.cfg.drain_per_tick.max(1));
                    if !(self.all_settled() && self.queue.is_empty()) {
                        self.schedule_ev(self.now + DRAIN_TICK_NS, Ev::Drain);
                    }
                }
                Ev::Query => {
                    self.on_query();
                    if !(self.all_settled() && self.queue.is_empty()) {
                        self.schedule_ev(self.now + QUERY_TICK_NS, Ev::Query);
                    }
                }
                Ev::Kill => self.on_kill(),
            }
        }

        // Final graceful drain, a query at the fully-settled cut, then
        // verify every invariant.
        self.drain(usize::MAX);
        self.on_query();
        let violations = self.verify();
        self.violations.extend(violations);

        let dump = self.flight.dump();
        let mut flight_digest = 0xf11d_cafe_0000_0001u64;
        for e in &dump.events {
            flight_digest = mix64(flight_digest ^ e.seq);
            flight_digest = mix64(flight_digest ^ (e.kind as u64 | ((e.code as u64) << 8)));
            flight_digest = mix64(flight_digest ^ e.a);
            flight_digest = mix64(flight_digest ^ e.b);
        }

        SimReport {
            seed: self.cfg.seed,
            events: self.events,
            trace_hash: self.trace_hash,
            counts_digest: self.agg.counts_digest(),
            reports_ingested: self.agg.reports_ingested(),
            server_acked_batches: self.accepted.len(),
            duplicates: self.stats.snapshot().frames_duplicate,
            faults_injected: self.schedule.injected,
            snapshots_quarantined: self.quarantined,
            kills: self.kills,
            gave_up: self.clients.iter().filter(|c| c.gave_up).count(),
            queries_answered: self.queries_answered,
            query_warm_hits: self.query_warm_hits,
            violations: self.violations,
            fault_token: self.schedule.token(),
            faults_fired: self.schedule.fired().to_vec(),
            flight_total: dump.total,
            flight_digest,
        }
    }

    fn verify(&self) -> Vec<String> {
        let mut v = Vec::new();

        // (1) Accepted batches per client are exactly 1..=max: no gaps, no
        // repeats (a repeat would mean a double count).
        let mut per_client: HashMap<u64, HashSet<u64>> = HashMap::new();
        for b in &self.accepted {
            if !per_client
                .entry(b.client_id)
                .or_default()
                .insert(b.batch_id)
            {
                v.push(format!(
                    "batch (client {}, id {}) accepted twice",
                    b.client_id, b.batch_id
                ));
            }
        }
        let server_last = |client_id: u64| -> u64 {
            per_client
                .get(&client_id)
                .and_then(|ids| ids.iter().copied().max())
                .unwrap_or(0)
        };
        for (&client_id, ids) in &per_client {
            let max = server_last(client_id);
            for id in 1..=max {
                if !ids.contains(&id) {
                    v.push(format!(
                        "client {client_id}: batch {id} missing below accepted max {max}"
                    ));
                }
            }
        }

        // (2) Client-acked ⊆ server-acked.
        for (c, cl) in self.clients.iter().enumerate() {
            let last = server_last(cl.id);
            if cl.acked > last {
                v.push(format!(
                    "client {c} believes batch {} acked but server accepted only up to {last}",
                    cl.acked
                ));
            }
        }

        // (3) Exactly-once-or-rejected: every batch is server-accepted or
        // its client exhausted the budget (an observable give-up).
        for (c, cl) in self.clients.iter().enumerate() {
            if cl.gave_up {
                continue;
            }
            let last = server_last(cl.id);
            if last < cl.total_batches as u64 {
                v.push(format!(
                    "client {c} settled without give-up but only {last}/{} batches accepted",
                    cl.total_batches
                ));
            }
        }

        // (4) The final counts equal an offline collection of exactly the
        // accepted batches — bit for bit.
        let mut offline =
            Aggregator::with_oracles(Arc::clone(&self.plan), Arc::clone(&self.oracles));
        for b in &self.accepted {
            let c = (b.client_id - 1) as usize;
            let offline_batch = self
                .batch_reports(c, (b.batch_id - 1) as usize)
                .and_then(|reports| offline.ingest_batch(&reports));
            if let Err(e) = offline_batch {
                v.push(format!(
                    "offline replay of client {c} batch {} failed: {e}",
                    b.batch_id
                ));
            }
        }
        if offline.counts() != self.agg.counts() {
            v.push("final counts differ from offline collection of acked batches".into());
        }
        if offline.group_sizes() != self.agg.group_sizes() {
            v.push("group sizes differ from offline collection of acked batches".into());
        }

        // (5) Flight recorder: a quiesced ring's dump must reconstruct the
        // last `capacity` recorded events bit-identically (same seq, kind,
        // code and payload words as the shadow log), with the overwritten
        // prefix accounted for in `dropped`.
        let dump = self.flight.dump();
        let recorded = self.flight_shadow.len();
        let window = recorded.min(self.flight.capacity());
        if dump.total != recorded as u64 {
            v.push(format!(
                "flight ring counted {} events but {recorded} were recorded",
                dump.total
            ));
        }
        if dump.dropped != (recorded - window) as u64 {
            v.push(format!(
                "flight ring dropped {} events, expected {}",
                dump.dropped,
                recorded - window
            ));
        }
        if dump.events != self.flight_shadow[recorded - window..] {
            v.push("flight ring dump does not reconstruct the last events bit-identically".into());
        }

        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_sim_delivers_every_user_exactly_once() {
        let report = run_sim(&SimConfig::lossless(1));
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.reports_ingested, 240);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.faults_injected, 0);
        // The mixed query client rode along, and the idle tail of the run
        // (settled ingest, repeated asks) produced warm cache hits.
        assert!(report.queries_answered > 0, "no queries answered");
        assert!(report.query_warm_hits > 0, "cache never served warm");
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run_sim(&SimConfig::chaos(42));
        let b = run_sim(&SimConfig::chaos(42));
        assert_eq!(a, b, "same seed must reproduce the identical run");
        assert!(a.ok(), "violations: {:?}", a.violations);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_sim(&SimConfig::chaos(7));
        let b = run_sim(&SimConfig::chaos(8));
        assert_ne!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn chaos_seeds_hold_the_invariant() {
        for seed in 0..8 {
            let report = run_sim(&SimConfig::chaos(seed));
            assert!(
                report.ok(),
                "seed {seed} violated invariants: {:?}",
                report.violations
            );
        }
    }
}
