//! Server-side payload builders for the `Stat` admin verb (DESIGN.md §11).
//!
//! A `Stat` frame asks the server for one of three live views:
//!
//! * **Full** — a [`felip_obs::MetricsSnapshot`] of every registered
//!   metric since process start, serialized as one JSON document.
//! * **Delta** — the change since the previous `Delta` request (the first
//!   delta request returns the full snapshot and arms the baseline). The
//!   baseline is process-global: concurrent delta pollers share one
//!   cursor, which matches the intended single-operator use.
//! * **Flight** — a JSONL dump of the in-memory flight-recorder ring
//!   (the last ~1k protocol events), for on-demand postmortems without
//!   killing the process.
//!
//! Payloads are built outside any connection lock: snapshot capture never
//! blocks recording threads (see `felip-obs`'s sharded metric cells), so a
//! `STAT` poll mid-loadgen costs the server only the serialization.

use felip_obs::MetricsSnapshot;
use felip_sync::Mutex;

use crate::wire::StatMode;

/// Baseline for `StatMode::Delta`: the snapshot taken by the previous
/// delta request, or `None` before the first one.
static LAST_DELTA: Mutex<Option<MetricsSnapshot>> = Mutex::new(None);

/// Builds the `StatReply` payload for one decoded [`StatMode`].
///
/// Public so the cluster aggregator's session can answer `STAT` with the
/// same payload shapes the ingest server uses (the metrics registry and
/// flight recorder are process-global either way).
pub fn stat_payload(mode: StatMode) -> Vec<u8> {
    match mode {
        StatMode::Full => felip_obs::global()
            .metrics_snapshot()
            .to_json()
            .into_bytes(),
        StatMode::Delta => {
            let cur = felip_obs::global().metrics_snapshot();
            let mut last = LAST_DELTA.lock();
            let json = match last.as_ref() {
                Some(prev) => cur.delta_since(prev).to_json(),
                None => cur.to_json(),
            };
            *last = Some(cur);
            json.into_bytes()
        }
        StatMode::Flight => {
            let mut buf = Vec::new();
            // Writing into a Vec cannot fail; a best-effort empty dump is
            // still a valid (header-only) reply.
            let _ = felip_obs::flight::flight().dump_jsonl(&mut buf, "stat");
            buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_payload_is_a_metrics_document() {
        let payload = stat_payload(StatMode::Full);
        let text = String::from_utf8(payload).expect("utf8 json");
        let doc = felip_obs::jsonread::parse(&text).expect("valid json");
        assert_eq!(
            doc.get("t").and_then(|v| v.as_str()),
            Some("metrics"),
            "payload must be a metrics document"
        );
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("full"));
    }

    #[test]
    fn second_delta_request_is_marked_delta() {
        // First call arms the baseline (kind may be full), second must be
        // a delta document.
        let _ = stat_payload(StatMode::Delta);
        let payload = stat_payload(StatMode::Delta);
        let text = String::from_utf8(payload).expect("utf8 json");
        let doc = felip_obs::jsonread::parse(&text).expect("valid json");
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("delta"));
    }

    #[test]
    fn flight_payload_starts_with_dump_header() {
        let payload = stat_payload(StatMode::Flight);
        let text = String::from_utf8(payload).expect("utf8 jsonl");
        let first = text.lines().next().expect("at least the header line");
        let doc = felip_obs::jsonread::parse(first).expect("valid json");
        assert_eq!(doc.get("t").and_then(|v| v.as_str()), Some("flight"));
        assert_eq!(doc.get("reason").and_then(|v| v.as_str()), Some("stat"));
    }
}
