//! Deterministic synthetic report streams for load generation and
//! end-to-end verification.
//!
//! Every user's record *and* randomness derive solely from `(seed, user
//! index)`, so the report stream is independent of how users are split
//! across connections, batches, or server restarts. That is what lets the
//! CI serve job kill the server mid-run, resume from a snapshot, and demand
//! final counts bit-identical to an uninterrupted offline collection of the
//! same stream.

use felip_sync::Arc;

use felip::aggregator::Aggregator;
use felip::client::{respond, UserReport};
use felip::plan::CollectionPlan;
use felip_common::hash::mix64;
use felip_common::rng::{derive_seed, seeded_rng};
use felip_common::{Result, Schema};

/// The deterministic synthetic record of user `u`: per attribute, the
/// minimum of two independent hashes of `(u, attribute)` modulo the domain
/// — a mildly lower-skewed distribution, so estimates have visible shape
/// without any dataset on disk.
pub fn synth_record(schema: &Schema, user: usize) -> Vec<u32> {
    (0..schema.len())
        .map(|a| {
            let d = schema.domain(a) as u64;
            let h1 = mix64((user as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ a as u64);
            let h2 = mix64(h1 ^ 0xd1b5_4a32_d192_ed03);
            ((h1 % d).min(h2 % d)) as u32
        })
        .collect()
}

/// The perturbed report user `u` submits under `plan`, reproducible from
/// `(seed, u)` alone.
pub fn user_report(plan: &CollectionPlan, user: usize, seed: u64) -> Result<UserReport> {
    let record = synth_record(plan.schema(), user);
    let mut rng = seeded_rng(derive_seed(seed, user as u64));
    respond(plan, user, &record, &mut rng)
}

/// Collects users `range` offline into a fresh aggregator — the ground
/// truth a served (possibly killed-and-resumed) run must match exactly.
pub fn offline_reference(
    plan: &Arc<CollectionPlan>,
    users: std::ops::Range<usize>,
    seed: u64,
) -> Result<Aggregator> {
    let mut agg = Aggregator::new(Arc::clone(plan));
    for u in users {
        agg.ingest(&user_report(plan, u, seed)?)?;
    }
    Ok(agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip::config::FelipConfig;
    use felip_common::Attribute;

    fn plan() -> Arc<CollectionPlan> {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 64),
            Attribute::numerical("b", 64),
        ])
        .unwrap();
        Arc::new(CollectionPlan::build(&schema, 5_000, &FelipConfig::new(1.0), 11).unwrap())
    }

    #[test]
    fn records_are_deterministic_and_in_domain() {
        let p = plan();
        for u in [0usize, 1, 999, 4999] {
            let r1 = synth_record(p.schema(), u);
            let r2 = synth_record(p.schema(), u);
            assert_eq!(r1, r2);
            p.schema().check_record(&r1).unwrap();
        }
    }

    #[test]
    fn reports_do_not_depend_on_generation_order() {
        let p = plan();
        let forward: Vec<_> = (0..100).map(|u| user_report(&p, u, 42).unwrap()).collect();
        let mut backward: Vec<_> = (0..100)
            .rev()
            .map(|u| user_report(&p, u, 42).unwrap())
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn offline_reference_is_order_independent() {
        let p = plan();
        let whole = offline_reference(&p, 0..400, 7).unwrap();
        let mut left = offline_reference(&p, 0..150, 7).unwrap();
        let right = offline_reference(&p, 150..400, 7).unwrap();
        left.merge(&right).expect("merge");
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.group_sizes(), whole.group_sizes());
    }
}
