//! The readiness-driven serve hot path: a single-threaded epoll event
//! loop that replaces thread-per-connection accept on Linux/x86_64.
//!
//! ## Why an event loop
//!
//! Thread-per-connection pays a context switch per frame (the handler
//! blocks in `read`, the kernel wakes it, it blocks again) plus a 20 ms
//! poll timeout per shutdown check per connection. At millions of
//! reports per second those switches dominate the budget. The reactor
//! instead parks *once* in `epoll_wait` for all connections, drains every
//! readable socket to `EAGAIN` (edge-triggered), decodes frames in place
//! with [`FrameView::decode_prefix`] (zero payload copies), and batches
//! reply bytes per wakeup.
//!
//! ## Discipline
//!
//! * All raw `epoll_*`/`sched_*` syscalls in the workspace live in THIS
//!   file — `xtask lint` (rule `reactor-syscalls`) enforces it. There is
//!   no libc crate; the syscalls are issued with `core::arch::asm!`.
//! * The reactor does I/O only. Every protocol decision still goes
//!   through [`Session::on_frame_view`], the same state machine the
//!   deterministic chaos harness drives over `SimTransport` — reactor
//!   I/O sits outside the modeled sync points, so the model checker's
//!   session/queue/snapshot results keep applying verbatim.
//! * The loop is single-threaded: connection state needs no locks. The
//!   only shared mutation (dedup cursors, queue pushes) happens inside
//!   the session call, under the same `felip_sync` primitives as before.
//!
//! ## Deadlines
//!
//! `epoll_wait` uses a 10 ms tick so the shutdown flag and the two
//! connection deadlines (idle reap; mid-frame stall) are swept at least
//! every ~10 ms, mirroring the `TcpTransport` semantics: waiting for a
//! frame's *first* byte is bounded by `idle_timeout`, finishing a frame
//! that started arriving is bounded by `read_timeout`.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

use felip_sync::Arc;

use felip::client::UserReport;

use crate::queue::BoundedQueue;
use crate::server::{AtomicStats, ServerConfig};
use crate::session::{Session, SessionCtx};
use crate::wire::{Frame, FrameView, WireError};

// ---------------------------------------------------------------------------
// Raw syscall layer (the only one in the workspace)
// ---------------------------------------------------------------------------

const SYS_CLOSE: usize = 3;
const SYS_SCHED_SETAFFINITY: usize = 203;
const SYS_SCHED_GETAFFINITY: usize = 204;
const SYS_EPOLL_WAIT: usize = 232;
const SYS_EPOLL_CTL: usize = 233;
const SYS_EPOLL_CREATE1: usize = 291;

const EPOLL_CLOEXEC: usize = 0o2000000;
const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_MOD: usize = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EINTR: i32 = 4;

/// One raw Linux syscall with up to four arguments, returning the raw
/// kernel result (negative errno on failure).
///
/// # Safety
///
/// The caller must pass a valid syscall number and arguments satisfying
/// that syscall's contract: pointers must be valid for the access the
/// kernel performs, lengths must match, and fds must be owned.
// SAFETY: callers uphold the per-syscall contract spelled out in the
// `# Safety` doc above; the body itself only encodes the kernel ABI.
unsafe fn syscall4(nr: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
    let ret: isize;
    // SAFETY: this emits the bare x86_64 Linux syscall ABI — number in
    // rax, arguments in rdi/rsi/rdx/r10, result in rax, rcx/r11
    // clobbered by the `syscall` instruction. Nothing else is touched;
    // the semantic contract of the specific syscall is the caller's
    // obligation per this function's safety doc.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Converts a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `struct epoll_event` — packed on x86_64 (the one architecture this
/// module compiles for), so the u64 payload sits at offset 4.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// An owned epoll instance.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes only a flags word and returns a
        // fresh fd this struct then owns (closed in Drop).
        let fd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as i32 })
    }

    /// Registers or re-arms `fd` with the given interest mask and token.
    fn ctl(&self, op: usize, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `&ev` is a valid, live `struct epoll_event` pointer for
        // the duration of the call (the kernel copies it before
        // returning); `self.fd` and `fd` are open fds we (or the caller)
        // own.
        check(unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                &ev as *const EpollEvent as usize,
            )
        })?;
        Ok(())
    }

    /// Waits up to `timeout_ms` for events, retrying on `EINTR`.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the pointer/length pair describes the caller's
            // `events` buffer, which the kernel fills with at most
            // `events.len()` entries; `self.fd` is the owned epoll fd.
            let ret = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                )
            };
            if ret == -(EINTR as isize) {
                continue;
            }
            return check(ret);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd this struct owns; it is
        // closed exactly once, here.
        unsafe {
            syscall4(SYS_CLOSE, self.fd as usize, 0, 0, 0);
        }
    }
}

/// CPU affinity mask wide enough for 1024 cores.
type CpuMask = [u64; 16];

/// Pins the *calling thread* to `core`. Returns whether the kernel
/// accepted the mask (failure is harmless — the thread just floats).
fn pin_to_core(core: usize) -> bool {
    let mut mask: CpuMask = [0; 16];
    mask[(core / 64) % 16] = 1u64 << (core % 64);
    // SAFETY: pid 0 addresses the calling thread; the pointer/length
    // pair describes `mask`, which outlives the call (the kernel copies
    // it before returning).
    let ret = unsafe {
        syscall4(
            SYS_SCHED_SETAFFINITY,
            0,
            std::mem::size_of::<CpuMask>(),
            mask.as_ptr() as usize,
            0,
        )
    };
    ret >= 0
}

/// How many cores the process may run on (its affinity mask width).
fn num_cores() -> usize {
    let mut mask: CpuMask = [0; 16];
    // SAFETY: pid 0 addresses the calling thread; the kernel writes at
    // most `size_of::<CpuMask>()` bytes into `mask`.
    let ret = unsafe {
        syscall4(
            SYS_SCHED_GETAFFINITY,
            0,
            std::mem::size_of::<CpuMask>(),
            mask.as_mut_ptr() as usize,
            0,
        )
    };
    if ret <= 0 {
        return 1;
    }
    let bits: u32 = mask.iter().map(|w| w.count_ones()).sum();
    (bits as usize).max(1)
}

/// Pins ingest worker `w` under the serve pinning policy: the reactor
/// owns core 0, workers round-robin over the remaining cores. On a
/// single-core box pinning is skipped (everything shares the core
/// regardless, and an explicit mask would only fight the scheduler).
pub(crate) fn pin_worker(w: usize) {
    let n = num_cores();
    if n > 1 {
        let _ = pin_to_core(1 + w % (n - 1));
    }
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

/// The listener's epoll token; connections use their slab index.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Base interest for every connection: readable + peer-closed, edge
/// triggered.
const CONN_INTEREST: u32 = EPOLLIN | EPOLLRDHUP | EPOLLET;

/// Per-connection state owned by the reactor (single-threaded, so none
/// of this needs locks).
struct Conn {
    stream: TcpStream,
    session: Session,
    /// The worker queue this connection was pinned to at accept time.
    queue: Arc<BoundedQueue<Vec<UserReport>>>,
    /// Bytes received but not yet decoded (at most one partial frame
    /// after each wakeup — whole frames are consumed immediately).
    rbuf: Vec<u8>,
    /// Encoded reply bytes not yet written to the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` is already written.
    wpos: usize,
    /// Last instant any byte arrived (drives the idle reap).
    last_byte: Instant,
    /// Set while `rbuf` holds a partial frame (drives the stall check).
    partial_since: Option<Instant>,
    /// Whether `EPOLLOUT` is currently armed (kernel buffer was full).
    want_write: bool,
    /// Close once `wbuf` drains (a fatal reply is in flight).
    close_after_flush: Option<WireError>,
    /// The wire version the peer stamped on its latest frame; replies are
    /// encoded at this version so down-level (v2) peers keep parsing us.
    peer_version: u8,
}

/// Flight-event codes for [`felip_obs::flight::KIND_CONN`] records.
const CONN_OPEN: u16 = 0;
/// Clean close (EOF, reap, shutdown).
const CONN_CLOSE_CLEAN: u16 = 1;
/// Close after a protocol/transport error.
const CONN_CLOSE_ERROR: u16 = 2;

/// Why a connection ended (mirrors the thread-per-connection paths).
enum Closed {
    /// Clean EOF, idle reap, or shutdown — not an error.
    Clean,
    /// Protocol/transport failure; logged like the threaded path logs
    /// `handle_conn` errors.
    Error(WireError),
}

/// Runs the serve event loop until `stop` flips. Accepts connections,
/// drains readable sockets, decodes and dispatches frames through the
/// shared [`Session`] state machine, and enforces the idle/stall
/// deadlines — all on the calling thread.
pub(crate) fn run_reactor<F: Fn() -> bool>(
    listener: &TcpListener,
    ctx: &SessionCtx,
    queues: &[Arc<BoundedQueue<Vec<UserReport>>>],
    stats: &AtomicStats,
    stop: &F,
    config: &ServerConfig,
) -> io::Result<()> {
    if num_cores() > 1 {
        // Keep the hot loop cache-resident on core 0; workers take 1..n.
        let _ = pin_to_core(0);
    }
    let epoll = Epoll::new()?;
    epoll.ctl(EPOLL_CTL_ADD, listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
    // Socket reads land here first, then append to the connection's
    // rbuf; one scratch serves every connection since the loop is
    // single-threaded.
    let mut scratch = vec![0u8; 256 * 1024];
    let mut next_worker = 0usize;
    let mut last_sweep = Instant::now();

    while !stop() {
        let n = epoll.wait(&mut events, 10)?;
        // Indices freed this batch are reusable only on the next one, so
        // a stale event late in `events` can never alias a fresh
        // connection accepted earlier in the same batch.
        let mut freed: Vec<usize> = Vec::new();
        for ev in events.iter().take(n) {
            let (mask, token) = (ev.events, ev.data);
            if token == LISTENER_TOKEN {
                let t0 = Instant::now();
                accept_ready(
                    listener,
                    &epoll,
                    &mut conns,
                    &mut free,
                    queues,
                    &mut next_worker,
                    stats,
                )?;
                felip_obs::hist!("server.stage.accept", t0.elapsed().as_nanos() as u64, "ns");
                continue;
            }
            let idx = token as usize;
            let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                // The connection died earlier in this batch (it cannot
                // have been replaced — see `freed`).
                continue;
            };
            if let Some(closed) = handle_event(conn, mask, &epoll, token, ctx, stats, &mut scratch)
            {
                finish(closed);
                if let Some(slot) = conns.get_mut(idx) {
                    *slot = None;
                }
                freed.push(idx);
            }
        }
        free.append(&mut freed);

        if last_sweep.elapsed() >= Duration::from_millis(10) {
            last_sweep = Instant::now();
            sweep_deadlines(&mut conns, &mut free, ctx, stats, config);
        }
    }

    // Shutdown: flush whatever reply bytes are pending (best effort) and
    // drop every connection; clients resync via Hello on reconnect.
    for conn in conns.iter_mut().flatten() {
        let _ = flush(conn);
    }
    Ok(())
}

/// Accepts until the listener would block, registering each connection
/// edge-triggered and pinning it round-robin to a worker queue.
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    queues: &[Arc<BoundedQueue<Vec<UserReport>>>],
    next_worker: &mut usize,
    stats: &AtomicStats,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                felip_obs::counter!("server.accept", 1, "connections");
                stats.bump_connection();
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    // The peer is already gone; nothing to clean up.
                    continue;
                }
                let worker = *next_worker % queues.len().max(1);
                let queue = match queues.get(worker) {
                    Some(q) => Arc::clone(q),
                    None => continue,
                };
                *next_worker += 1;
                let conn = Conn {
                    stream,
                    session: Session::for_worker(worker),
                    queue,
                    rbuf: Vec::new(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    last_byte: Instant::now(),
                    partial_since: None,
                    want_write: false,
                    close_after_flush: None,
                    peer_version: crate::wire::VERSION,
                };
                let idx = match free.pop() {
                    Some(i) => i,
                    None => {
                        conns.push(None);
                        conns.len() - 1
                    }
                };
                let fd = conn.stream.as_raw_fd();
                if let Some(slot) = conns.get_mut(idx) {
                    *slot = Some(conn);
                }
                if epoll
                    .ctl(EPOLL_CTL_ADD, fd, CONN_INTEREST, idx as u64)
                    .is_err()
                {
                    // Registration failed (fd limit pressure); drop it.
                    if let Some(slot) = conns.get_mut(idx) {
                        *slot = None;
                    }
                    free.push(idx);
                } else {
                    felip_obs::flight::flight().record(
                        felip_obs::flight::KIND_CONN,
                        CONN_OPEN,
                        idx as u64,
                        0,
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection accept failures (ECONNABORTED,
            // EMFILE under load) must not kill the serve loop.
            Err(_) => return Ok(()),
        }
    }
}

/// Handles one epoll event for a connection. Returns `Some` when the
/// connection must be dropped.
fn handle_event(
    conn: &mut Conn,
    mask: u32,
    epoll: &Epoll,
    token: u64,
    ctx: &SessionCtx,
    stats: &AtomicStats,
    scratch: &mut [u8],
) -> Option<Closed> {
    if mask & (EPOLLERR | EPOLLHUP) != 0 {
        return Some(Closed::Error(WireError::Io(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "socket error/hangup between readiness and read",
        ))));
    }
    if mask & EPOLLOUT != 0 {
        match flush(conn) {
            Ok(true) => {
                if let Some(e) = conn.close_after_flush.take() {
                    return Some(Closed::Error(e));
                }
                // Kernel buffer drained: stop watching for writability.
                if conn.want_write
                    && epoll
                        .ctl(EPOLL_CTL_MOD, conn.stream.as_raw_fd(), CONN_INTEREST, token)
                        .is_err()
                {
                    return Some(Closed::Error(WireError::Io(io::Error::other(
                        "failed to disarm EPOLLOUT",
                    ))));
                }
                conn.want_write = false;
            }
            Ok(false) => {} // still blocked; EPOLLOUT stays armed
            Err(e) => return Some(Closed::Error(WireError::Io(e))),
        }
    }
    if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
        return on_readable(conn, epoll, token, ctx, stats, scratch);
    }
    None
}

/// Drains the socket to `EAGAIN` (edge-triggered contract), decodes and
/// dispatches every complete frame, queues replies, and flushes.
fn on_readable(
    conn: &mut Conn,
    epoll: &Epoll,
    token: u64,
    ctx: &SessionCtx,
    stats: &AtomicStats,
    scratch: &mut [u8],
) -> Option<Closed> {
    let t_read = Instant::now();
    let mut eof = false;
    loop {
        match (&conn.stream).read(scratch) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(got) => {
                conn.rbuf.extend_from_slice(&scratch[..got]);
                conn.last_byte = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Reset between readiness and read: the wakeup raced the
                // peer's RST. Nothing decoded from this wakeup is lost —
                // acked batches are already queued.
                return Some(Closed::Error(WireError::Io(e)));
            }
        }
    }

    // Decode every complete frame in place; payloads borrow from rbuf.
    // Each stage records one histogram observation *per frame* (not the
    // old per-wakeup ns-sum counters), so the exported quantiles describe
    // real per-frame latency. The socket-read time is charged to the
    // first frame's decode observation (`carry`); a wakeup that decodes
    // nothing records no stage observations.
    let mut consumed = 0usize;
    let mut fatal: Option<WireError> = None;
    let mut t_prev = Instant::now();
    let mut carry = (t_prev - t_read).as_nanos() as u64;
    loop {
        match FrameView::decode_prefix(&conn.rbuf[consumed..]) {
            Ok(Some((view, used))) => {
                let t_decoded = Instant::now();
                felip_obs::hist!(
                    "server.stage.decode",
                    carry + (t_decoded - t_prev).as_nanos() as u64,
                    "ns"
                );
                carry = 0;
                let frame_kind = view.kind as u16;
                let frame_len = view.payload.len() as u64;
                conn.peer_version = view.version;
                let outcome = conn.session.on_frame_view(view, ctx, &conn.queue, stats);
                consumed += used;
                let t_ingested = Instant::now();
                felip_obs::hist!(
                    "server.stage.ingest",
                    (t_ingested - t_decoded).as_nanos() as u64,
                    "ns"
                );
                felip_obs::flight::flight().record(
                    felip_obs::flight::KIND_FRAME,
                    frame_kind,
                    conn.session.client_id().unwrap_or(0),
                    frame_len,
                );
                // Replies are stamped with the peer's own version so a
                // v2 client keeps decoding a v3 server.
                crate::wire::append_frame_versioned(
                    &mut conn.wbuf,
                    conn.peer_version,
                    outcome.reply.kind,
                    outcome.reply.plan_hash,
                    &outcome.reply.payload,
                );
                t_prev = Instant::now();
                felip_obs::hist!(
                    "server.stage.ack",
                    (t_prev - t_ingested).as_nanos() as u64,
                    "ns"
                );
                if let Some(e) = outcome.close {
                    fatal = Some(e);
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Garbled framing: answer with an error (best effort)
                // and drop the connection, like the threaded path.
                stats.bump_rejected();
                felip_obs::flight::flight().record(
                    felip_obs::flight::KIND_ERROR,
                    0,
                    felip_obs::flight::fnv1a(&e.to_string()),
                    0,
                );
                let reply = Frame::error(ctx.plan_hash, &e.to_string());
                crate::wire::append_frame_versioned(
                    &mut conn.wbuf,
                    conn.peer_version,
                    reply.kind,
                    reply.plan_hash,
                    &reply.payload,
                );
                fatal = Some(e);
                break;
            }
        }
    }

    // Drop consumed bytes; whatever remains is one partial frame whose
    // stall clock starts at the first wakeup that saw it.
    if consumed > 0 {
        let len = conn.rbuf.len();
        conn.rbuf.copy_within(consumed..len, 0);
        conn.rbuf.truncate(len - consumed);
        conn.partial_since = if conn.rbuf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
    } else if conn.rbuf.is_empty() {
        conn.partial_since = None;
    } else if conn.partial_since.is_none() {
        conn.partial_since = Some(Instant::now());
    }

    let t_flush = Instant::now();
    let result = match flush(conn) {
        Ok(true) => match fatal {
            Some(e) => Some(Closed::Error(e)),
            None if eof => Some(Closed::Clean),
            None => None,
        },
        Ok(false) => {
            if eof {
                // Peer half-closed and its receive window is full — the
                // replies can never land; don't keep a zombie.
                return Some(match fatal {
                    Some(e) => Closed::Error(e),
                    None => Closed::Clean,
                });
            }
            if let Some(e) = fatal {
                conn.close_after_flush = Some(e);
            }
            if !conn.want_write {
                if epoll
                    .ctl(
                        EPOLL_CTL_MOD,
                        conn.stream.as_raw_fd(),
                        CONN_INTEREST | EPOLLOUT,
                        token,
                    )
                    .is_err()
                {
                    return Some(Closed::Error(WireError::Io(io::Error::other(
                        "failed to arm EPOLLOUT",
                    ))));
                }
                conn.want_write = true;
            }
            None
        }
        Err(e) => Some(Closed::Error(WireError::Io(e))),
    };
    felip_obs::hist!(
        "server.stage.flush",
        t_flush.elapsed().as_nanos() as u64,
        "ns"
    );
    result
}

/// Writes pending reply bytes until done (`Ok(true)`) or the kernel
/// buffer fills (`Ok(false)`).
fn flush(conn: &mut Conn) -> io::Result<bool> {
    while conn.wpos < conn.wbuf.len() {
        match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    Ok(true)
}

/// Enforces the idle and mid-frame-stall deadlines across all live
/// connections (runs on the 10 ms tick).
fn sweep_deadlines(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    ctx: &SessionCtx,
    stats: &AtomicStats,
    config: &ServerConfig,
) {
    let now = Instant::now();
    for (idx, slot) in conns.iter_mut().enumerate() {
        let Some(conn) = slot.as_mut() else { continue };
        let closed = if conn
            .partial_since
            .is_some_and(|t| now.duration_since(t) >= config.read_timeout)
        {
            // A frame started arriving and stalled: an error, not
            // idleness — matches `TcpTransport`'s stall semantics.
            let e = WireError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "read deadline exceeded mid-frame",
            ));
            stats.bump_rejected();
            let reply = Frame::error(ctx.plan_hash, &e.to_string());
            crate::wire::append_frame_versioned(
                &mut conn.wbuf,
                conn.peer_version,
                reply.kind,
                reply.plan_hash,
                &reply.payload,
            );
            let _ = flush(conn);
            Some(Closed::Error(e))
        } else if now.duration_since(conn.last_byte) >= config.idle_timeout {
            // Quiet too long: reap. Safe — a returning client
            // reconnects and resyncs its cursor from the Hello ack.
            stats.bump_reaped();
            Some(Closed::Clean)
        } else {
            None
        };
        if let Some(closed) = closed {
            finish(closed);
            *slot = None;
            free.push(idx);
        }
    }
}

/// Final accounting for a closing connection (parity with how the
/// threaded accept loop logs `handle_conn` results).
fn finish(closed: Closed) {
    match closed {
        Closed::Error(e) => {
            felip_obs::counter!("server.conn.errors", 1, "connections");
            let msg = format!("connection closed: {e}");
            felip_obs::flight::flight().record(
                felip_obs::flight::KIND_CONN,
                CONN_CLOSE_ERROR,
                felip_obs::flight::fnv1a(&msg),
                0,
            );
            felip_obs::diag::line(&msg);
        }
        Closed::Clean => {
            felip_obs::flight::flight().record(
                felip_obs::flight::KIND_CONN,
                CONN_CLOSE_CLEAN,
                0,
                0,
            );
        }
    }
}
