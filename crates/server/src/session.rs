//! The transport-agnostic per-connection protocol state machine.
//!
//! Both the TCP connection handler and the deterministic sim harness feed
//! decoded frames through [`Session::on_frame`]; all protocol decisions —
//! plan pinning, batch validation, duplicate suppression, backpressure —
//! live here exactly once, so what the chaos harness proves about the
//! session logic holds for the production server verbatim.
//!
//! ## Exactly-once-or-rejected
//!
//! Every client identifies itself in `Hello` and numbers its batches
//! `1, 2, 3, …`. The server keeps, per client, the highest batch id it has
//! *accepted* (queued for ingestion) and answers:
//!
//! * `batch_id == last + 1` — the next expected batch: queue it (or answer
//!   `Retry` under backpressure, leaving `last` untouched).
//! * `batch_id ≤ last` — a duplicate (the client re-sent because our ack
//!   was lost): acknowledge again *without* re-queueing, so a report can
//!   never be counted twice.
//! * `batch_id > last + 1` — a gap: protocol violation, reject.
//!
//! The `Hello` ack echoes `last`, so a reconnecting client learns which of
//! its batches already made it and never re-sends them.

use std::collections::HashMap;

use felip_sync::{Arc, Mutex};

use felip::aggregator::OracleSet;
use felip::client::UserReport;
use felip::plan::CollectionPlan;

use crate::queue::{BoundedQueue, PushError};
use crate::server::AtomicStats;
use crate::wire::{
    decode_batch, decode_hello, decode_stat, encode_ack, encode_retry, Frame, FrameKind, WireError,
};

/// Server-wide state shared by every session: the plan, the oracles used
/// for admission validation, and the per-client dedup table.
pub(crate) struct SessionCtx {
    /// The collection plan this server aggregates for.
    pub plan: Arc<CollectionPlan>,
    /// Oracle set used to validate incoming reports.
    pub oracles: Arc<OracleSet>,
    /// `plan.schema_hash()`, checked against every frame.
    pub plan_hash: u64,
    /// client id → highest accepted batch id.
    pub dedup: Mutex<HashMap<u64, u64>>,
    /// The online query service (v5 `Query` verb); `None` until the serve
    /// run installs it, and in contexts that only ingest (tests, sims).
    pub query: Option<Arc<crate::query::QueryService>>,
}

impl SessionCtx {
    /// Builds a context, seeding the dedup table (from a restored
    /// snapshot; empty for a fresh server).
    pub fn new(
        plan: Arc<CollectionPlan>,
        oracles: Arc<OracleSet>,
        dedup: Vec<(u64, u64)>,
    ) -> SessionCtx {
        let plan_hash = plan.schema_hash();
        SessionCtx {
            plan,
            oracles,
            plan_hash,
            dedup: Mutex::new(dedup.into_iter().collect()),
            query: None,
        }
    }

    /// Installs the online query service (called once by the serve run
    /// after its shards and queues exist).
    pub fn install_query(&mut self, service: Arc<crate::query::QueryService>) {
        self.query = Some(service);
    }

    /// The dedup table as sorted pairs (the snapshot encoding).
    pub fn dedup_pairs(&self) -> Vec<(u64, u64)> {
        Self::sorted_pairs(&self.dedup.lock())
    }

    /// Sorted-pair encoding of an already-locked dedup table — for callers
    /// (the snapshot consistent cut) that must capture the cursors under a
    /// guard they are still holding.
    pub fn sorted_pairs(map: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = map.iter().map(|(&c, &b)| (c, b)).collect();
        pairs.sort_unstable();
        pairs
    }
}

/// A batch the session just accepted (queued for ingestion) — the unit the
/// sim harness counts as "server-acked".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AcceptedBatch {
    /// The sending client.
    pub client_id: u64,
    /// The batch's per-client sequence number.
    pub batch_id: u64,
    /// Reports in the batch.
    pub reports: u32,
}

/// What [`Session::on_frame`] decided.
pub(crate) struct FrameOutcome {
    /// Reply to send to the peer (always present; errors reply best-effort).
    pub reply: Frame,
    /// Set when a batch was newly accepted this frame.
    pub accepted: Option<AcceptedBatch>,
    /// Set when the connection must close after the reply (the error to
    /// report); duplicate and retry frames do *not* close.
    pub close: Option<WireError>,
}

/// Per-connection protocol state: the handshaken client id plus the index
/// of the ingest worker this connection's accepted batches feed (used to
/// label the per-worker queue-depth gauge).
#[derive(Default)]
pub(crate) struct Session {
    client_id: Option<u64>,
    worker: usize,
}

impl Session {
    /// A fresh, pre-handshake session feeding worker 0.
    pub fn new() -> Session {
        Session::default()
    }

    /// A fresh session pinned to ingest worker `worker`.
    pub fn for_worker(worker: usize) -> Session {
        Session {
            client_id: None,
            worker,
        }
    }

    /// The handshaken client id (`None` before `Hello`) — the reactor
    /// stamps it on flight-recorder events.
    #[cfg_attr(
        not(all(target_os = "linux", target_arch = "x86_64")),
        allow(dead_code)
    )]
    pub fn client_id(&self) -> Option<u64> {
        self.client_id
    }

    /// Processes one decoded frame and decides the reply.
    pub fn on_frame(
        &mut self,
        frame: Frame,
        ctx: &SessionCtx,
        queue: &BoundedQueue<Vec<UserReport>>,
        stats: &AtomicStats,
    ) -> FrameOutcome {
        self.on_frame_view(frame.view(), ctx, queue, stats)
    }

    /// Processes one decoded frame *view* (payload borrowed from the
    /// receive buffer) and decides the reply — the zero-copy entry the
    /// reactor uses; [`Session::on_frame`] is the owned-frame shim over it.
    pub fn on_frame_view(
        &mut self,
        frame: crate::wire::FrameView<'_>,
        ctx: &SessionCtx,
        queue: &BoundedQueue<Vec<UserReport>>,
        stats: &AtomicStats,
    ) -> FrameOutcome {
        let reject = |e: WireError| {
            stats.bump_rejected();
            FrameOutcome {
                reply: Frame::error(ctx.plan_hash, &e.to_string()),
                accepted: None,
                close: Some(e),
            }
        };

        // STAT is an admin verb: any connection — even pre-handshake, even
        // a plan-agnostic operator tool that sends plan hash 0 — may ask
        // for a metrics snapshot, so it is handled before plan pinning.
        if frame.kind == FrameKind::Stat {
            return match decode_stat(frame.payload) {
                Ok(mode) => {
                    felip_obs::counter!("server.frame.stat", 1, "frames");
                    FrameOutcome {
                        reply: Frame {
                            kind: FrameKind::StatReply,
                            plan_hash: ctx.plan_hash,
                            payload: crate::stat::stat_payload(mode),
                        },
                        accepted: None,
                        close: None,
                    }
                }
                Err(e) => reject(e),
            };
        }

        if frame.plan_hash != ctx.plan_hash {
            return reject(WireError::PlanMismatch {
                ours: ctx.plan_hash,
                theirs: frame.plan_hash,
            });
        }

        match frame.kind {
            FrameKind::Hello => {
                let client_id = match decode_hello(frame.payload) {
                    Ok(id) => id,
                    Err(e) => return reject(e),
                };
                felip_obs::counter!("server.frame.hello", 1, "frames");
                self.client_id = Some(client_id);
                let last = ctx.dedup.lock().get(&client_id).copied().unwrap_or(0);
                FrameOutcome {
                    reply: Frame {
                        kind: FrameKind::Ack,
                        plan_hash: ctx.plan_hash,
                        payload: encode_ack(last, 0),
                    },
                    accepted: None,
                    close: None,
                }
            }
            FrameKind::ReportBatch => {
                let Some(client_id) = self.client_id else {
                    return reject(WireError::Malformed(
                        "report batch before hello handshake".into(),
                    ));
                };
                let (batch_id, reports) = match decode_batch(frame.payload) {
                    Ok(b) => b,
                    Err(e) => return reject(e),
                };
                if batch_id == 0 {
                    return reject(WireError::Malformed("batch id zero is reserved".into()));
                }
                // Admission check: every report must match its group's
                // oracle, *before* dedup or queueing, so a malformed batch
                // can neither advance the dedup cursor nor reach a worker.
                if let Some(err) = reports
                    .iter()
                    .find_map(|r| r.validate(&ctx.plan, &ctx.oracles).err())
                {
                    return reject(WireError::Malformed(err.to_string()));
                }
                let count = reports.len() as u32;
                // The dedup lock is held across the cursor check, the queue
                // push, and the cursor advance: a snapshot (which freezes
                // this lock for its consistent cut) must never observe a
                // cursor without its queued batch or a queued batch without
                // its cursor, and two connections racing for the same
                // client id must serialise on the same check-then-push.
                let mut dedup = ctx.dedup.lock();
                let last = dedup.get(&client_id).copied().unwrap_or(0);
                if batch_id <= last {
                    drop(dedup);
                    // Duplicate delivery (our previous ack was lost):
                    // acknowledge again, ingest nothing.
                    felip_obs::counter!("server.frame.duplicate", 1, "frames");
                    stats.bump_duplicate();
                    return FrameOutcome {
                        reply: Frame {
                            kind: FrameKind::Ack,
                            plan_hash: ctx.plan_hash,
                            payload: encode_ack(batch_id, count),
                        },
                        accepted: None,
                        close: None,
                    };
                }
                if batch_id > last + 1 {
                    drop(dedup);
                    return reject(WireError::Malformed(format!(
                        "batch id {batch_id} skips ahead of {last}"
                    )));
                }
                match queue.try_push(reports) {
                    Ok(depth) => {
                        dedup.insert(client_id, batch_id);
                        drop(dedup);
                        crate::server::queue_depth_gauge(self.worker, depth);
                        felip_obs::counter!("server.frame.ok", 1, "frames");
                        felip_obs::counter!("server.frame.reports", count as usize, "reports");
                        stats.bump_accepted(count as u64);
                        FrameOutcome {
                            reply: Frame {
                                kind: FrameKind::Ack,
                                plan_hash: ctx.plan_hash,
                                payload: encode_ack(batch_id, count),
                            },
                            accepted: Some(AcceptedBatch {
                                client_id,
                                batch_id,
                                reports: count,
                            }),
                            close: None,
                        }
                    }
                    Err(PushError::Full(_)) | Err(PushError::Closed(_)) => {
                        drop(dedup);
                        // Backpressure: the batch is dropped here and the
                        // client resends after backing off; `last` did not
                        // advance, so the resend is the expected next id.
                        felip_obs::counter!("server.frame.retry", 1, "frames");
                        stats.bump_retried();
                        FrameOutcome {
                            reply: Frame {
                                kind: FrameKind::Retry,
                                plan_hash: ctx.plan_hash,
                                payload: encode_retry(batch_id),
                            },
                            accepted: None,
                            close: None,
                        }
                    }
                }
            }
            FrameKind::Query => {
                let req = match crate::wire::decode_query(frame.payload) {
                    Ok(r) => r,
                    Err(e) => return reject(e),
                };
                let Some(service) = ctx.query.as_ref() else {
                    return reject(WireError::Malformed(
                        "query serving not enabled on this server".into(),
                    ));
                };
                match service.answer(ctx, stats, &req) {
                    Ok(ans) => FrameOutcome {
                        reply: Frame {
                            kind: FrameKind::QueryReply,
                            plan_hash: ctx.plan_hash,
                            payload: crate::wire::encode_query_reply(&ans),
                        },
                        accepted: None,
                        close: None,
                    },
                    Err(e) => {
                        // An unanswerable query (invalid predicates, empty
                        // collection) answers an Error frame but keeps the
                        // connection — the client may fix it and retry.
                        felip_obs::counter!("server.query.errors", 1, "queries");
                        FrameOutcome {
                            reply: Frame::error(ctx.plan_hash, &e.to_string()),
                            accepted: None,
                            close: None,
                        }
                    }
                }
            }
            other => reject(WireError::Malformed(format!("client sent {other:?} frame"))),
        }
    }
}
