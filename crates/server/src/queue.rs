//! A bounded multi-producer queue with non-blocking push — the
//! backpressure primitive of the ingestion pipeline (DESIGN.md §12.2).
//!
//! Connection handlers `try_push`; when a worker falls behind and its queue
//! is full the push fails *immediately* and the handler answers the client
//! with a RETRY frame instead of buffering unboundedly. Workers block on
//! `pop_timeout` so they can periodically observe shutdown.

use std::collections::VecDeque;
use std::time::Duration;

use felip_sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused; carries the item back so
/// the caller can respond to the producer without cloning.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — the backpressure signal.
    Full(T),
    /// The queue was closed (server draining); no more items are accepted.
    Closed(T),
}

/// Outcome of a [`BoundedQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue empty (and still open).
    Empty,
    /// The queue is closed *and* drained: the consumer can exit.
    Done,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Items popped but not yet [`BoundedQueue::task_done`]-acknowledged:
    /// batches a worker is ingesting right now. Snapshot consistency needs
    /// to know about these — an empty queue alone does not mean every
    /// accepted batch has reached an aggregator.
    in_flight: usize,
}

/// A fixed-capacity FIFO shared between connection handlers (producers)
/// and one ingest worker (consumer).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (`capacity ≥ 1`).
    ///
    /// # Panics
    /// Panics when `capacity` is zero — a zero-capacity queue could never
    /// accept work.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                in_flight: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking. Returns the queue depth *after* the push,
    /// or the item wrapped in the refusal reason.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues, waiting up to `timeout` for an item.
    ///
    /// A popped item counts as *in flight* until the consumer calls
    /// [`BoundedQueue::task_done`] for it; [`BoundedQueue::is_quiescent`]
    /// stays false in between.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.in_flight += 1;
                return PopResult::Item(item);
            }
            if inner.closed {
                return PopResult::Done;
            }
            let (guard, wait) = self.not_empty.wait_timeout(inner, timeout);
            inner = guard;
            if wait.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => {
                        inner.in_flight += 1;
                        PopResult::Item(item)
                    }
                    None if inner.closed => PopResult::Done,
                    None => PopResult::Empty,
                };
            }
        }
    }

    /// Marks one previously popped item as fully processed (ingested into
    /// an aggregator), clearing its in-flight mark.
    pub fn task_done(&self) {
        let mut inner = self.inner.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
    }

    /// Whether the queue holds no items *and* nothing popped is still being
    /// processed — i.e. every batch ever pushed is in an aggregator. Only
    /// meaningful while producers are paused (the snapshot consistent cut).
    pub fn is_quiescent(&self) -> bool {
        let inner = self.inner.lock();
        inner.items.is_empty() && inner.in_flight == 0
    }

    /// Closes the queue: further pushes fail, consumers drain what remains
    /// and then observe [`PopResult::Done`].
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth (racy, for observability only).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is currently empty (racy, for observability only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_sync::{thread, Arc};

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Empty);
    }

    #[test]
    fn full_queue_exerts_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        // Draining one slot re-admits pushes.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Item(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_signals_done() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Done);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        // Give the consumer a moment to block, then close.
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), PopResult::Done);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u32>::new(0);
    }

    #[test]
    fn quiescence_tracks_in_flight_items() {
        let q = BoundedQueue::new(4);
        assert!(q.is_quiescent(), "fresh queue is quiescent");
        q.try_push(1).unwrap();
        assert!(!q.is_quiescent(), "queued item pending");
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Item(1));
        assert!(
            !q.is_quiescent(),
            "popped item is in flight until task_done"
        );
        q.task_done();
        assert!(q.is_quiescent(), "drained and processed");
    }
}
