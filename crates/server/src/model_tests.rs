//! Model-checked concurrency tests for the ingestion pipeline (DESIGN.md
//! §14): every interleaving of the session/queue/snapshot sync operations
//! is explored by the `felip-sync` scheduler (up to its preemption bound),
//! so the PR-4 exactly-once invariants hold by exhaustion, not by luck.
//!
//! Compiled only under `--features model` (the shims route every lock,
//! condvar, and atomic through the model scheduler there); `cargo test -p
//! felip-server --features model model_` runs just these.

use std::time::Duration;

use felip_sync::atomic::{AtomicU64, Ordering};
use felip_sync::model::{self, Config};
use felip_sync::{thread, Arc, Mutex};

use felip::aggregator::{Aggregator, OracleSet};
use felip::client::UserReport;
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};

use felip::query::QueryEngine;

use crate::loadgen;
use crate::query::QueryService;
use crate::queue::{BoundedQueue, PopResult};
use crate::server::{consistent_cut, AtomicStats};
use crate::session::{Session, SessionCtx};
use crate::wire::{encode_batch, encode_hello, Frame, FrameKind, QueryMode, QueryRequest};

/// A tiny but real plan (one 8-bin attribute, 4 users) shared by every
/// schedule of a check: the plan is immutable, so building it once outside
/// the explored closure keeps each schedule cheap.
fn tiny_plan() -> (Arc<CollectionPlan>, Arc<OracleSet>) {
    let schema = Schema::new(vec![Attribute::numerical("a", 8)]).expect("static schema");
    let plan = Arc::new(
        CollectionPlan::build(&schema, 4, &FelipConfig::new(1.0), 5).expect("static plan"),
    );
    let oracles = Arc::new(OracleSet::build(&plan));
    (plan, oracles)
}

/// Two valid reports for the plan — the payload of every test batch.
fn two_reports(plan: &Arc<CollectionPlan>) -> Vec<UserReport> {
    (0..2)
        .map(|u| loadgen::user_report(plan, u, 0xfe11).expect("loadgen report"))
        .collect()
}

fn hello_frame(plan_hash: u64, client_id: u64) -> Frame {
    Frame {
        kind: FrameKind::Hello,
        plan_hash,
        payload: encode_hello(client_id),
    }
}

fn batch_frame(plan_hash: u64, batch_id: u64, reports: &[UserReport]) -> Frame {
    Frame {
        kind: FrameKind::ReportBatch,
        plan_hash,
        payload: encode_batch(batch_id, reports).expect("encode batch"),
    }
}

/// Pops exactly one batch (waiting as long as it takes), ingests it into
/// `shard`, and acknowledges it — a one-shot ingest worker.
fn drain_one(q: &BoundedQueue<Vec<UserReport>>, shard: &Mutex<Aggregator>) {
    loop {
        match q.pop_timeout(Duration::from_millis(1)) {
            PopResult::Item(batch) => {
                shard.lock().ingest_batch(&batch).expect("admitted batch");
                q.task_done();
                return;
            }
            PopResult::Empty => continue,
            PopResult::Done => return,
        }
    }
}

/// `BoundedQueue` quiescence is exact under every interleaving: a popped
/// batch keeps the queue non-quiescent until `task_done`, and once producer
/// and worker have joined the queue is quiescent again.
#[test]
fn model_queue_quiescence_is_exact() {
    let stats = model::check(|| {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.try_push(7).expect("capacity 2 cannot be full");
            })
        };
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || loop {
                match q.pop_timeout(Duration::from_millis(1)) {
                    PopResult::Item(v) => {
                        assert_eq!(v, 7);
                        assert!(
                            !q.is_quiescent(),
                            "popped item is in flight until task_done"
                        );
                        q.task_done();
                        return;
                    }
                    PopResult::Empty => continue,
                    PopResult::Done => panic!("queue closed unexpectedly"),
                }
            })
        };
        producer.join().expect("producer");
        worker.join().expect("worker");
        assert!(q.is_quiescent(), "drained and processed ⇒ quiescent");
    })
    .expect("quiescence invariant must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// Two connections racing the same client id serialise on the dedup lock:
/// in every interleaving exactly one batch is accepted, the queue holds
/// exactly one copy, and the cursor lands on the batch id — the fixed
/// check-then-push-then-advance is atomic.
#[test]
fn model_racing_sessions_accept_exactly_once() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let plan_hash = plan.schema_hash();
    let stats = model::check(move || {
        let ctx = Arc::new(SessionCtx::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
            vec![],
        ));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let stats = Arc::new(AtomicStats::default());
        let spawn_conn = |_| {
            let (ctx, q, stats) = (Arc::clone(&ctx), Arc::clone(&q), Arc::clone(&stats));
            let reports = reports.clone();
            thread::spawn(move || {
                let mut session = Session::new();
                session.on_frame(hello_frame(plan_hash, 9), &ctx, &q, &stats);
                let out = session.on_frame(batch_frame(plan_hash, 1, &reports), &ctx, &q, &stats);
                u32::from(out.accepted.is_some())
            })
        };
        let accepted: u32 = (0..2)
            .map(spawn_conn)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("conn task"))
            .sum();
        assert_eq!(accepted, 1, "same batch accepted {accepted} times");
        assert_eq!(q.len(), 1, "queue must hold the batch exactly once");
        let cursor = ctx.dedup.lock().get(&9).copied().unwrap_or(0);
        assert_eq!(cursor, 1, "cursor must land on the accepted batch");
    })
    .expect("exactly-once admission must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// The snapshot consistent cut can never observe an advanced cursor whose
/// batch is missing from the counts (acked-but-lost) or counted reports
/// whose cursor did not advance (double-count on resend): under every
/// interleaving of a session, an ingest worker, and the cut itself,
/// `reports in cut == cursor × batch size`.
#[test]
fn model_consistent_cut_counts_match_cursors() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let plan_hash = plan.schema_hash();
    let per_batch = reports.len() as u64;
    let stats = model::check(move || {
        let ctx = Arc::new(SessionCtx::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
            vec![],
        ));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let stats = Arc::new(AtomicStats::default());
        let base = Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ));
        let shards = Arc::new(vec![Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ))]);
        let session = {
            let (ctx, q, stats) = (Arc::clone(&ctx), Arc::clone(&q), Arc::clone(&stats));
            let reports = reports.clone();
            thread::spawn(move || {
                let mut s = Session::new();
                s.on_frame(hello_frame(plan_hash, 3), &ctx, &q, &stats);
                let out = s.on_frame(batch_frame(plan_hash, 1, &reports), &ctx, &q, &stats);
                assert!(out.accepted.is_some(), "uncontended batch must be accepted");
            })
        };
        let worker = {
            let (q, shards) = (Arc::clone(&q), Arc::clone(&shards));
            thread::spawn(move || drain_one(&q, &shards[0]))
        };
        // The cut races the session and the worker; whatever it freezes
        // must be internally consistent.
        let (cut, pairs) =
            consistent_cut(&ctx, &plan, &oracles, &base, &shards, &[Arc::clone(&q)]).expect("cut");
        let cursor = pairs
            .iter()
            .find(|&&(c, _)| c == 3)
            .map(|&(_, b)| b)
            .unwrap_or(0);
        assert_eq!(
            cut.reports_ingested() as u64,
            cursor * per_batch,
            "cut counts disagree with cut cursors (cursor {cursor})"
        );
        session.join().expect("session task");
        worker.join().expect("worker task");
    })
    .expect("consistent cut must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// The pre-review bug this crate's review fixed: the cursor check and the
/// queue push under *separate* dedup-lock holds. Two connections racing
/// the same batch can then both pass the check and both queue the batch —
/// a double count.
fn buggy_accept(
    ctx: &SessionCtx,
    q: &BoundedQueue<Vec<UserReport>>,
    client_id: u64,
    batch_id: u64,
    reports: Vec<UserReport>,
) -> bool {
    // Bug: the lock is dropped between the duplicate check and the push.
    let last = ctx.dedup.lock().get(&client_id).copied().unwrap_or(0);
    if batch_id <= last {
        return false;
    }
    if q.try_push(reports).is_err() {
        return false;
    }
    ctx.dedup.lock().insert(client_id, batch_id);
    true
}

/// Mutation test: the checker must *find* the pre-review race — and the
/// violation's schedule token must replay it deterministically. This is
/// what keeps the model suite honest: if the scheduler stopped exploring
/// the racing interleavings, this test would fail before a real regression
/// could slip past the invariant tests above.
#[test]
fn model_mutation_pre_review_ordering_is_caught() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let scenario = move || {
        let ctx = Arc::new(SessionCtx::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
            vec![],
        ));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let race = |_| {
            let (ctx, q) = (Arc::clone(&ctx), Arc::clone(&q));
            let reports = reports.clone();
            thread::spawn(move || u32::from(buggy_accept(&ctx, &q, 9, 1, reports)))
        };
        let accepted: u32 = (0..2)
            .map(race)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("race task"))
            .sum();
        assert!(
            accepted <= 1 && q.len() <= 1,
            "batch double-queued: {accepted} accepts, queue depth {}",
            q.len()
        );
    };
    let violation = model::check(scenario.clone())
        .expect_err("the checker must detect the pre-review double-queue race");
    assert!(
        violation.message.contains("double-queued"),
        "unexpected violation: {violation}"
    );
    // The token pins the exact interleaving: replaying it reproduces the
    // same failure, every time, with no search.
    let replayed = model::replay(&violation.schedule, scenario)
        .expect_err("replaying the violating schedule must reproduce the bug");
    assert!(
        replayed.message.contains("double-queued"),
        "replay diverged: {replayed}"
    );
}

/// The racing-sessions scenario needs at least one involuntary preemption
/// to expose the mutation bug; with the budget forced to zero the buggy
/// ordering looks clean. Documents why `Config::preemption_bound` must
/// stay ≥ 2 (DESIGN.md §14).
#[test]
fn model_mutation_needs_preemptions() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let scenario = move || {
        let ctx = Arc::new(SessionCtx::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
            vec![],
        ));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let race = |_| {
            let (ctx, q) = (Arc::clone(&ctx), Arc::clone(&q));
            let reports = reports.clone();
            thread::spawn(move || u32::from(buggy_accept(&ctx, &q, 9, 1, reports)))
        };
        let accepted: u32 = (0..2)
            .map(race)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("race task"))
            .sum();
        assert!(accepted <= 1 && q.len() <= 1, "batch double-queued");
    };
    let cfg = Config {
        preemption_bound: 0,
        ..Config::default()
    };
    model::check_with(cfg, scenario)
        .expect("without preemptions each task runs to completion and the race hides");
}

// ---------------------------------------------------------------------------
// Query engine: the epoch-cache invalidation race (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// One loadgen report for a single user of the tiny plan.
fn report_for(plan: &Arc<CollectionPlan>, user: usize) -> UserReport {
    loadgen::user_report(plan, user, 0xfe11).expect("loadgen report")
}

/// The probe every query-model schedule asks: a 1-D range marginal on the
/// tiny plan's only attribute.
fn probe(plan: &CollectionPlan) -> felip_common::Query {
    felip_common::Query::new(
        plan.schema(),
        vec![felip_common::Predicate::between(0, 2, 5)],
    )
    .expect("static probe")
}

/// The offline batch answer (as exact bits) for a given report prefix —
/// the pure function of the cut every served answer must equal.
fn offline_bits(plan: &Arc<CollectionPlan>, oracles: &Arc<OracleSet>, users: usize) -> u64 {
    let mut agg = Aggregator::with_oracles(Arc::clone(plan), Arc::clone(oracles));
    for u in 0..users {
        agg.ingest(&report_for(plan, u)).expect("ingest reference");
    }
    agg.estimate()
        .expect("non-empty reference")
        .answer(&probe(plan))
        .expect("probe reference")
        .to_bits()
}

/// A query racing ingestion and its own cache refresh can never observe
/// counts from epoch N with a cached grid from epoch N−1: under every
/// interleaving of a session (two batches), an ingest worker, and two
/// `Cached`-mode queries, each served answer is *bit-identical* to the
/// offline batch estimate of exactly the reports it claims to cover —
/// a mixed-epoch answer would be the pure function of no cut at all.
#[test]
fn model_query_epoch_and_counts_never_tear() {
    let (plan, oracles) = tiny_plan();
    let plan_hash = plan.schema_hash();
    // Batch 1 carries users {0, 1}, batch 2 user {2}: the two admissible
    // cuts have distinct report totals, so `reports` names the cut and
    // the expected bits are a lookup. (An empty cut is a query error.)
    let batch1 = vec![report_for(&plan, 0), report_for(&plan, 1)];
    let batch2 = vec![report_for(&plan, 2)];
    let after_b1 = offline_bits(&plan, &oracles, 2);
    let after_b2 = offline_bits(&plan, &oracles, 3);
    assert_ne!(after_b1, after_b2, "probe cannot distinguish the cuts");
    let stats = model::check(move || {
        let ctx = Arc::new(SessionCtx::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
            vec![],
        ));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let stats = Arc::new(AtomicStats::default());
        let base = Arc::new(Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        )));
        let shards = Arc::new(vec![Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ))]);
        let service = Arc::new(QueryService::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
            Arc::clone(&base),
            Arc::clone(&shards),
            vec![Arc::clone(&q)],
            0,
        ));
        let session = {
            let (ctx, q, stats) = (Arc::clone(&ctx), Arc::clone(&q), Arc::clone(&stats));
            let (batch1, batch2) = (batch1.clone(), batch2.clone());
            thread::spawn(move || {
                let mut s = Session::new();
                s.on_frame(hello_frame(plan_hash, 3), &ctx, &q, &stats);
                let a = s.on_frame(batch_frame(plan_hash, 1, &batch1), &ctx, &q, &stats);
                let b = s.on_frame(batch_frame(plan_hash, 2, &batch2), &ctx, &q, &stats);
                assert!(a.accepted.is_some() && b.accepted.is_some());
            })
        };
        let worker = {
            let (q, shards) = (Arc::clone(&q), Arc::clone(&shards));
            thread::spawn(move || {
                drain_one(&q, &shards[0]);
                drain_one(&q, &shards[0]);
            })
        };
        let querier = {
            let (ctx, stats, service) =
                (Arc::clone(&ctx), Arc::clone(&stats), Arc::clone(&service));
            let plan = Arc::clone(&plan);
            thread::spawn(move || {
                for query_id in 0..2u64 {
                    let req = QueryRequest {
                        query_id,
                        mode: QueryMode::Cached,
                        predicates: probe(&plan).predicates().to_vec(),
                    };
                    match service.answer(&ctx, &stats, &req) {
                        // An empty cut is the one admissible error.
                        Err(_) => {}
                        Ok(ans) => {
                            assert!(ans.epoch <= ans.head_epoch, "head behind answer");
                            let expected = match ans.reports {
                                2 => after_b1,
                                3 => after_b2,
                                n => panic!("cut covers a partial batch: {n} reports"),
                            };
                            assert_eq!(
                                ans.answer.to_bits(),
                                expected,
                                "answer at {} reports is not the batch estimate of its cut",
                                ans.reports
                            );
                        }
                    }
                }
            })
        };
        session.join().expect("session task");
        worker.join().expect("worker task");
        querier.join().expect("querier task");
        // Quiesced: a fresh cut must land on the full stream, caught up.
        let req = QueryRequest {
            query_id: 9,
            mode: QueryMode::Fresh,
            predicates: probe(&plan).predicates().to_vec(),
        };
        let ans = service.answer(&ctx, &stats, &req).expect("final answer");
        assert_eq!(ans.reports, 3);
        assert_eq!(ans.answer.to_bits(), after_b2);
        assert_eq!(ans.epoch, ans.head_epoch, "quiesced head cannot be stale");
    })
    .expect("query/cut atomicity must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// The bug the engine-lock scope prevents: reading the cached epoch's
/// report count and its estimator under *separate* lock holds. A refresh
/// landing between the two reads pairs epoch-N−1 bookkeeping with the
/// epoch-N grid — exactly the torn read `QueryService::answer` makes
/// impossible by holding one lock across cut + refresh + answer.
fn buggy_epoch_read(engine: &Mutex<QueryEngine>, query: &felip_common::Query) -> (u64, u64) {
    // Bug: the lock is dropped between the bookkeeping read and the
    // estimator read.
    let reports = engine.lock().reports();
    let est = engine.lock().estimator().expect("engine was warmed");
    (reports, est.answer(query).expect("probe").to_bits())
}

/// Mutation test: the checker must *find* the torn epoch read — and the
/// violation's schedule token must replay it deterministically. If the
/// scheduler stopped exploring a refresh between two reads of the engine,
/// this test would fail before a real lock-scope regression in
/// `QueryService::answer` could slip past `model_query_epoch_and_counts_never_tear`.
#[test]
fn model_mutation_query_torn_epoch_read_is_caught() {
    let (plan, oracles) = tiny_plan();
    let warm = Arc::new({
        let mut agg = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        for u in 0..2 {
            agg.ingest(&report_for(&plan, u)).expect("warm ingest");
        }
        agg
    });
    let grown = Arc::new({
        let mut agg = Aggregator::with_oracles(Arc::clone(&plan), Arc::clone(&oracles));
        for u in 0..3 {
            agg.ingest(&report_for(&plan, u)).expect("grown ingest");
        }
        agg
    });
    let after_warm = offline_bits(&plan, &oracles, 2);
    let after_grown = offline_bits(&plan, &oracles, 3);
    assert_ne!(
        after_warm, after_grown,
        "probe cannot distinguish the epochs"
    );
    let scenario = move || {
        let engine = Arc::new(Mutex::new(QueryEngine::new(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        )));
        engine.lock().refresh_from(&warm).expect("warm refresh");
        let refresher = {
            let (engine, grown) = (Arc::clone(&engine), Arc::clone(&grown));
            thread::spawn(move || {
                engine.lock().refresh_from(&grown).expect("grown refresh");
            })
        };
        let reader = {
            let (engine, plan) = (Arc::clone(&engine), Arc::clone(&plan));
            thread::spawn(move || buggy_epoch_read(&engine, &probe(&plan)))
        };
        let (reports, bits) = reader.join().expect("reader task");
        let expected = if reports == 2 {
            after_warm
        } else {
            after_grown
        };
        assert_eq!(
            bits, expected,
            "epoch torn: {reports}-report bookkeeping with the other epoch's grid"
        );
        refresher.join().expect("refresher task");
    };
    let violation =
        model::check(scenario.clone()).expect_err("the checker must detect the torn epoch read");
    assert!(
        violation.message.contains("epoch torn"),
        "unexpected violation: {violation}"
    );
    // The token pins the exact interleaving: replaying it reproduces the
    // same failure, every time, with no search.
    let replayed = model::replay(&violation.schedule, scenario)
        .expect_err("replaying the violating schedule must reproduce the tear");
    assert!(
        replayed.message.contains("epoch torn"),
        "replay diverged: {replayed}"
    );
}

// ---------------------------------------------------------------------------
// Flight-recorder ring: the seqlock write/dump race (DESIGN.md §11)
// ---------------------------------------------------------------------------

/// A slot of the model ring — same field layout as
/// `felip_obs::flight::FlightRecorder`, minus the timestamp.
struct ModelSlot {
    stamp: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A miniature mirror of the flight recorder's seqlock protocol, built on
/// the `felip-sync` modelled atomics so every interleaving of a writer's
/// `record` against a concurrent `dump` is explored. The payload of event
/// `seq` is the pure function `(3·seq+1, 3·seq+2)`, so a torn read — one
/// field from one generation, the other from an overwriting generation —
/// is detectable by inspection of the dumped triple.
struct ModelRing {
    head: AtomicU64,
    slots: Vec<ModelSlot>,
}

impl ModelRing {
    fn new(cap: usize) -> ModelRing {
        ModelRing {
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| ModelSlot {
                    stamp: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Writer side, verbatim from `FlightRecorder::record`: claim a
    /// sequence, CAS the slot's stamp from its quiescent even generation
    /// to this generation's odd in-progress mark (dropping the event if
    /// the slot is busy or a newer generation already landed), publish
    /// the fields, commit (even stamp `2·seq+2`). The CAS claim is what
    /// keeps per-slot stamps monotonic; the checker caught the tear a
    /// blind `store` allows (an old writer's commit landing between a new
    /// writer's stamp and field stores), which is why the production
    /// recorder uses it.
    fn record(&self) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let claimed = 2 * seq + 1;
        let cur = slot.stamp.load(Ordering::SeqCst);
        if cur % 2 == 1
            || cur > claimed
            || slot
                .stamp
                .compare_exchange(cur, claimed, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
        {
            return;
        }
        slot.a.store(3 * seq + 1, Ordering::Relaxed);
        slot.b.store(3 * seq + 2, Ordering::Relaxed);
        slot.stamp.store(2 * seq + 2, Ordering::SeqCst);
    }

    /// Reader side, verbatim from `FlightRecorder::dump`: for each live
    /// sequence, accept the slot only if the stamp reads as committed for
    /// that exact generation both before *and* after the field loads.
    fn dump(&self) -> Vec<(u64, u64, u64)> {
        let head = self.head.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::new();
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            let committed = 2 * seq + 2;
            if slot.stamp.load(Ordering::SeqCst) != committed {
                continue;
            }
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            if slot.stamp.load(Ordering::SeqCst) != committed {
                continue;
            }
            events.push((seq, a, b));
        }
        events
    }

    /// The dump above with the seqlock's *second* stamp check removed —
    /// the mutation the checker must catch (see the mutation test below).
    fn dump_without_recheck(&self) -> Vec<(u64, u64, u64)> {
        let head = self.head.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::new();
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            if slot.stamp.load(Ordering::SeqCst) != 2 * seq + 2 {
                continue;
            }
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            events.push((seq, a, b));
        }
        events
    }
}

fn assert_untorn(events: &[(u64, u64, u64)], when: &str) {
    for &(seq, a, b) in events {
        assert!(
            a == 3 * seq + 1 && b == 3 * seq + 2,
            "{when}: torn event seq {seq}: ({a}, {b})"
        );
    }
}

/// Two writers racing a capacity-1 ring (so generation 1 overwrites
/// generation 0's slot) against a concurrent dump: in every interleaving
/// the dump yields only untorn events — each accepted triple belongs
/// entirely to one generation. After the writers quiesce a final dump
/// still never tears, and always reports `head == 2` recorded events.
#[test]
fn model_flight_ring_dump_is_never_torn() {
    let stats = model::check(|| {
        let ring = Arc::new(ModelRing::new(1));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.record())
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.dump())
        };
        let mid_race = reader.join().expect("reader task");
        assert_untorn(&mid_race, "concurrent dump");
        for w in writers {
            w.join().expect("writer task");
        }
        assert_eq!(ring.head.load(Ordering::SeqCst), 2, "both claims recorded");
        let settled = ring.dump();
        assert_untorn(&settled, "settled dump");
        // A quiesced capacity-1 ring exposes at most the newest event; it
        // may expose none when the older writer's in-flight overwrite was
        // the last store to land (the stamp then names a stale generation
        // and the slot is correctly skipped, counted as dropped).
        assert!(settled.len() <= 1, "capacity-1 ring dumped {settled:?}");
    })
    .expect("seqlock dump must never yield a torn event on any schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// Mutation test: drop the second stamp check and the checker must find
/// the torn read — a writer wrapping the ring overwrites the fields
/// between the reader's (single) stamp check and its field loads. This is
/// the schedule that makes the double-check load-bearing; if the model
/// scheduler stopped exploring it, this test fails before a regression in
/// the real `felip_obs::flight` reader could slip past.
#[test]
fn model_mutation_flight_ring_single_check_is_caught() {
    let scenario = || {
        let ring = Arc::new(ModelRing::new(1));
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.record();
                ring.record();
            })
        };
        let reader = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.dump_without_recheck())
        };
        let events = reader.join().expect("reader task");
        assert_untorn(&events, "single-check dump");
        writer.join().expect("writer task");
    };
    let violation = model::check(scenario)
        .expect_err("the checker must detect the torn read behind a single stamp check");
    assert!(
        violation.message.contains("torn event"),
        "unexpected violation: {violation}"
    );
    let replayed = model::replay(&violation.schedule, scenario)
        .expect_err("replaying the violating schedule must reproduce the tear");
    assert!(
        replayed.message.contains("torn event"),
        "replay diverged: {replayed}"
    );
}
