//! Model-checked concurrency tests for the ingestion pipeline (DESIGN.md
//! §14): every interleaving of the session/queue/snapshot sync operations
//! is explored by the `felip-sync` scheduler (up to its preemption bound),
//! so the PR-4 exactly-once invariants hold by exhaustion, not by luck.
//!
//! Compiled only under `--features model` (the shims route every lock,
//! condvar, and atomic through the model scheduler there); `cargo test -p
//! felip-server --features model model_` runs just these.

use std::time::Duration;

use felip_sync::model::{self, Config};
use felip_sync::{thread, Arc, Mutex};

use felip::aggregator::{Aggregator, OracleSet};
use felip::client::UserReport;
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};

use crate::loadgen;
use crate::queue::{BoundedQueue, PopResult};
use crate::server::{consistent_cut, AtomicStats};
use crate::session::{Session, SessionCtx};
use crate::wire::{encode_batch, encode_hello, Frame, FrameKind};

/// A tiny but real plan (one 8-bin attribute, 4 users) shared by every
/// schedule of a check: the plan is immutable, so building it once outside
/// the explored closure keeps each schedule cheap.
fn tiny_plan() -> (Arc<CollectionPlan>, Arc<OracleSet>) {
    let schema = Schema::new(vec![Attribute::numerical("a", 8)]).expect("static schema");
    let plan = Arc::new(
        CollectionPlan::build(&schema, 4, &FelipConfig::new(1.0), 5).expect("static plan"),
    );
    let oracles = Arc::new(OracleSet::build(&plan));
    (plan, oracles)
}

/// Two valid reports for the plan — the payload of every test batch.
fn two_reports(plan: &Arc<CollectionPlan>) -> Vec<UserReport> {
    (0..2)
        .map(|u| loadgen::user_report(plan, u, 0xfe11).expect("loadgen report"))
        .collect()
}

fn hello_frame(plan_hash: u64, client_id: u64) -> Frame {
    Frame {
        kind: FrameKind::Hello,
        plan_hash,
        payload: encode_hello(client_id),
    }
}

fn batch_frame(plan_hash: u64, batch_id: u64, reports: &[UserReport]) -> Frame {
    Frame {
        kind: FrameKind::ReportBatch,
        plan_hash,
        payload: encode_batch(batch_id, reports).expect("encode batch"),
    }
}

/// Pops exactly one batch (waiting as long as it takes), ingests it into
/// `shard`, and acknowledges it — a one-shot ingest worker.
fn drain_one(q: &BoundedQueue<Vec<UserReport>>, shard: &Mutex<Aggregator>) {
    loop {
        match q.pop_timeout(Duration::from_millis(1)) {
            PopResult::Item(batch) => {
                shard.lock().ingest_batch(&batch).expect("admitted batch");
                q.task_done();
                return;
            }
            PopResult::Empty => continue,
            PopResult::Done => return,
        }
    }
}

/// `BoundedQueue` quiescence is exact under every interleaving: a popped
/// batch keeps the queue non-quiescent until `task_done`, and once producer
/// and worker have joined the queue is quiescent again.
#[test]
fn model_queue_quiescence_is_exact() {
    let stats = model::check(|| {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.try_push(7).expect("capacity 2 cannot be full");
            })
        };
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || loop {
                match q.pop_timeout(Duration::from_millis(1)) {
                    PopResult::Item(v) => {
                        assert_eq!(v, 7);
                        assert!(
                            !q.is_quiescent(),
                            "popped item is in flight until task_done"
                        );
                        q.task_done();
                        return;
                    }
                    PopResult::Empty => continue,
                    PopResult::Done => panic!("queue closed unexpectedly"),
                }
            })
        };
        producer.join().expect("producer");
        worker.join().expect("worker");
        assert!(q.is_quiescent(), "drained and processed ⇒ quiescent");
    })
    .expect("quiescence invariant must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// Two connections racing the same client id serialise on the dedup lock:
/// in every interleaving exactly one batch is accepted, the queue holds
/// exactly one copy, and the cursor lands on the batch id — the fixed
/// check-then-push-then-advance is atomic.
#[test]
fn model_racing_sessions_accept_exactly_once() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let plan_hash = plan.schema_hash();
    let stats = model::check(move || {
        let ctx = Arc::new(SessionCtx::new(Arc::clone(&plan), Arc::clone(&oracles), vec![]));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let stats = Arc::new(AtomicStats::default());
        let spawn_conn = |_| {
            let (ctx, q, stats) = (Arc::clone(&ctx), Arc::clone(&q), Arc::clone(&stats));
            let reports = reports.clone();
            thread::spawn(move || {
                let mut session = Session::new();
                session.on_frame(hello_frame(plan_hash, 9), &ctx, &q, &stats);
                let out =
                    session.on_frame(batch_frame(plan_hash, 1, &reports), &ctx, &q, &stats);
                u32::from(out.accepted.is_some())
            })
        };
        let accepted: u32 = (0..2)
            .map(spawn_conn)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("conn task"))
            .sum();
        assert_eq!(accepted, 1, "same batch accepted {accepted} times");
        assert_eq!(q.len(), 1, "queue must hold the batch exactly once");
        let cursor = ctx.dedup.lock().get(&9).copied().unwrap_or(0);
        assert_eq!(cursor, 1, "cursor must land on the accepted batch");
    })
    .expect("exactly-once admission must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// The snapshot consistent cut can never observe an advanced cursor whose
/// batch is missing from the counts (acked-but-lost) or counted reports
/// whose cursor did not advance (double-count on resend): under every
/// interleaving of a session, an ingest worker, and the cut itself,
/// `reports in cut == cursor × batch size`.
#[test]
fn model_consistent_cut_counts_match_cursors() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let plan_hash = plan.schema_hash();
    let per_batch = reports.len() as u64;
    let stats = model::check(move || {
        let ctx = Arc::new(SessionCtx::new(Arc::clone(&plan), Arc::clone(&oracles), vec![]));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let stats = Arc::new(AtomicStats::default());
        let base = Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ));
        let shards = Arc::new(vec![Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ))]);
        let session = {
            let (ctx, q, stats) = (Arc::clone(&ctx), Arc::clone(&q), Arc::clone(&stats));
            let reports = reports.clone();
            thread::spawn(move || {
                let mut s = Session::new();
                s.on_frame(hello_frame(plan_hash, 3), &ctx, &q, &stats);
                let out = s.on_frame(batch_frame(plan_hash, 1, &reports), &ctx, &q, &stats);
                assert!(out.accepted.is_some(), "uncontended batch must be accepted");
            })
        };
        let worker = {
            let (q, shards) = (Arc::clone(&q), Arc::clone(&shards));
            thread::spawn(move || drain_one(&q, &shards[0]))
        };
        // The cut races the session and the worker; whatever it freezes
        // must be internally consistent.
        let (cut, pairs) = consistent_cut(&ctx, &plan, &oracles, &base, &shards, &[Arc::clone(&q)]);
        let cursor = pairs
            .iter()
            .find(|&&(c, _)| c == 3)
            .map(|&(_, b)| b)
            .unwrap_or(0);
        assert_eq!(
            cut.reports_ingested() as u64,
            cursor * per_batch,
            "cut counts disagree with cut cursors (cursor {cursor})"
        );
        session.join().expect("session task");
        worker.join().expect("worker task");
    })
    .expect("consistent cut must hold on every schedule");
    assert!(stats.schedules > 1, "exploration degenerated: {stats:?}");
}

/// The pre-review bug this crate's review fixed: the cursor check and the
/// queue push under *separate* dedup-lock holds. Two connections racing
/// the same batch can then both pass the check and both queue the batch —
/// a double count.
fn buggy_accept(
    ctx: &SessionCtx,
    q: &BoundedQueue<Vec<UserReport>>,
    client_id: u64,
    batch_id: u64,
    reports: Vec<UserReport>,
) -> bool {
    // Bug: the lock is dropped between the duplicate check and the push.
    let last = ctx.dedup.lock().get(&client_id).copied().unwrap_or(0);
    if batch_id <= last {
        return false;
    }
    if q.try_push(reports).is_err() {
        return false;
    }
    ctx.dedup.lock().insert(client_id, batch_id);
    true
}

/// Mutation test: the checker must *find* the pre-review race — and the
/// violation's schedule token must replay it deterministically. This is
/// what keeps the model suite honest: if the scheduler stopped exploring
/// the racing interleavings, this test would fail before a real regression
/// could slip past the invariant tests above.
#[test]
fn model_mutation_pre_review_ordering_is_caught() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let scenario = move || {
        let ctx = Arc::new(SessionCtx::new(Arc::clone(&plan), Arc::clone(&oracles), vec![]));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let race = |_| {
            let (ctx, q) = (Arc::clone(&ctx), Arc::clone(&q));
            let reports = reports.clone();
            thread::spawn(move || u32::from(buggy_accept(&ctx, &q, 9, 1, reports)))
        };
        let accepted: u32 = (0..2)
            .map(race)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("race task"))
            .sum();
        assert!(
            accepted <= 1 && q.len() <= 1,
            "batch double-queued: {accepted} accepts, queue depth {}",
            q.len()
        );
    };
    let violation = model::check(scenario.clone())
        .expect_err("the checker must detect the pre-review double-queue race");
    assert!(
        violation.message.contains("double-queued"),
        "unexpected violation: {violation}"
    );
    // The token pins the exact interleaving: replaying it reproduces the
    // same failure, every time, with no search.
    let replayed = model::replay(&violation.schedule, scenario)
        .expect_err("replaying the violating schedule must reproduce the bug");
    assert!(
        replayed.message.contains("double-queued"),
        "replay diverged: {replayed}"
    );
}

/// The racing-sessions scenario needs at least one involuntary preemption
/// to expose the mutation bug; with the budget forced to zero the buggy
/// ordering looks clean. Documents why `Config::preemption_bound` must
/// stay ≥ 2 (DESIGN.md §14).
#[test]
fn model_mutation_needs_preemptions() {
    let (plan, oracles) = tiny_plan();
    let reports = two_reports(&plan);
    let scenario = move || {
        let ctx = Arc::new(SessionCtx::new(Arc::clone(&plan), Arc::clone(&oracles), vec![]));
        let q = Arc::new(BoundedQueue::<Vec<UserReport>>::new(4));
        let race = |_| {
            let (ctx, q) = (Arc::clone(&ctx), Arc::clone(&q));
            let reports = reports.clone();
            thread::spawn(move || u32::from(buggy_accept(&ctx, &q, 9, 1, reports)))
        };
        let accepted: u32 = (0..2)
            .map(race)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("race task"))
            .sum();
        assert!(accepted <= 1 && q.len() <= 1, "batch double-queued");
    };
    let cfg = Config {
        preemption_bound: 0,
        ..Config::default()
    };
    model::check_with(cfg, scenario)
        .expect("without preemptions each task runs to completion and the race hides");
}
