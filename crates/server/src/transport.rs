//! The [`Transport`] abstraction over the frame read/write path.
//!
//! Production traffic flows over [`TcpTransport`] (a thin deadline-aware
//! wrapper around `TcpStream` + the wire codec); the deterministic chaos
//! harness drives the *same* session logic over
//! [`crate::simharness::SimTransport`], an in-memory frame pipe on a
//! virtual clock. Everything above this trait — the session state machine,
//! dedup, backpressure — is transport-agnostic, which is what makes the
//! fault-injection results transfer to the real server.

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::{read_frame, write_frame, Frame, WireError};

/// What one receive attempt produced.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A complete, checksum-verified frame.
    Frame(Frame),
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// No frame is currently available (non-blocking transports only; the
    /// TCP transport blocks until one of the other outcomes).
    NoData,
    /// No bytes arrived within the idle deadline — the connection reaper's
    /// signal to close this connection.
    Idle,
    /// The server is shutting down; stop serving this connection.
    Shutdown,
    /// The stream is broken: garbled framing, a mid-frame stall past the
    /// read deadline, or a transport error.
    Err(WireError),
}

/// A bidirectional frame pipe: the server's session loop and the client
/// speak [`Frame`]s through this, never raw sockets.
pub trait Transport {
    /// Sends one frame, blocking until it is written (or the write deadline
    /// expires on deadline-aware transports).
    fn send(&mut self, frame: &Frame) -> Result<(), WireError>;

    /// Attempts to receive one frame; see [`RecvOutcome`] for the cases.
    fn recv(&mut self) -> RecvOutcome;
}

/// Why a deadline read bailed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bail {
    Shutdown,
    Idle,
    Stall,
}

/// A `Read` adapter enforcing the per-connection deadlines: waiting for the
/// *first* byte of a frame is bounded by `idle_timeout` (a quiet client),
/// while finishing a frame that has started arriving is bounded by
/// `read_timeout` (a stalled peer mid-frame — an error, not idleness).
/// The shutdown flag is polled between short socket timeouts.
struct DeadlineRead<'a, F: Fn() -> bool> {
    stream: &'a TcpStream,
    stop: &'a F,
    start: Instant,
    got_any: bool,
    idle_timeout: Duration,
    read_timeout: Duration,
    bail: Option<Bail>,
}

impl<F: Fn() -> bool> Read for DeadlineRead<'_, F> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if (self.stop)() {
                self.bail = Some(Bail::Shutdown);
                return Err(io::ErrorKind::ConnectionAborted.into());
            }
            let elapsed = self.start.elapsed();
            if !self.got_any && elapsed >= self.idle_timeout {
                self.bail = Some(Bail::Idle);
                return Err(io::ErrorKind::TimedOut.into());
            }
            if self.got_any && elapsed >= self.read_timeout {
                self.bail = Some(Bail::Stall);
                return Err(io::ErrorKind::TimedOut.into());
            }
            match (&mut &*self.stream).read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    if !self.got_any {
                        // The frame's first byte starts the stall clock:
                        // `read_timeout` bounds time since that byte, not
                        // since `recv` began waiting — a frame that merely
                        // *arrived* late (but within the idle window) must
                        // not be torn down as a mid-frame stall.
                        self.got_any = true;
                        self.start = Instant::now();
                    }
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The production transport: frames over a `TcpStream` with read/idle
/// deadlines and a shutdown poll.
pub struct TcpTransport<'a, F: Fn() -> bool> {
    stream: &'a TcpStream,
    stop: &'a F,
    read_timeout: Duration,
    idle_timeout: Duration,
}

impl<'a, F: Fn() -> bool> TcpTransport<'a, F> {
    /// Wraps `stream`, arming the socket's poll timeout (short, so `stop`
    /// and the deadlines are checked frequently) and the write deadline.
    pub fn new(
        stream: &'a TcpStream,
        stop: &'a F,
        read_timeout: Duration,
        write_timeout: Duration,
        idle_timeout: Duration,
    ) -> Result<Self, WireError> {
        stream.set_nodelay(true).map_err(WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .map_err(WireError::Io)?;
        stream
            .set_write_timeout(Some(write_timeout))
            .map_err(WireError::Io)?;
        Ok(TcpTransport {
            stream,
            stop,
            read_timeout,
            idle_timeout,
        })
    }
}

impl<F: Fn() -> bool> Transport for TcpTransport<'_, F> {
    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        // One `write_all` of the already-contiguous encoding; a `BufWriter`
        // here would only add an 8 KiB allocation and an extra copy per
        // reply frame.
        write_frame(&mut &*self.stream, frame).map_err(WireError::Io)
    }

    fn recv(&mut self) -> RecvOutcome {
        let mut reader = DeadlineRead {
            stream: self.stream,
            stop: self.stop,
            start: Instant::now(),
            got_any: false,
            idle_timeout: self.idle_timeout,
            read_timeout: self.read_timeout,
            bail: None,
        };
        match read_frame(&mut reader) {
            Ok(Some(frame)) => RecvOutcome::Frame(frame),
            Ok(None) => RecvOutcome::Eof,
            Err(WireError::Io(_)) if reader.bail == Some(Bail::Shutdown) => RecvOutcome::Shutdown,
            Err(WireError::Io(_)) if reader.bail == Some(Bail::Idle) => RecvOutcome::Idle,
            Err(WireError::Io(e)) if reader.bail == Some(Bail::Stall) => RecvOutcome::Err(
                WireError::Io(io::Error::new(e.kind(), "read deadline exceeded mid-frame")),
            ),
            Err(e) => RecvOutcome::Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameKind;
    use felip_sync::thread;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_round_trip_over_tcp() {
        let (client, server) = pair();
        let stop = || false;
        let mut a = TcpTransport::new(
            &client,
            &stop,
            Duration::from_secs(1),
            Duration::from_secs(1),
            Duration::from_secs(1),
        )
        .unwrap();
        let mut b = TcpTransport::new(
            &server,
            &stop,
            Duration::from_secs(1),
            Duration::from_secs(1),
            Duration::from_secs(1),
        )
        .unwrap();
        let frame = Frame::control(FrameKind::Hello, 99);
        a.send(&frame).unwrap();
        match b.recv() {
            RecvOutcome::Frame(f) => assert_eq!(f, frame),
            other => panic!("expected frame, got {other:?}"),
        }
        drop(client);
        assert!(matches!(b.recv(), RecvOutcome::Eof));
    }

    #[test]
    fn idle_deadline_fires_without_data() {
        let (client, server) = pair();
        let stop = || false;
        let mut t = TcpTransport::new(
            &server,
            &stop,
            Duration::from_secs(5),
            Duration::from_secs(5),
            Duration::from_millis(60),
        )
        .unwrap();
        let start = Instant::now();
        assert!(matches!(t.recv(), RecvOutcome::Idle));
        assert!(start.elapsed() >= Duration::from_millis(50));
        drop(client);
    }

    #[test]
    fn mid_frame_stall_is_an_error_not_idle() {
        let (client, server) = pair();
        let stop = || false;
        let mut t = TcpTransport::new(
            &server,
            &stop,
            Duration::from_millis(80),
            Duration::from_secs(5),
            Duration::from_secs(5),
        )
        .unwrap();
        // Send half a frame and stall.
        let bytes = Frame::control(FrameKind::Hello, 1).encode();
        let half = &bytes[..bytes.len() / 2];
        thread::scope(|s| {
            s.spawn(|| {
                use std::io::Write;
                (&client).write_all(half).unwrap();
                (&client).flush().unwrap();
                thread::sleep(Duration::from_millis(300));
            });
            match t.recv() {
                RecvOutcome::Err(WireError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::TimedOut)
                }
                other => panic!("expected stall error, got {other:?}"),
            }
        });
    }

    #[test]
    fn late_first_byte_within_idle_window_is_not_a_stall() {
        // read_timeout (80 ms) < first-byte delay (200 ms) < idle_timeout
        // (5 s): the frame arrives late but healthy, and must be received —
        // the stall clock starts at the first byte, not at recv() entry.
        let (client, server) = pair();
        let stop = || false;
        let mut t = TcpTransport::new(
            &server,
            &stop,
            Duration::from_millis(80),
            Duration::from_secs(5),
            Duration::from_secs(5),
        )
        .unwrap();
        let frame = Frame::control(FrameKind::Hello, 7);
        let bytes = frame.encode();
        thread::scope(|s| {
            s.spawn(|| {
                use std::io::Write;
                thread::sleep(Duration::from_millis(200));
                (&client).write_all(&bytes).unwrap();
                (&client).flush().unwrap();
            });
            match t.recv() {
                RecvOutcome::Frame(f) => assert_eq!(f, frame),
                other => panic!("healthy late frame was torn down: {other:?}"),
            }
        });
    }

    #[test]
    fn shutdown_poll_interrupts_recv() {
        use felip_sync::atomic::{AtomicBool, Ordering};
        let (client, server) = pair();
        let flag = AtomicBool::new(false);
        let stop = || flag.load(Ordering::SeqCst);
        let mut t = TcpTransport::new(
            &server,
            &stop,
            Duration::from_secs(5),
            Duration::from_secs(5),
            Duration::from_secs(5),
        )
        .unwrap();
        thread::scope(|s| {
            s.spawn(|| {
                thread::sleep(Duration::from_millis(40));
                flag.store(true, Ordering::SeqCst);
            });
            assert!(matches!(t.recv(), RecvOutcome::Shutdown));
        });
        drop(client);
    }
}
