//! Seeded, deterministic fault injection for the simulation harness.
//!
//! A [`FaultSchedule`] is a pure function of its seed and an internal draw
//! counter: the i-th decision of a run is `mix64(derive_seed(seed, i))`
//! reduced to the needed range, so replaying the same seed replays the
//! exact fault sequence — byte-for-byte, which is what makes a failing
//! chaos seed reproducible from the CLI (`perf_smoke --chaos --seed N`).
//!
//! Faults model what real deployments see between a reporting client and
//! the aggregation server: lost and truncated frames, duplicated and
//! reordered delivery, bit corruption in transit, connection resets,
//! stalled reads, and torn snapshot writes (short write / ENOSPC). The
//! probabilities are expressed in parts-per-million per *logical frame
//! send*, so one knob scales chaos intensity without changing the stream
//! of decisions.

use std::collections::HashSet;

use felip_common::hash::mix64;
use felip_common::rng::derive_seed;

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The frame is silently never delivered.
    Drop,
    /// Only a prefix of the frame's bytes arrives (torn write / early FIN).
    Truncate,
    /// The frame is delivered twice.
    Duplicate,
    /// The frame is delivered late, after frames sent later.
    Reorder,
    /// One byte of the frame is flipped in transit.
    Corrupt,
    /// The connection is reset; neither side can use it afterwards.
    Reset,
    /// Delivery stalls long enough to trip the receiver's deadline.
    Stall,
}

/// Per-fault-kind probabilities in parts per million, applied independently
/// per logical frame send (first match in declaration order wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// P(frame dropped), ppm.
    pub drop_ppm: u32,
    /// P(frame truncated), ppm.
    pub truncate_ppm: u32,
    /// P(frame duplicated), ppm.
    pub duplicate_ppm: u32,
    /// P(frame reordered), ppm.
    pub reorder_ppm: u32,
    /// P(one byte corrupted), ppm.
    pub corrupt_ppm: u32,
    /// P(connection reset at this send), ppm.
    pub reset_ppm: u32,
    /// P(delivery stalled past the read deadline), ppm.
    pub stall_ppm: u32,
    /// P(a snapshot write is torn/corrupted before it hits "disk"), ppm —
    /// drawn once per snapshot write, not per frame.
    pub snapshot_corrupt_ppm: u32,
}

impl FaultConfig {
    /// No faults at all (the sim then reduces to a lossless run).
    pub const NONE: FaultConfig = FaultConfig {
        drop_ppm: 0,
        truncate_ppm: 0,
        duplicate_ppm: 0,
        reorder_ppm: 0,
        corrupt_ppm: 0,
        reset_ppm: 0,
        stall_ppm: 0,
        snapshot_corrupt_ppm: 0,
    };

    /// Every fault kind enabled at a rate that makes multi-fault runs the
    /// norm on a few-hundred-frame simulation (~3% per frame overall,
    /// 20% per snapshot write).
    pub const ALL: FaultConfig = FaultConfig {
        drop_ppm: 6_000,
        truncate_ppm: 4_000,
        duplicate_ppm: 6_000,
        reorder_ppm: 6_000,
        corrupt_ppm: 4_000,
        reset_ppm: 3_000,
        stall_ppm: 3_000,
        snapshot_corrupt_ppm: 200_000,
    };

    /// Sum of the per-frame fault probabilities (snapshot corruption is
    /// drawn separately).
    fn total_frame_ppm(&self) -> u64 {
        self.drop_ppm as u64
            + self.truncate_ppm as u64
            + self.duplicate_ppm as u64
            + self.reorder_ppm as u64
            + self.corrupt_ppm as u64
            + self.reset_ppm as u64
            + self.stall_ppm as u64
    }
}

/// The deterministic decision stream: seed + draw counter in, faults out.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    draws: u64,
    config: FaultConfig,
    /// Faults injected so far, for reporting.
    pub injected: u64,
    /// Draw indices whose frame fault is *suppressed* (delivered normally
    /// instead). The draw stream is unshifted — every other decision stays
    /// put — which is what lets [`crate::simharness::minimize_failing_seed`]
    /// remove faults one at a time from a failing run.
    suppressed: HashSet<u64>,
    /// `(draw index, kind)` of every frame fault that actually fired, in
    /// firing order — the raw material of the schedule token.
    fired: Vec<(u64, FaultKind)>,
}

impl FaultSchedule {
    /// A schedule driven by `seed` with the given probabilities.
    pub fn new(seed: u64, config: FaultConfig) -> FaultSchedule {
        FaultSchedule::with_suppressed(seed, config, HashSet::new())
    }

    /// A schedule that replays `seed` but delivers the frame sends at the
    /// given draw indices normally even when the seed says to fault them.
    pub fn with_suppressed(seed: u64, config: FaultConfig, suppressed: HashSet<u64>) -> Self {
        FaultSchedule {
            seed,
            draws: 0,
            config,
            injected: 0,
            suppressed,
            fired: Vec::new(),
        }
    }

    /// The frame faults that fired this run, as `(draw index, kind)`.
    pub fn fired(&self) -> &[(u64, FaultKind)] {
        &self.fired
    }

    /// A printable token that replays this exact fault schedule:
    /// `seed=S` plus, when faults were suppressed during minimization,
    /// `;suppress=i,j,…`. Feed it back through
    /// [`FaultSchedule::parse_token`].
    pub fn token(&self) -> String {
        if self.suppressed.is_empty() {
            return format!("seed={}", self.seed);
        }
        let mut idx: Vec<u64> = self.suppressed.iter().copied().collect();
        idx.sort_unstable();
        let list: Vec<String> = idx.iter().map(u64::to_string).collect();
        format!("seed={};suppress={}", self.seed, list.join(","))
    }

    /// Parses a [`FaultSchedule::token`] back into `(seed, suppressed)`.
    pub fn parse_token(token: &str) -> Result<(u64, HashSet<u64>), String> {
        let mut seed = None;
        let mut suppressed = HashSet::new();
        for part in token.split(';').filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some(("seed", v)) => {
                    seed = Some(v.parse().map_err(|e| format!("bad seed {v:?}: {e}"))?);
                }
                Some(("suppress", v)) => {
                    for i in v.split(',').filter(|s| !s.is_empty()) {
                        suppressed.insert(i.parse().map_err(|e| format!("bad index {i:?}: {e}"))?);
                    }
                }
                _ => return Err(format!("unrecognised token part {part:?}")),
            }
        }
        match seed {
            Some(s) => Ok((s, suppressed)),
            None => Err(format!("token {token:?} is missing seed=")),
        }
    }

    /// The next raw 64-bit decision value; advances the counter.
    fn draw(&mut self) -> u64 {
        let v = mix64(derive_seed(self.seed, self.draws));
        self.draws += 1;
        v
    }

    /// A uniform value in `0..bound` (`bound > 0`).
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.draw() % bound
    }

    /// Decides the fate of one logical frame send. `None` means the frame
    /// is delivered normally.
    pub fn next_frame_fault(&mut self) -> Option<FaultKind> {
        let total = self.config.total_frame_ppm();
        if total == 0 {
            // Still consume one draw so enabling a single fault kind does
            // not shift every other decision in the stream.
            self.draw();
            return None;
        }
        let idx = self.draws;
        let x = self.draw() % 1_000_000;
        let c = &self.config;
        let mut acc = 0u64;
        let table = [
            (FaultKind::Drop, c.drop_ppm),
            (FaultKind::Truncate, c.truncate_ppm),
            (FaultKind::Duplicate, c.duplicate_ppm),
            (FaultKind::Reorder, c.reorder_ppm),
            (FaultKind::Corrupt, c.corrupt_ppm),
            (FaultKind::Reset, c.reset_ppm),
            (FaultKind::Stall, c.stall_ppm),
        ];
        for (kind, ppm) in table {
            acc += ppm as u64;
            if x < acc {
                if self.suppressed.contains(&idx) {
                    // Minimization: this fault is switched off, the frame
                    // goes through; the draw already happened so the rest
                    // of the decision stream is untouched.
                    return None;
                }
                self.injected += 1;
                self.fired.push((idx, kind));
                return Some(kind);
            }
        }
        None
    }

    /// Whether this snapshot write is torn (drawn once per write).
    pub fn snapshot_write_corrupts(&mut self) -> bool {
        let x = self.draw() % 1_000_000;
        let hit = x < self.config.snapshot_corrupt_ppm as u64;
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Mangles snapshot bytes the way a torn write would: either truncate
    /// (short write / ENOSPC) or flip a byte (bit rot).
    pub fn mangle_snapshot(&mut self, bytes: &[u8]) -> Vec<u8> {
        if bytes.is_empty() {
            return Vec::new();
        }
        if self.draw().is_multiple_of(2) {
            let keep = self.draw_below(bytes.len() as u64) as usize;
            bytes[..keep].to_vec()
        } else {
            let mut out = bytes.to_vec();
            let idx = self.draw_below(out.len() as u64) as usize;
            let bit = 1u8 << (self.draw_below(8) as u8);
            out[idx] ^= bit;
            out
        }
    }

    /// Corrupts one byte of an in-flight frame.
    pub fn corrupt_frame(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let idx = self.draw_below(bytes.len() as u64) as usize;
        let bit = 1u8 << (self.draw_below(8) as u8);
        bytes[idx] ^= bit;
    }

    /// Truncates an in-flight frame to a strict prefix.
    pub fn truncate_frame(&mut self, bytes: &[u8]) -> Vec<u8> {
        if bytes.is_empty() {
            return Vec::new();
        }
        let keep = self.draw_below(bytes.len() as u64) as usize;
        bytes[..keep].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identical_decisions() {
        let mut a = FaultSchedule::new(7, FaultConfig::ALL);
        let mut b = FaultSchedule::new(7, FaultConfig::ALL);
        for _ in 0..10_000 {
            assert_eq!(a.next_frame_fault(), b.next_frame_fault());
        }
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultSchedule::new(7, FaultConfig::ALL);
        let mut b = FaultSchedule::new(8, FaultConfig::ALL);
        let va: Vec<_> = (0..1_000).map(|_| a.next_frame_fault()).collect();
        let vb: Vec<_> = (0..1_000).map(|_| b.next_frame_fault()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn all_fault_kinds_eventually_fire() {
        let mut s = FaultSchedule::new(3, FaultConfig::ALL);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200_000 {
            if let Some(k) = s.next_frame_fault() {
                seen.insert(k);
            }
        }
        for kind in [
            FaultKind::Drop,
            FaultKind::Truncate,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Corrupt,
            FaultKind::Reset,
            FaultKind::Stall,
        ] {
            assert!(seen.contains(&kind), "{kind:?} never fired");
        }
    }

    #[test]
    fn no_faults_config_never_fires_but_still_draws() {
        let mut s = FaultSchedule::new(1, FaultConfig::NONE);
        for _ in 0..1_000 {
            assert_eq!(s.next_frame_fault(), None);
        }
        assert_eq!(s.injected, 0);
        // The counter advanced: enabling faults later starts from the same
        // stream position as a run that had them all along.
        assert_eq!(s.draws, 1_000);
    }

    #[test]
    fn mangled_snapshots_differ_from_original() {
        let mut s = FaultSchedule::new(5, FaultConfig::ALL);
        let bytes: Vec<u8> = (0..128u8).collect();
        for _ in 0..32 {
            let m = s.mangle_snapshot(&bytes);
            assert_ne!(m, bytes, "mangle must change the bytes");
        }
    }

    #[test]
    fn corrupt_and_truncate_change_frames() {
        let mut s = FaultSchedule::new(9, FaultConfig::ALL);
        let original: Vec<u8> = (0..64u8).collect();
        let mut corrupted = original.clone();
        s.corrupt_frame(&mut corrupted);
        assert_ne!(corrupted, original);
        let truncated = s.truncate_frame(&original);
        assert!(truncated.len() < original.len());
    }
}
