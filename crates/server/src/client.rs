//! The client side of the wire protocol: connect, handshake, send report
//! batches, honour backpressure.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use felip::client::UserReport;

use crate::wire::{
    decode_ack, encode_reports, read_frame, write_frame, Frame, FrameKind, WireError,
};

/// Server verdict on one `ReportBatch` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReply {
    /// Accepted; carries the number of reports ingested.
    Ack(u32),
    /// The server's ingest queue was full — back off and resend the batch.
    Retry,
}

/// A connected, handshaken ingestion client.
pub struct Client {
    stream: TcpStream,
    plan_hash: u64,
}

impl Client {
    /// Connects to the server and performs the `Hello` handshake, proving
    /// both sides hold the same `CollectionPlan`.
    pub fn connect(addr: impl ToSocketAddrs, plan_hash: u64) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        let mut client = Client { stream, plan_hash };
        client.send(&Frame::control(FrameKind::Hello, plan_hash))?;
        match client.read_reply()? {
            (FrameKind::Ack, _) => Ok(client),
            (kind, payload) => Err(reply_error(kind, &payload)),
        }
    }

    /// Sends one batch of reports and returns the server's verdict.
    ///
    /// A [`BatchReply::Retry`] means the batch was *not* ingested; the
    /// caller decides when to resend (see [`Client::send_batch_retrying`]).
    pub fn send_batch(&mut self, reports: &[UserReport]) -> Result<BatchReply, WireError> {
        let frame = Frame {
            kind: FrameKind::ReportBatch,
            plan_hash: self.plan_hash,
            payload: encode_reports(reports)?,
        };
        self.send(&frame)?;
        match self.read_reply()? {
            (FrameKind::Ack, payload) => Ok(BatchReply::Ack(decode_ack(&payload)?)),
            (FrameKind::Retry, _) => Ok(BatchReply::Retry),
            (kind, payload) => Err(reply_error(kind, &payload)),
        }
    }

    /// Sends a batch, backing off and resending on RETRY until accepted.
    /// Returns how many RETRY responses were absorbed.
    pub fn send_batch_retrying(&mut self, reports: &[UserReport]) -> Result<u32, WireError> {
        let mut retries = 0u32;
        let mut backoff = Duration::from_micros(200);
        loop {
            match self.send_batch(reports)? {
                BatchReply::Ack(_) => return Ok(retries),
                BatchReply::Retry => {
                    retries += 1;
                    std::thread::sleep(backoff);
                    // Exponential backoff, capped: stay responsive without
                    // hammering a saturated server.
                    backoff = (backoff * 2).min(Duration::from_millis(20));
                }
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let mut w = BufWriter::new(&self.stream);
        write_frame(&mut w, frame).map_err(WireError::Io)
    }

    fn read_reply(&mut self) -> Result<(FrameKind, Vec<u8>), WireError> {
        match read_frame(&mut &self.stream)? {
            Some(f) => Ok((f.kind, f.payload)),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }
}

fn reply_error(kind: FrameKind, payload: &[u8]) -> WireError {
    match kind {
        FrameKind::Error => WireError::Rejected(String::from_utf8_lossy(payload).into_owned()),
        other => WireError::Malformed(format!("unexpected {other:?} reply")),
    }
}
