//! The client side of the wire protocol: connect, handshake with a stable
//! client identity, send numbered report batches, honour backpressure with
//! a jittered, budget-bounded retry policy.
//!
//! Exactly-once from the client's side: every batch carries a sequence
//! number (`1, 2, 3, …` per client). If an ack is lost the client re-sends
//! the *same* numbered batch; the server recognises the duplicate and acks
//! without double-counting. On reconnect the `Hello` ack tells the client
//! the highest batch the server already accepted, so nothing accepted is
//! ever re-sent.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use felip_sync::atomic::{AtomicU64, Ordering};
use felip_sync::thread;

use felip::client::UserReport;
use felip_common::hash::mix64;
use felip_common::rng::derive_seed;

use crate::wire::{
    decode_ack, decode_query_reply, encode_batch, encode_hello, encode_query, read_frame,
    write_frame, Frame, FrameKind, QueryAnswer, QueryMode, QueryRequest, WireError,
};
use felip_common::Predicate;

/// Process-wide allocator for default client ids (`connect` uses it;
/// `connect_with` lets callers pin ids for reproducible runs).
static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

/// Server verdict on one `ReportBatch` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReply {
    /// Accepted; carries the number of reports ingested.
    Ack(u32),
    /// The server's ingest queue was full — back off and resend the batch.
    Retry,
}

/// How a client spaces resends: exponential backoff from `base` capped at
/// `cap`, each delay jittered deterministically from `jitter_seed` (so two
/// clients hitting the same full queue don't retry in lockstep), the whole
/// thing bounded by `max_attempts` before the send fails with
/// [`WireError::BudgetExhausted`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total send attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Generous budget: under sustained backpressure the capped delay
        // makes 100 attempts ~2s of patience, after which the caller
        // learns the server is truly saturated.
        RetryPolicy {
            max_attempts: 100,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            jitter_seed: 0x5eed_c0de,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (1-based): exponential, capped,
    /// multiplied by a jitter factor in `[0.5, 1.0]` drawn deterministically
    /// from the policy's seed and the attempt number.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.min(20);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .max(self.base);
        let draw = mix64(derive_seed(self.jitter_seed, attempt as u64));
        let frac = 500_000 + draw % 500_001; // parts-per-million in [0.5, 1.0]
        let nanos = (raw.as_nanos() as u64).saturating_mul(frac) / 1_000_000;
        Duration::from_nanos(nanos)
    }
}

/// A connected, handshaken ingestion client.
///
/// The client keeps its resolved server addresses and its wire identity,
/// so [`Client::reconnect`] re-establishes the *same* identity after the
/// connection is lost (idle reap, mid-frame stall, reset). The `Hello`
/// ack then resyncs `last_acked`, which is what makes exactly-once hold
/// across reconnects — a fresh id would let the server re-count batches
/// it already accepted under the old one.
pub struct Client {
    stream: TcpStream,
    addrs: Vec<SocketAddr>,
    plan_hash: u64,
    client_id: u64,
    last_acked: u64,
    policy: RetryPolicy,
    next_query_id: u64,
}

/// Dials the first reachable address of a resolved set.
fn dial(addrs: &[SocketAddr]) -> Result<TcpStream, WireError> {
    let mut last_err: Option<io::Error> = None;
    for addr in addrs {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(WireError::Io)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(WireError::Io(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses to dial")
    })))
}

impl Client {
    /// Connects with a fresh process-unique client id and the default
    /// retry policy, and performs the `Hello` handshake, proving both
    /// sides hold the same `CollectionPlan`.
    ///
    /// The identity lives in the returned `Client` and survives
    /// [`Client::reconnect`]; callers that need dedup continuity across
    /// *processes* (resuming an interrupted load) should pin an explicit
    /// id via [`Client::connect_with`] instead.
    pub fn connect(addr: impl ToSocketAddrs, plan_hash: u64) -> Result<Client, WireError> {
        let id = NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed);
        Client::connect_with(addr, plan_hash, id, RetryPolicy::default())
    }

    /// Connects as a specific client id with an explicit retry policy.
    /// Reconnecting with the id of an earlier session resumes its batch
    /// sequence where the server left off.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        plan_hash: u64,
        client_id: u64,
        policy: RetryPolicy,
    ) -> Result<Client, WireError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(WireError::Io)?.collect();
        let stream = dial(&addrs)?;
        let mut client = Client {
            stream,
            addrs,
            plan_hash,
            client_id,
            last_acked: 0,
            policy,
            next_query_id: 0,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Re-dials the server and re-handshakes with the *same* client id,
    /// resyncing `last_acked` from the `Hello` ack. Batches the server
    /// already accepted under this identity are therefore never re-sent —
    /// the exactly-once guarantee survives lost connections.
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        felip_obs::counter!("client.reconnect", 1, "connections");
        self.stream = dial(&self.addrs)?;
        self.handshake()
    }

    /// Sends `Hello` and adopts the server's view of the highest batch it
    /// accepted for this id (the server is the source of truth — a resume
    /// from an older snapshot may legitimately wind the cursor back, and
    /// the gap check would reject ids ahead of it).
    fn handshake(&mut self) -> Result<(), WireError> {
        self.send(&Frame {
            kind: FrameKind::Hello,
            plan_hash: self.plan_hash,
            payload: encode_hello(self.client_id),
        })?;
        match self.read_reply()? {
            (FrameKind::Ack, payload) => {
                let (last_acked, _) = decode_ack(&payload)?;
                self.last_acked = last_acked;
                Ok(())
            }
            (kind, payload) => Err(reply_error(kind, &payload)),
        }
    }

    /// This client's wire identity.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Highest batch id the server has acknowledged for this client.
    pub fn last_acked(&self) -> u64 {
        self.last_acked
    }

    /// Sends one batch of reports (as batch `last_acked + 1`) and returns
    /// the server's verdict.
    ///
    /// A [`BatchReply::Retry`] means the batch was *not* ingested; the
    /// caller decides when to resend (see [`Client::send_batch_retrying`]).
    pub fn send_batch(&mut self, reports: &[UserReport]) -> Result<BatchReply, WireError> {
        let batch_id = self.last_acked + 1;
        let frame = Frame {
            kind: FrameKind::ReportBatch,
            plan_hash: self.plan_hash,
            payload: encode_batch(batch_id, reports)?,
        };
        self.send(&frame)?;
        loop {
            match self.read_reply()? {
                (FrameKind::Ack, payload) => {
                    let (acked_id, count) = decode_ack(&payload)?;
                    if acked_id < batch_id {
                        // A stale ack for an earlier batch (duplicate
                        // delivery); keep waiting for ours.
                        continue;
                    }
                    self.last_acked = batch_id;
                    return Ok(BatchReply::Ack(count));
                }
                (FrameKind::Retry, _) => return Ok(BatchReply::Retry),
                (kind, payload) => return Err(reply_error(kind, &payload)),
            }
        }
    }

    /// Sends a batch, backing off and resending on RETRY — and surviving a
    /// lost connection by [`Client::reconnect`]ing under the same identity
    /// — per the client's [`RetryPolicy`]. Returns how many retried
    /// attempts were absorbed, or [`WireError::BudgetExhausted`] once the
    /// attempt budget is spent.
    ///
    /// If the connection died after the server accepted the batch but
    /// before the ack arrived, the reconnect handshake reveals it (the
    /// `Hello` ack covers the batch's id) and the batch is *not* re-sent.
    pub fn send_batch_retrying(&mut self, reports: &[UserReport]) -> Result<u32, WireError> {
        // The id this call's batch will be (or was) sent under; acked means
        // these reports are counted, whichever connection carried them.
        let target = self.last_acked + 1;
        let mut attempts = 0u32;
        loop {
            if self.last_acked >= target {
                // A reconnect handshake showed the server already accepted
                // this batch — the ack was lost in flight, not the batch.
                return Ok(attempts);
            }
            attempts += 1;
            match self.send_batch(reports) {
                Ok(BatchReply::Ack(_)) => return Ok(attempts - 1),
                Ok(BatchReply::Retry) => {
                    if attempts >= self.policy.max_attempts {
                        felip_obs::counter!("client.retry.exhausted", 1, "batches");
                        return Err(WireError::BudgetExhausted { attempts });
                    }
                    thread::sleep(self.policy.backoff(attempts));
                }
                Err(WireError::Io(_)) => {
                    // The connection is gone (reaped while we backed off,
                    // stalled, reset). Burn an attempt, back off, and come
                    // back as the same identity; a failed reconnect just
                    // burns another attempt on the next lap.
                    if attempts >= self.policy.max_attempts {
                        felip_obs::counter!("client.retry.exhausted", 1, "batches");
                        return Err(WireError::BudgetExhausted { attempts });
                    }
                    thread::sleep(self.policy.backoff(attempts));
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one v5 `Query` and waits for its `QueryReply`. The request's
    /// correlation id is derived from the client id and an internal
    /// counter; stale replies (mismatched ids) are skipped.
    pub fn query(
        &mut self,
        predicates: Vec<Predicate>,
        mode: QueryMode,
    ) -> Result<QueryAnswer, WireError> {
        self.next_query_id = self.next_query_id.wrapping_add(1);
        let req = QueryRequest {
            query_id: mix64(self.client_id ^ self.next_query_id),
            mode,
            predicates,
        };
        let frame = Frame {
            kind: FrameKind::Query,
            plan_hash: self.plan_hash,
            payload: encode_query(&req)?,
        };
        self.send(&frame)?;
        loop {
            match self.read_reply()? {
                (FrameKind::QueryReply, payload) => {
                    let ans = decode_query_reply(&payload)?;
                    if ans.query_id != req.query_id {
                        continue;
                    }
                    return Ok(ans);
                }
                (kind, payload) => return Err(reply_error(kind, &payload)),
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        // The encoding is already one contiguous buffer; write it straight
        // through instead of paying a `BufWriter` allocation per frame.
        write_frame(&mut &self.stream, frame).map_err(WireError::Io)
    }

    fn read_reply(&mut self) -> Result<(FrameKind, Vec<u8>), WireError> {
        match read_frame(&mut &self.stream)? {
            Some(f) => Ok((f.kind, f.payload)),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }
}

fn reply_error(kind: FrameKind, payload: &[u8]) -> WireError {
    match kind {
        FrameKind::Error => WireError::Rejected(String::from_utf8_lossy(payload).into_owned()),
        other => WireError::Malformed(format!("unexpected {other:?} reply")),
    }
}

/// What one [`PipelinedClient::pump_encoded`] run observed.
#[derive(Debug, Default)]
pub struct PumpStats {
    /// Resyncs performed (backoff + reconnect + resend-from-cursor),
    /// whether triggered by RETRY backpressure or a lost connection.
    pub resyncs: u32,
    /// Per-frame send→ack round trips, in microseconds.
    pub frame_rtt_us: Vec<f64>,
}

/// A windowed, pre-encoded-frame ingestion client: the serve loadgen's
/// hot path.
///
/// [`Client`] is strictly request/response — one batch in flight, one
/// round trip of latency per frame. `PipelinedClient` instead streams
/// frames that were encoded *ahead of time* (so neither report encoding
/// nor CRC shows up on the timed path) and keeps up to `window` frames
/// unacknowledged, hiding the round trip entirely on a healthy link.
///
/// ## Resync-on-anomaly
///
/// Pipelining changes what RETRY means: by the time the server answers
/// RETRY for batch `b`, batches `b+1..` are already in flight, and the
/// server will gap-reject them (its cursor never advanced past `b-1`)
/// and close the connection. Rather than special-case that cascade, the
/// client treats *any* anomaly — RETRY, an error reply, EOF, an I/O
/// error — identically: back off per the [`RetryPolicy`], reconnect
/// under the same identity, let the `Hello` ack resync `last_acked`,
/// and resume sending from the first unacked frame. Exactly-once holds
/// because accepted batches are never re-sent (the resync cursor comes
/// from the server) and re-sent unacked batches dedup server-side.
pub struct PipelinedClient {
    inner: Client,
}

impl PipelinedClient {
    /// Connects and handshakes like [`Client::connect_with`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        plan_hash: u64,
        client_id: u64,
        policy: RetryPolicy,
    ) -> Result<PipelinedClient, WireError> {
        Ok(PipelinedClient {
            inner: Client::connect_with(addr, plan_hash, client_id, policy)?,
        })
    }

    /// Highest batch id the server has acknowledged for this client.
    pub fn last_acked(&self) -> u64 {
        self.inner.last_acked
    }

    /// Streams pre-encoded `ReportBatch` frames with up to `window`
    /// unacknowledged frames in flight, until every frame is acked.
    ///
    /// `frames[i]` MUST be the complete encoding of a `ReportBatch`
    /// carrying batch id `i + 1` for this client's identity — the resync
    /// path relies on `last_acked` indexing directly into the slice.
    pub fn pump_encoded(
        &mut self,
        frames: &[Vec<u8>],
        window: usize,
    ) -> Result<PumpStats, WireError> {
        use std::io::Write;

        let total = frames.len() as u64;
        let window = window.max(1) as u64;
        let mut stats = PumpStats {
            resyncs: 0,
            frame_rtt_us: Vec::with_capacity(frames.len()),
        };
        // Frames written on the *current* connection; on resync this
        // rewinds to the server's cursor.
        let mut sent = self.inner.last_acked.min(total);
        let mut in_flight: std::collections::VecDeque<(u64, std::time::Instant)> =
            std::collections::VecDeque::new();
        let mut attempts = 0u32;

        while self.inner.last_acked < total {
            // Top up the window.
            let mut write_failed = false;
            while sent < total && sent - self.inner.last_acked < window {
                let Some(frame) = frames.get(sent as usize) else {
                    break;
                };
                if (&self.inner.stream).write_all(frame).is_err() {
                    write_failed = true;
                    break;
                }
                sent += 1;
                in_flight.push_back((sent, std::time::Instant::now()));
            }

            let anomaly = if write_failed {
                true
            } else {
                match read_frame(&mut &self.inner.stream) {
                    Ok(Some(Frame {
                        kind: FrameKind::Ack,
                        payload,
                        ..
                    })) => {
                        let (acked, _) = decode_ack(&payload)?;
                        if acked > self.inner.last_acked {
                            self.inner.last_acked = acked;
                            attempts = 0;
                            while in_flight.front().is_some_and(|&(id, _)| id <= acked) {
                                if let Some((id, at)) = in_flight.pop_front() {
                                    if id == acked {
                                        stats.frame_rtt_us.push(at.elapsed().as_secs_f64() * 1e6);
                                    }
                                }
                            }
                        }
                        false
                    }
                    // RETRY under pipelining: the in-flight tail is about
                    // to be gap-rejected — resync rather than untangle.
                    Ok(Some(Frame {
                        kind: FrameKind::Retry,
                        ..
                    })) => true,
                    Ok(Some(Frame {
                        kind: FrameKind::Error,
                        ..
                    })) => true,
                    Ok(Some(f)) => {
                        return Err(WireError::Malformed(format!(
                            "unexpected {:?} reply",
                            f.kind
                        )))
                    }
                    Ok(None) => true, // server closed the connection
                    Err(WireError::Io(_)) => true,
                    Err(e) => return Err(e),
                }
            };

            if anomaly {
                attempts += 1;
                stats.resyncs += 1;
                if attempts >= self.inner.policy.max_attempts {
                    felip_obs::counter!("client.retry.exhausted", 1, "batches");
                    return Err(WireError::BudgetExhausted { attempts });
                }
                thread::sleep(self.inner.policy.backoff(attempts));
                // A failed reconnect just burns another attempt on the
                // next lap; the handshake resyncs `last_acked`.
                let _ = self.inner.reconnect();
                sent = self.inner.last_acked.min(total);
                in_flight.clear();
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy::default();
        for attempt in 1..40 {
            let d = p.backoff(attempt);
            assert_eq!(d, p.backoff(attempt), "jitter must be deterministic");
            assert!(d <= p.cap, "attempt {attempt}: {d:?} above cap");
            assert!(d >= p.base / 2, "attempt {attempt}: {d:?} below base/2");
        }
        // High attempts sit in the jittered band below the cap.
        let late: Vec<Duration> = (30..38).map(|a| p.backoff(a)).collect();
        assert!(late.iter().any(|d| *d != late[0]), "no jitter: {late:?}");
    }
}
