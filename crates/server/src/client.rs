//! The client side of the wire protocol: connect, handshake with a stable
//! client identity, send numbered report batches, honour backpressure with
//! a jittered, budget-bounded retry policy.
//!
//! Exactly-once from the client's side: every batch carries a sequence
//! number (`1, 2, 3, …` per client). If an ack is lost the client re-sends
//! the *same* numbered batch; the server recognises the duplicate and acks
//! without double-counting. On reconnect the `Hello` ack tells the client
//! the highest batch the server already accepted, so nothing accepted is
//! ever re-sent.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use felip::client::UserReport;
use felip_common::hash::mix64;
use felip_common::rng::derive_seed;

use crate::wire::{
    decode_ack, encode_batch, encode_hello, read_frame, write_frame, Frame, FrameKind, WireError,
};

/// Process-wide allocator for default client ids (`connect` uses it;
/// `connect_with` lets callers pin ids for reproducible runs).
static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

/// Server verdict on one `ReportBatch` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReply {
    /// Accepted; carries the number of reports ingested.
    Ack(u32),
    /// The server's ingest queue was full — back off and resend the batch.
    Retry,
}

/// How a client spaces resends: exponential backoff from `base` capped at
/// `cap`, each delay jittered deterministically from `jitter_seed` (so two
/// clients hitting the same full queue don't retry in lockstep), the whole
/// thing bounded by `max_attempts` before the send fails with
/// [`WireError::BudgetExhausted`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total send attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Generous budget: under sustained backpressure the capped delay
        // makes 100 attempts ~2s of patience, after which the caller
        // learns the server is truly saturated.
        RetryPolicy {
            max_attempts: 100,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            jitter_seed: 0x5eed_c0de,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (1-based): exponential, capped,
    /// multiplied by a jitter factor in `[0.5, 1.0]` drawn deterministically
    /// from the policy's seed and the attempt number.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.min(20);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .max(self.base);
        let draw = mix64(derive_seed(self.jitter_seed, attempt as u64));
        let frac = 500_000 + draw % 500_001; // parts-per-million in [0.5, 1.0]
        let nanos = (raw.as_nanos() as u64).saturating_mul(frac) / 1_000_000;
        Duration::from_nanos(nanos)
    }
}

/// A connected, handshaken ingestion client.
pub struct Client {
    stream: TcpStream,
    plan_hash: u64,
    client_id: u64,
    last_acked: u64,
    policy: RetryPolicy,
}

impl Client {
    /// Connects with a fresh process-unique client id and the default
    /// retry policy, and performs the `Hello` handshake, proving both
    /// sides hold the same `CollectionPlan`.
    pub fn connect(addr: impl ToSocketAddrs, plan_hash: u64) -> Result<Client, WireError> {
        let id = NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed);
        Client::connect_with(addr, plan_hash, id, RetryPolicy::default())
    }

    /// Connects as a specific client id with an explicit retry policy.
    /// Reconnecting with the id of an earlier session resumes its batch
    /// sequence where the server left off.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        plan_hash: u64,
        client_id: u64,
        policy: RetryPolicy,
    ) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        let mut client = Client {
            stream,
            plan_hash,
            client_id,
            last_acked: 0,
            policy,
        };
        client.send(&Frame {
            kind: FrameKind::Hello,
            plan_hash,
            payload: encode_hello(client_id),
        })?;
        match client.read_reply()? {
            (FrameKind::Ack, payload) => {
                // The server tells us the highest batch it has already
                // accepted for this id (0 for a brand-new client).
                let (last_acked, _) = decode_ack(&payload)?;
                client.last_acked = last_acked;
                Ok(client)
            }
            (kind, payload) => Err(reply_error(kind, &payload)),
        }
    }

    /// This client's wire identity.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Highest batch id the server has acknowledged for this client.
    pub fn last_acked(&self) -> u64 {
        self.last_acked
    }

    /// Sends one batch of reports (as batch `last_acked + 1`) and returns
    /// the server's verdict.
    ///
    /// A [`BatchReply::Retry`] means the batch was *not* ingested; the
    /// caller decides when to resend (see [`Client::send_batch_retrying`]).
    pub fn send_batch(&mut self, reports: &[UserReport]) -> Result<BatchReply, WireError> {
        let batch_id = self.last_acked + 1;
        let frame = Frame {
            kind: FrameKind::ReportBatch,
            plan_hash: self.plan_hash,
            payload: encode_batch(batch_id, reports)?,
        };
        self.send(&frame)?;
        loop {
            match self.read_reply()? {
                (FrameKind::Ack, payload) => {
                    let (acked_id, count) = decode_ack(&payload)?;
                    if acked_id < batch_id {
                        // A stale ack for an earlier batch (duplicate
                        // delivery); keep waiting for ours.
                        continue;
                    }
                    self.last_acked = batch_id;
                    return Ok(BatchReply::Ack(count));
                }
                (FrameKind::Retry, _) => return Ok(BatchReply::Retry),
                (kind, payload) => return Err(reply_error(kind, &payload)),
            }
        }
    }

    /// Sends a batch, backing off and resending on RETRY per the client's
    /// [`RetryPolicy`]. Returns how many RETRY responses were absorbed, or
    /// [`WireError::BudgetExhausted`] once the attempt budget is spent.
    pub fn send_batch_retrying(&mut self, reports: &[UserReport]) -> Result<u32, WireError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.send_batch(reports)? {
                BatchReply::Ack(_) => return Ok(attempts - 1),
                BatchReply::Retry => {
                    if attempts >= self.policy.max_attempts {
                        felip_obs::counter!("client.retry.exhausted", 1, "batches");
                        return Err(WireError::BudgetExhausted { attempts });
                    }
                    std::thread::sleep(self.policy.backoff(attempts));
                }
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let mut w = BufWriter::new(&self.stream);
        write_frame(&mut w, frame).map_err(WireError::Io)
    }

    fn read_reply(&mut self) -> Result<(FrameKind, Vec<u8>), WireError> {
        match read_frame(&mut &self.stream)? {
            Some(f) => Ok((f.kind, f.payload)),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }
}

fn reply_error(kind: FrameKind, payload: &[u8]) -> WireError {
    match kind {
        FrameKind::Error => WireError::Rejected(String::from_utf8_lossy(payload).into_owned()),
        other => WireError::Malformed(format!("unexpected {other:?} reply")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy::default();
        for attempt in 1..40 {
            let d = p.backoff(attempt);
            assert_eq!(d, p.backoff(attempt), "jitter must be deterministic");
            assert!(d <= p.cap, "attempt {attempt}: {d:?} above cap");
            assert!(d >= p.base / 2, "attempt {attempt}: {d:?} below base/2");
        }
        // High attempts sit in the jittered band below the cap.
        let late: Vec<Duration> = (30..38).map(|a| p.backoff(a)).collect();
        assert!(late.iter().any(|d| *d != late[0]), "no jitter: {late:?}");
    }
}
