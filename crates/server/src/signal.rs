//! Graceful-shutdown signal handling without a libc crate dependency.
//!
//! `std` already links the platform C library, so the `signal(2)` entry
//! point can be declared directly. The handler does the only thing that is
//! async-signal-safe here: store into a static atomic the serve loop polls.

use felip_sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; the serve loop treats it as the shutdown flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    // `sighandler_t signal(int signum, sighandler_t handler)` — handlers
    // are passed as plain function addresses.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn handle_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers and returns the flag they set.
///
/// Either signal flips the flag; the serve loop then stops accepting,
/// drains its queues, merges shards, snapshots, and exits 0.
#[cfg(unix)]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    // SAFETY: `handle_signal` only performs an atomic store, which is
    // async-signal-safe; registering it cannot violate memory safety.
    unsafe {
        signal(SIGINT, handle_signal as *const () as usize);
        signal(SIGTERM, handle_signal as *const () as usize);
    }
    &SHUTDOWN
}

/// On non-unix targets signals are not installed; the returned flag is only
/// ever set programmatically.
#[cfg(not(unix))]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_is_settable() {
        let flag = install_shutdown_handler();
        assert!(!flag.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst));
        // The handler itself is exercised by the CI serve job, which sends
        // a real SIGTERM; here we only check the programmatic path.
        SHUTDOWN.store(false, Ordering::SeqCst);
        handle_signal(SIGTERM);
        assert!(flag.load(Ordering::SeqCst));
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
