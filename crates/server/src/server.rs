//! The streaming ingestion server: accept thread, fixed worker pool with
//! bounded queues, shard aggregators, periodic + final snapshots.
//!
//! Data path (DESIGN.md §12.2): connection handlers decode and *validate*
//! frames, then `try_push` whole batches onto the worker queue the
//! connection was pinned to at accept time. A full queue answers RETRY —
//! the client backs off and resends, so a slow worker never grows memory
//! beyond `workers × queue_capacity` batches. Each worker folds batches
//! into its private shard [`Aggregator`]; exact `u64` counts make the final
//! merge independent of how batches interleaved, which is why a served run
//! reproduces an offline collection bit for bit.

use std::fs::OpenOptions;
use std::io::{self, Write};
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
use std::net::TcpStream;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use felip_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use felip_sync::{thread, Arc, Mutex};

use felip::aggregator::{Aggregator, OracleSet};
use felip::client::UserReport;
use felip::plan::CollectionPlan;

use crate::queue::{BoundedQueue, PopResult};
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
use crate::session::Session;
use crate::session::SessionCtx;
use crate::snapshot::Snapshot;
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
use crate::transport::{RecvOutcome, TcpTransport, Transport};
use crate::wire::WireError;

/// A point-in-time copy of the server's merged count state, captured at a
/// consistent cut and handed to [`ServerConfig::cut_hook`]. This is the
/// cluster tier's tap: the upstream streamer derives epoch deltas from
/// successive cut states without the server knowing anything about
/// aggregator peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutState {
    /// Per-grid count vectors (cumulative since the run's resume base).
    pub counts: Vec<Vec<u64>>,
    /// Per-group user totals.
    pub group_sizes: Vec<usize>,
    /// Total reports the counts represent.
    pub reports: u64,
}

/// A callback invoked with each periodic [`CutState`]; shared, so the
/// config stays `Clone`.
pub type CutHook = Arc<dyn Fn(CutState) + Send + Sync>;

/// How a serve run is wired together.
#[derive(Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Ingest worker count (= shard aggregator count).
    pub workers: usize,
    /// Batches buffered per worker before RETRY backpressure kicks in.
    pub queue_capacity: usize,
    /// Where to write snapshots; `None` disables durability.
    pub snapshot_path: Option<PathBuf>,
    /// Cadence of periodic snapshots (requires `snapshot_path`).
    pub snapshot_every: Option<Duration>,
    /// Snapshot to restore state from before serving.
    pub resume: Option<PathBuf>,
    /// Deadline for finishing a frame once its first byte arrived; a peer
    /// that stalls mid-frame longer than this is dropped with an error.
    pub read_timeout: Duration,
    /// Deadline for writing a reply frame.
    pub write_timeout: Duration,
    /// How long a connection may sit with no traffic before the idle
    /// reaper closes it (frees handler threads from abandoned peers).
    pub idle_timeout: Duration,
    /// Where the periodic metrics rollup appends delta snapshots as a
    /// JSONL time-series; `None` disables the rollup thread.
    pub metrics_out: Option<PathBuf>,
    /// Cadence of the metrics rollup (only read when `metrics_out` is
    /// set).
    pub metrics_every: Duration,
    /// Called with the merged state at each periodic consistent cut;
    /// `None` disables the cut thread. The cluster tier installs the
    /// upstream delta streamer here.
    pub cut_hook: Option<CutHook>,
    /// Cadence of cut-hook invocations (requires `cut_hook`).
    pub cut_every: Duration,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("snapshot_path", &self.snapshot_path)
            .field("snapshot_every", &self.snapshot_every)
            .field("resume", &self.resume)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("idle_timeout", &self.idle_timeout)
            .field("metrics_out", &self.metrics_out)
            .field("metrics_every", &self.metrics_every)
            .field("cut_hook", &self.cut_hook.as_ref().map(|_| "<hook>"))
            .field("cut_every", &self.cut_every)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            snapshot_path: None,
            snapshot_every: None,
            resume: None,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            metrics_out: None,
            metrics_every: Duration::from_secs(1),
            cut_hook: None,
            cut_every: Duration::from_millis(200),
        }
    }
}

/// Publishes one worker queue's depth under its per-worker gauge name.
///
/// Workers 0–7 get their own gauge; deeper pools share an overflow gauge
/// (`wx`). Per-worker names fix the last-write-wins race the old single
/// `server.queue.depth` gauge had: with every shard racing one cell, the
/// exported value was whichever worker wrote last, hiding imbalance. The
/// summary/STAT renderer derives the pool-wide sum and max from the
/// labelled gauges (names stay literal here so the metric-registry lint
/// can cross-check them against the DESIGN.md catalogue).
pub(crate) fn queue_depth_gauge(worker: usize, depth: usize) {
    match worker {
        0 => felip_obs::gauge!("server.queue.depth.w0", depth, "batches"),
        1 => felip_obs::gauge!("server.queue.depth.w1", depth, "batches"),
        2 => felip_obs::gauge!("server.queue.depth.w2", depth, "batches"),
        3 => felip_obs::gauge!("server.queue.depth.w3", depth, "batches"),
        4 => felip_obs::gauge!("server.queue.depth.w4", depth, "batches"),
        5 => felip_obs::gauge!("server.queue.depth.w5", depth, "batches"),
        6 => felip_obs::gauge!("server.queue.depth.w6", depth, "batches"),
        7 => felip_obs::gauge!("server.queue.depth.w7", depth, "batches"),
        _ => felip_obs::gauge!("server.queue.depth.wx", depth, "batches"),
    }
}

/// Counters published by a serve run (totals since start).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// `ReportBatch` frames accepted (ACKed).
    pub frames_ok: u64,
    /// Frames answered with RETRY (queue full).
    pub frames_retried: u64,
    /// Frames rejected with an Error reply (bad plan hash, malformed
    /// payload, report/oracle mismatch).
    pub frames_rejected: u64,
    /// Reports accepted across all ACKed frames.
    pub reports_accepted: u64,
    /// Duplicate batches re-acked without re-ingestion (lost-ack resends).
    pub frames_duplicate: u64,
    /// Idle connections closed by the reaper.
    pub conns_reaped: u64,
    /// Snapshots written (periodic + final).
    pub snapshots_written: u64,
    /// Snapshot writes that failed read-back verification and were
    /// quarantined (the previous good snapshot was kept).
    pub snapshots_quarantined: u64,
}

/// Lock-free counter twin of [`ServerStats`], shared by the connection
/// handlers and the session state machine.
#[derive(Default)]
pub(crate) struct AtomicStats {
    connections: AtomicU64,
    frames_ok: AtomicU64,
    frames_retried: AtomicU64,
    frames_rejected: AtomicU64,
    reports_accepted: AtomicU64,
    frames_duplicate: AtomicU64,
    conns_reaped: AtomicU64,
    snapshots_written: AtomicU64,
    snapshots_quarantined: AtomicU64,
}

impl AtomicStats {
    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_ok: self.frames_ok.load(Ordering::Relaxed),
            frames_retried: self.frames_retried.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            reports_accepted: self.reports_accepted.load(Ordering::Relaxed),
            frames_duplicate: self.frames_duplicate.load(Ordering::Relaxed),
            conns_reaped: self.conns_reaped.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            snapshots_quarantined: self.snapshots_quarantined.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump_accepted(&self, reports: u64) {
        self.frames_ok.fetch_add(1, Ordering::Relaxed);
        self.reports_accepted.fetch_add(reports, Ordering::Relaxed);
    }

    /// Reports accepted so far — the query service's cheap ingest-head
    /// token (one relaxed load, no shard locks).
    pub(crate) fn reports_accepted(&self) -> u64 {
        self.reports_accepted.load(Ordering::Relaxed)
    }

    pub(crate) fn bump_retried(&self) {
        self.frames_retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_rejected(&self) {
        self.frames_rejected.fetch_add(1, Ordering::Relaxed);
        felip_obs::counter!("server.frame.rejected", 1, "frames");
    }

    pub(crate) fn bump_duplicate(&self) {
        self.frames_duplicate.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_reaped(&self) {
        self.conns_reaped.fetch_add(1, Ordering::Relaxed);
        felip_obs::counter!("server.conn.reaped", 1, "connections");
    }

    pub(crate) fn bump_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }
}

/// The result of a completed (gracefully shut down) serve run.
pub struct ServerRun {
    /// The fully merged aggregator (resume base + all worker shards).
    pub aggregator: Aggregator,
    /// Run totals.
    pub stats: ServerStats,
}

/// Errors starting or running the server.
#[derive(Debug)]
pub enum ServerError {
    /// Socket/filesystem failure.
    Io(io::Error),
    /// Snapshot could not be read, validated, or restored.
    Snapshot(WireError),
    /// Library-level failure (plan/aggregator invariants).
    Felip(felip_common::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io error: {e}"),
            ServerError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ServerError::Felip(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Snapshot(e)
    }
}

impl From<felip_common::Error> for ServerError {
    fn from(e: felip_common::Error) -> Self {
        ServerError::Felip(e)
    }
}

/// A bound (listening, not yet serving) ingestion server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    plan: Arc<CollectionPlan>,
    oracles: Arc<OracleSet>,
    plan_hash: u64,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket and prepares (but does not start) the run.
    pub fn bind(plan: Arc<CollectionPlan>, config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let oracles = Arc::new(OracleSet::build(&plan));
        let plan_hash = plan.schema_hash();
        Ok(Server {
            listener,
            local_addr,
            plan,
            oracles,
            plan_hash,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops the run when set (tests and signal handlers
    /// share this mechanism).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until the shutdown flag is set, then drains, merges, writes
    /// the final snapshot (when configured), and returns the merged state.
    ///
    /// `external_shutdown` — typically the signal-handler flag — is polled
    /// alongside the internal handle so SIGTERM/ctrl-c trigger the same
    /// graceful path.
    pub fn run(self, external_shutdown: Option<&AtomicBool>) -> Result<ServerRun, ServerError> {
        let mut run_span = felip_obs::span!("server.run");
        let workers = self.config.workers.max(1);
        run_span.field("workers", workers);

        // Resume base: restored snapshot state (counts *and* the dedup
        // cursors, so duplicates stay suppressed across the restart), or a
        // fresh aggregator.
        let (base, dedup0) = match &self.config.resume {
            Some(path) => {
                let snap = Snapshot::read(path)?;
                felip_obs::counter!("server.snapshot.restored", 1, "snapshots");
                let dedup = snap.dedup.clone();
                (
                    snap.restore(Arc::clone(&self.plan), Arc::clone(&self.oracles))?,
                    dedup,
                )
            }
            None => (
                Aggregator::with_oracles(Arc::clone(&self.plan), Arc::clone(&self.oracles)),
                Vec::new(),
            ),
        };
        let base_reports = base.reports_ingested() as u64;
        let base = Arc::new(Mutex::new(base));

        let queues: Vec<Arc<BoundedQueue<Vec<UserReport>>>> = (0..workers)
            .map(|_| Arc::new(BoundedQueue::new(self.config.queue_capacity.max(1))))
            .collect();
        let shards: Arc<Vec<Mutex<Aggregator>>> = Arc::new(
            (0..workers)
                .map(|_| {
                    Mutex::new(Aggregator::with_oracles(
                        Arc::clone(&self.plan),
                        Arc::clone(&self.oracles),
                    ))
                })
                .collect(),
        );
        let mut ctx = SessionCtx::new(Arc::clone(&self.plan), Arc::clone(&self.oracles), dedup0);
        ctx.install_query(Arc::new(crate::query::QueryService::new(
            Arc::clone(&self.plan),
            Arc::clone(&self.oracles),
            Arc::clone(&base),
            Arc::clone(&shards),
            queues.clone(),
            base_reports,
        )));
        let ctx = ctx;
        let stats = AtomicStats::default();
        let stop_snapshots = AtomicBool::new(false);

        let should_stop = || {
            self.shutdown.load(Ordering::SeqCst)
                || external_shutdown.is_some_and(|f| f.load(Ordering::SeqCst))
        };

        self.listener.set_nonblocking(true)?;

        thread::scope(|scope| -> Result<(), ServerError> {
            // Ingest workers: drain their queue into their shard.
            for (w, (queue, shard)) in queues.iter().zip(shards.iter()).enumerate() {
                let queue = Arc::clone(queue);
                scope.spawn(move || {
                    // Pinning policy (DESIGN.md §15): the reactor owns
                    // core 0, ingest workers round-robin over the rest
                    // (no-op on single-core hosts).
                    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
                    crate::reactor::pin_worker(w);
                    loop {
                        match queue.pop_timeout(Duration::from_millis(50)) {
                            PopResult::Item(batch) => {
                                queue_depth_gauge(w, queue.len());
                                {
                                    let mut agg = shard.lock();
                                    // Batches were validated at the connection
                                    // edge, so ingest failures are server bugs;
                                    // count and drop rather than crash the
                                    // worker.
                                    if let Err(e) = agg.ingest_batch(&batch) {
                                        felip_obs::counter!("server.ingest.errors", 1, "batches");
                                        felip_obs::diag::error(&format!("worker {w}: {e}"));
                                    }
                                }
                                // Only after the batch is in the shard: the
                                // snapshot cut waits on this mark.
                                queue.task_done();
                            }
                            PopResult::Empty => continue,
                            PopResult::Done => break,
                        }
                    }
                });
            }

            // Periodic snapshot thread: merge base + shards and persist.
            if let (Some(path), Some(every)) = (
                self.config.snapshot_path.clone(),
                self.config.snapshot_every,
            ) {
                let plan = Arc::clone(&self.plan);
                let oracles = Arc::clone(&self.oracles);
                let base = &base;
                let shards = &shards;
                let stats = &stats;
                let stop = &stop_snapshots;
                let plan_hash = self.plan_hash;
                let ctx = &ctx;
                let queues = &queues;
                scope.spawn(move || {
                    let mut last = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(25));
                        if last.elapsed() < every {
                            continue;
                        }
                        last = Instant::now();
                        let (merged, dedup) =
                            match consistent_cut(ctx, &plan, &oracles, base, shards, queues) {
                                Ok(cut) => cut,
                                Err(e) => {
                                    // Counts overflowed mid-run: the shards
                                    // are intact, but no consistent merged
                                    // view exists. Keep the last good
                                    // snapshot and surface the condition.
                                    stats.snapshots_quarantined.fetch_add(1, Ordering::Relaxed);
                                    felip_obs::diag::error(&format!(
                                        "periodic snapshot skipped: {e}"
                                    ));
                                    continue;
                                }
                            };
                        let reports = merged.reports_ingested() as u64;
                        let snap = Snapshot::capture_with_dedup(&merged, plan_hash, dedup);
                        match snap.write_verified(&path, None) {
                            Ok(()) => {
                                stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
                                felip_obs::flight::flight().record(
                                    felip_obs::flight::KIND_SNAPSHOT,
                                    0,
                                    reports,
                                    0,
                                );
                            }
                            Err(e) => {
                                // The torn write was quarantined and the
                                // last good snapshot kept; next tick tries
                                // again.
                                stats.snapshots_quarantined.fetch_add(1, Ordering::Relaxed);
                                felip_obs::flight::flight().record(
                                    felip_obs::flight::KIND_SNAPSHOT,
                                    1,
                                    reports,
                                    0,
                                );
                                felip_obs::diag::warn(&format!(
                                    "periodic snapshot quarantined: {e}"
                                ));
                                // Quarantine is a degraded-mode event worth
                                // a postmortem window (no-op unless a dump
                                // path is configured).
                                felip_obs::flight::postmortem("snapshot-quarantine");
                            }
                        }
                    }
                });
            }

            // Periodic cut thread: hand the merged state to the cut hook
            // (the cluster tier's upstream delta streamer). Separate from
            // the snapshot thread so the two cadences stay independent;
            // `consistent_cut` serialises on the dedup lock, so concurrent
            // cuts are safe.
            if let Some(hook) = self.config.cut_hook.clone() {
                let every = self.config.cut_every;
                let plan = Arc::clone(&self.plan);
                let oracles = Arc::clone(&self.oracles);
                let base = &base;
                let shards = &shards;
                let stop = &stop_snapshots;
                let ctx = &ctx;
                let queues = &queues;
                scope.spawn(move || {
                    let mut last = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(5));
                        if last.elapsed() < every {
                            continue;
                        }
                        last = Instant::now();
                        let (merged, _dedup) =
                            match consistent_cut(ctx, &plan, &oracles, base, shards, queues) {
                                Ok(cut) => cut,
                                Err(e) => {
                                    felip_obs::diag::error(&format!("periodic cut skipped: {e}"));
                                    continue;
                                }
                            };
                        hook(CutState {
                            counts: merged.counts().to_vec(),
                            group_sizes: merged.group_sizes().to_vec(),
                            reports: merged.reports_ingested() as u64,
                        });
                    }
                });
            }

            // Periodic metrics rollup: append one timestamped delta
            // snapshot per tick to the `--metrics-out` JSONL time-series
            // (first line is the full snapshot that arms the baseline; a
            // final line is flushed on shutdown so the series covers the
            // whole run).
            if let Some(path) = self.config.metrics_out.clone() {
                let every = self.config.metrics_every;
                let stop = &stop_snapshots;
                scope.spawn(move || {
                    let mut out = match OpenOptions::new().create(true).append(true).open(&path) {
                        Ok(f) => f,
                        Err(e) => {
                            felip_obs::diag::warn(&format!(
                                "metrics rollup disabled ({}): {e}",
                                path.display()
                            ));
                            return;
                        }
                    };
                    let mut prev: Option<felip_obs::MetricsSnapshot> = None;
                    let mut last = Instant::now();
                    loop {
                        let stopping = stop.load(Ordering::SeqCst);
                        if !stopping {
                            thread::sleep(Duration::from_millis(25));
                            if last.elapsed() < every {
                                continue;
                            }
                        }
                        last = Instant::now();
                        let cur = felip_obs::global().metrics_snapshot();
                        let line = match prev.as_ref() {
                            Some(p) => cur.delta_since(p).to_json(),
                            None => cur.to_json(),
                        };
                        prev = Some(cur);
                        if let Err(e) = writeln!(out, "{line}") {
                            felip_obs::diag::warn(&format!("metrics rollup stopped: {e}"));
                            return;
                        }
                        felip_obs::counter!("server.metrics.rollups", 1, "snapshots");
                        if stopping {
                            return;
                        }
                    }
                });
            }

            // Serve until shutdown. On Linux/x86_64 a single
            // readiness-driven epoll reactor owns every connection
            // (accept, decode, session dispatch, ack) — see
            // `reactor.rs` and DESIGN.md §15. Elsewhere the portable
            // thread-per-connection loop below does the same work over
            // blocking `TcpTransport`s.
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            crate::reactor::run_reactor(
                &self.listener,
                &ctx,
                &queues,
                &stats,
                &should_stop,
                &self.config,
            )?;

            #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
            {
                // Accept loop. Connections are pinned round-robin to
                // workers.
                let mut conns = Vec::new();
                let mut next_worker = 0usize;
                while !should_stop() {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            felip_obs::counter!("server.accept", 1, "connections");
                            stats.bump_connection();
                            let worker = next_worker % workers;
                            let queue = Arc::clone(&queues[worker]);
                            next_worker += 1;
                            let ctx = &ctx;
                            let stats = &stats;
                            let stop = &should_stop;
                            let config = &self.config;
                            conns.push(scope.spawn(move || {
                                if let Err(e) =
                                    handle_conn(stream, worker, ctx, queue, stats, stop, config)
                                {
                                    // Peer went away or spoke garbage; the
                                    // connection is already torn down.
                                    felip_obs::counter!("server.conn.errors", 1, "connections");
                                    felip_obs::diag::line(&format!("connection closed: {e}"));
                                }
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ServerError::Io(e)),
                    }
                }

                // Graceful drain: stop accepting (done), let in-flight
                // connections finish.
                for c in conns {
                    let _ = c.join();
                }
            }

            // Close queues so workers drain their backlog and exit.
            for q in &queues {
                q.close();
            }
            stop_snapshots.store(true, Ordering::SeqCst);
            Ok(())
        })?;

        // All workers joined (scope end): merge shards into the base. The
        // query service still holds handles to base and shards, so the
        // merge goes through the (now uncontended) locks rather than
        // consuming the mutexes.
        let aggregator = merge_state(&self.plan, &self.oracles, &base, &shards)?;
        if let Some(path) = &self.config.snapshot_path {
            Snapshot::capture_with_dedup(&aggregator, self.plan_hash, ctx.dedup_pairs())
                .write_verified(path, None)?;
            stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
            felip_obs::flight::flight().record(
                felip_obs::flight::KIND_SNAPSHOT,
                0,
                aggregator.reports_ingested() as u64,
                0,
            );
        }
        // Graceful end of a run (shutdown flag or SIGTERM): dump the
        // flight window so operators can see the last protocol events of
        // the run. No-op unless a postmortem path was configured.
        felip_obs::flight::postmortem("shutdown");
        let final_stats = stats.snapshot();
        run_span.field("reports", aggregator.reports_ingested());
        Ok(ServerRun {
            aggregator,
            stats: final_stats,
        })
    }
}

/// Captures counts *and* dedup cursors at one consistent point while
/// ingestion continues — the periodic-snapshot path.
///
/// Sessions advance a dedup cursor atomically with queueing its batch,
/// both under the `ctx.dedup` lock. Holding that lock here freezes
/// admission; waiting for every queue to go quiescent (empty, nothing
/// popped-but-unprocessed) then guarantees each accepted batch is in a
/// shard. The state captured therefore satisfies: cursors == exactly the
/// batches in the counts. Without this cut, a restore could tell clients
/// batches were accepted whose reports never reached the snapshot (acked
/// reports silently lost), or the reverse (double-counted on resend).
pub(crate) fn consistent_cut(
    ctx: &SessionCtx,
    plan: &Arc<CollectionPlan>,
    oracles: &Arc<OracleSet>,
    base: &Mutex<Aggregator>,
    shards: &[Mutex<Aggregator>],
    queues: &[Arc<BoundedQueue<Vec<UserReport>>>],
) -> Result<(Aggregator, Vec<(u64, u64)>), felip_common::Error> {
    let dedup = ctx.dedup.lock();
    // No session can push while we hold the dedup lock, so the backlog is
    // bounded and this wait terminates once the workers catch up.
    while !queues.iter().all(|q| q.is_quiescent()) {
        thread::sleep(Duration::from_millis(1));
    }
    let merged = merge_state(plan, oracles, base, shards)?;
    let pairs = SessionCtx::sorted_pairs(&dedup);
    Ok((merged, pairs))
}

/// Point-in-time merge of the resume base and every worker shard, used by
/// periodic snapshots while ingestion continues. `Err` means a support
/// count overflowed `u64` — the shards themselves are untouched, but no
/// consistent merged view exists.
fn merge_state(
    plan: &Arc<CollectionPlan>,
    oracles: &Arc<OracleSet>,
    base: &Mutex<Aggregator>,
    shards: &[Mutex<Aggregator>],
) -> Result<Aggregator, felip_common::Error> {
    let mut merged = Aggregator::with_oracles(Arc::clone(plan), Arc::clone(oracles));
    merged.merge(&base.lock())?;
    for shard in shards {
        // Each lock is held only for the copy; workers hold their shard
        // lock across a whole batch, so snapshots see batch-atomic states.
        merged.merge(&shard.lock())?;
    }
    Ok(merged)
}

/// Serves one connection: frames come off a deadline-aware
/// [`TcpTransport`], protocol decisions are made by the shared
/// [`Session`] state machine, and the idle reaper closes connections
/// that go quiet past `config.idle_timeout`. This is the portable
/// fallback path; on Linux/x86_64 the epoll reactor serves connections
/// instead (see `reactor.rs`).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn handle_conn<F: Fn() -> bool>(
    stream: TcpStream,
    worker: usize,
    ctx: &SessionCtx,
    queue: Arc<BoundedQueue<Vec<UserReport>>>,
    stats: &AtomicStats,
    stop: &F,
    config: &ServerConfig,
) -> Result<(), WireError> {
    let mut transport = TcpTransport::new(
        &stream,
        stop,
        config.read_timeout,
        config.write_timeout,
        config.idle_timeout,
    )?;
    let mut session = Session::for_worker(worker);
    loop {
        match transport.recv() {
            RecvOutcome::Frame(frame) => {
                let outcome = session.on_frame(frame, ctx, &queue, stats);
                match outcome.close {
                    // Closing anyway: the error reply is best-effort.
                    Some(e) => {
                        let _ = transport.send(&outcome.reply);
                        return Err(e);
                    }
                    None => transport.send(&outcome.reply)?,
                }
            }
            // Clean EOF, or the shutdown flag flipped mid-wait.
            RecvOutcome::Eof | RecvOutcome::Shutdown => return Ok(()),
            RecvOutcome::NoData => continue,
            RecvOutcome::Idle => {
                // The reaper: nothing arrived for the whole idle window.
                // Closing is safe — a client that comes back reconnects
                // and resyncs its batch cursor from the Hello ack.
                stats.bump_reaped();
                return Ok(());
            }
            RecvOutcome::Err(e) => {
                // Garbled framing or a mid-frame stall: tell the peer
                // (best effort) and drop the connection.
                stats.bump_rejected();
                let _ = transport.send(&crate::wire::Frame::error(ctx.plan_hash, &e.to_string()));
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::wire::{encode_batch, encode_hello, Frame, FrameKind};
    use felip::config::FelipConfig;
    use felip_common::{Attribute, Schema};

    /// Regression for the acked-but-unsnapshotted race: batches sit acked
    /// (cursor advanced) in the worker queue while a periodic snapshot
    /// runs. The consistent cut must wait until those batches are in the
    /// shard counts before capturing the cursors — a snapshot with cursor
    /// 3 and zero reports would silently lose all three batches across a
    /// restore.
    #[test]
    fn periodic_cut_never_captures_cursors_ahead_of_counts() {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("c", 4),
        ])
        .unwrap();
        let plan = Arc::new(CollectionPlan::build(&schema, 60, &FelipConfig::new(1.0), 3).unwrap());
        let oracles = Arc::new(OracleSet::build(&plan));
        let plan_hash = plan.schema_hash();
        let ctx = SessionCtx::new(Arc::clone(&plan), Arc::clone(&oracles), Vec::new());
        let queue = Arc::new(BoundedQueue::new(8));
        let base = Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ));
        let shards = vec![Mutex::new(Aggregator::with_oracles(
            Arc::clone(&plan),
            Arc::clone(&oracles),
        ))];
        let stats = AtomicStats::default();
        let mut session = Session::new();

        let hello = Frame {
            kind: FrameKind::Hello,
            plan_hash,
            payload: encode_hello(7),
        };
        assert!(session
            .on_frame(hello, &ctx, &queue, &stats)
            .close
            .is_none());
        let mut total = 0usize;
        for batch_id in 1..=3u64 {
            let lo = (batch_id as usize - 1) * 20;
            let reports: Vec<_> = (lo..lo + 20)
                .map(|u| crate::loadgen::user_report(&plan, u, 3).unwrap())
                .collect();
            total += reports.len();
            let frame = Frame {
                kind: FrameKind::ReportBatch,
                plan_hash,
                payload: encode_batch(batch_id, &reports).unwrap(),
            };
            let out = session.on_frame(frame, &ctx, &queue, &stats);
            assert!(out.accepted.is_some(), "batch {batch_id} must be accepted");
        }

        // All three batches are acked but still queued; a deliberately
        // slow worker drains them while the cut runs.
        let queues = vec![Arc::clone(&queue)];
        thread::scope(|s| {
            s.spawn(|| loop {
                match queue.pop_timeout(Duration::from_millis(5)) {
                    PopResult::Item(batch) => {
                        thread::sleep(Duration::from_millis(10));
                        shards[0].lock().ingest_batch(&batch).unwrap();
                        queue.task_done();
                    }
                    PopResult::Empty => continue,
                    PopResult::Done => break,
                }
            });
            let (merged, cursors) =
                consistent_cut(&ctx, &plan, &oracles, &base, &shards, &queues).expect("cut");
            assert_eq!(cursors, vec![(7, 3)]);
            assert_eq!(
                merged.reports_ingested(),
                total,
                "every acked batch must be inside the snapshotted counts"
            );
            queue.close();
        });
    }
}
