//! The versioned, length-prefixed binary wire format (DESIGN.md §12.1).
//!
//! Every exchange between a client and the ingestion server is a *frame*:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "FELP", little-endian u32
//!      4     1  version      protocol version (currently 5)
//!      5     1  kind         frame kind discriminant
//!      6     2  reserved     must be zero
//!      8     4  payload_len  payload byte count, ≤ MAX_PAYLOAD
//!     12     8  plan_hash    CollectionPlan::schema_hash() of the sender
//!     20     …  payload      kind-specific body
//!      …     4  crc32        IEEE CRC-32 over header + payload
//! ```
//!
//! All integers are explicit little-endian; encoding and decoding use only
//! safe byte slicing (no `unsafe`, no transmutes), and decoding untrusted
//! bytes returns a typed [`WireError`] — it never panics and never
//! allocates more than the declared (bounded) payload length.
//!
//! A `ReportBatch` payload carries a batch id and perturbed [`UserReport`]s:
//!
//! ```text
//! batch_id:u64  count:u32  then per report:
//!   group:u32  tag:u8
//!   tag 0 (GRR)  value:u32
//!   tag 1 (OLH)  seed:u64  value:u32
//!   tag 2 (OUE)  words:u32  word[words]:u64
//! ```
//!
//! Version 2 added end-to-end idempotency: `Hello` carries the client's
//! `client_id:u64`, every `ReportBatch` a per-client monotonically
//! increasing `batch_id:u64`, and `Ack`/`Retry` echo the batch id they
//! answer. The server deduplicates on `(client_id, batch_id)`, so a client
//! that re-sends after a lost `Ack` cannot double-count its reports, and a
//! client that receives a stale reply can discard it — the
//! exactly-once-or-rejected invariant the chaos harness asserts.
//!
//! Version 3 adds the **STAT admin plane**: a `Stat` request (one `mode`
//! byte: full snapshot, delta rollup, or flight-recorder dump) answered by
//! a `StatReply` whose payload is the metrics JSON / flight JSONL. The
//! change is backward compatible: decoders accept versions 2 through 4
//! ([`MIN_VERSION`]), an old peer simply never sends the new kinds, and the
//! server echoes each connection's negotiated version in its replies
//! ([`append_frame_versioned`]) so old clients keep parsing them.
//!
//! Version 4 adds the **cluster tier** (DESIGN.md §16): an ingest node
//! streams epoch-numbered count deltas to its aggregator via `Delta`
//! frames, answered by `DeltaAck`. A `Delta` payload carries the sending
//! node's id, the epoch, a flavor byte (incremental add vs. full cumulative
//! replacement), and the same per-grid count layout FSNP snapshots use:
//!
//! ```text
//! node_id:u64  epoch:u64  flavor:u8  total:u64
//! num_grids:u32  then per grid:  cells:u32  count[cells]:u64
//! num_groups:u32  then per group:  size:u64
//! ```
//!
//! `DeltaAck` echoes `epoch:u64  last_applied:u64  status:u8` (applied /
//! duplicate / resync-required), giving the upstream streamer the same
//! exactly-once-or-rejected discipline report batches already have.
//!
//! Version 5 adds **online query serving** (DESIGN.md §17): a `Query`
//! frame asks the server for a λ-D frequency estimate computed from a
//! snapshot-consistent count read, answered by `QueryReply`. A `Query`
//! payload carries a client-chosen correlation id, a consistency mode
//! byte (cached vs. fresh-cut), and the predicate list:
//!
//! ```text
//! query_id:u64  mode:u8  count:u32  then per predicate:
//!   attr:u32  tag:u8
//!   tag 0 (range)  lo:u32  hi:u32
//!   tag 1 (set)    n:u32  value[n]:u32
//! ```
//!
//! `QueryReply` is fixed-size: `query_id:u64  answer_bits:u64 (f64 bit
//! pattern — bit-identical to the offline batch estimate on the same cut)
//! epoch:u64  head_epoch:u64  reports:u64`. As with v3/v4, the change is
//! backward compatible: old peers never send the new kinds, and replies
//! echo each connection's negotiated version.

use std::fmt;
use std::io::{self, Read, Write};

use felip::client::UserReport;
use felip_common::{Predicate, PredicateTarget};
use felip_fo::Report;

/// Frame magic: the bytes `FELP` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"FELP");

/// Current protocol version (5: online query serving — `Query`/`QueryReply`
/// frames answering λ-D frequency queries from snapshot-consistent count
/// reads).
pub const VERSION: u8 = 5;

/// Oldest protocol version decoders still accept. Versions 2 through 4
/// differ from version 5 only in lacking the newer kinds, so they parse
/// unchanged; anything older predates idempotent batches and is rejected.
pub const MIN_VERSION: u8 = 2;

/// Fixed header size in bytes (everything before the payload).
pub const HEADER_LEN: usize = 20;

/// Trailing checksum size in bytes.
pub const TRAILER_LEN: usize = 4;

/// Upper bound on a frame's payload, rejecting absurd length prefixes
/// before any allocation happens (16 MiB ≫ any sane report batch).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Little-endian reads for the decoders here and in `snapshot`. Every call
/// site has already bounds-checked its slice (`take`, an explicit length
/// check), so these copy through a fixed array rather than a fallible
/// `try_into` — the conversion itself cannot fail.
#[inline]
pub(crate) fn le_u16(b: &[u8]) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    u16::from_le_bytes(a)
}

#[inline]
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

#[inline]
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Slice-by-16 lookup tables (compile-time generated). Table 0 is the
/// classic byte-at-a-time table; table `k` advances a byte through `k`
/// further zero bytes, letting the hot loop fold 16 input bytes per
/// iteration with 16 independent table loads instead of a 16-deep
/// load-xor dependency chain. Same polynomial, same answers — only the
/// evaluation order changes, and CRC-32 is linear over GF(2).
const CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

/// Folds `bytes` into a running CRC state (`state` is the *raw* register,
/// i.e. already complemented). Exposed through [`Crc32`]; the hot loop is
/// the slice-by-16 kernel, with a byte-at-a-time tail for the remainder.
#[inline]
fn crc32_fold(mut c: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(16);
    for ch in chunks.by_ref() {
        let a = le_u32(&ch[0..4]) ^ c;
        let b = le_u32(&ch[4..8]);
        let d = le_u32(&ch[8..12]);
        let e = le_u32(&ch[12..16]);
        c = CRC_TABLES[15][(a & 0xFF) as usize]
            ^ CRC_TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[12][(a >> 24) as usize]
            ^ CRC_TABLES[11][(b & 0xFF) as usize]
            ^ CRC_TABLES[10][((b >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[9][((b >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[8][(b >> 24) as usize]
            ^ CRC_TABLES[7][(d & 0xFF) as usize]
            ^ CRC_TABLES[6][((d >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((d >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(d >> 24) as usize]
            ^ CRC_TABLES[3][(e & 0xFF) as usize]
            ^ CRC_TABLES[2][((e >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((e >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Incremental IEEE CRC-32: feed discontiguous pieces (header, then
/// payload) without first copying them into one buffer.
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh CRC state.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the state.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        self.0 = crc32_fold(self.0, bytes);
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// IEEE CRC-32 (the zlib/Ethernet polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_fold(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// What kind of frame this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: opens a session; both sides verify `plan_hash`.
    Hello = 0,
    /// Client → server: a batch of perturbed user reports.
    ReportBatch = 1,
    /// Server → client: the previous frame was accepted.
    Ack = 2,
    /// Server → client: the ingest queue is full — back off and resend.
    Retry = 3,
    /// Either direction: protocol error; payload is a UTF-8 message.
    Error = 4,
    /// Client → server (v3): request live telemetry; payload is one
    /// [`StatMode`] byte. Exempt from plan-hash validation — an operator
    /// polling a server need not know its collection plan.
    Stat = 5,
    /// Server → client (v3): the telemetry answer; payload is metrics
    /// JSON (full/delta modes) or flight-recorder JSONL (flight mode).
    StatReply = 6,
    /// Ingest node → aggregator (v4): an epoch-numbered count delta
    /// derived from a consistent cut; payload is a [`CountDelta`].
    Delta = 7,
    /// Aggregator → ingest node (v4): the delta's fate — applied,
    /// duplicate, or resync-required (see [`DeltaStatus`]).
    DeltaAck = 8,
    /// Client → server (v5): a λ-D frequency query against the live
    /// collection; payload is a [`QueryRequest`].
    Query = 9,
    /// Server → client (v5): the query's answer plus the epoch it was
    /// served from; payload is a [`QueryAnswer`].
    QueryReply = 10,
}

impl FrameKind {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(FrameKind::Hello),
            1 => Ok(FrameKind::ReportBatch),
            2 => Ok(FrameKind::Ack),
            3 => Ok(FrameKind::Retry),
            4 => Ok(FrameKind::Error),
            5 => Ok(FrameKind::Stat),
            6 => Ok(FrameKind::StatReply),
            7 => Ok(FrameKind::Delta),
            8 => Ok(FrameKind::DeltaAck),
            9 => Ok(FrameKind::Query),
            10 => Ok(FrameKind::QueryReply),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// What a `Stat` frame asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatMode {
    /// A full snapshot of every registered metric.
    Full = 0,
    /// The delta since the previous delta-mode request on this server.
    Delta = 1,
    /// A flight-recorder dump (JSONL) of recent protocol events.
    Flight = 2,
}

impl StatMode {
    /// Parses the mode discriminant.
    pub fn from_u8(v: u8) -> Result<StatMode, WireError> {
        match v {
            0 => Ok(StatMode::Full),
            1 => Ok(StatMode::Delta),
            2 => Ok(StatMode::Flight),
            other => Err(WireError::Malformed(format!("unknown stat mode {other}"))),
        }
    }
}

/// Serialises a `Stat` payload: the single mode byte.
pub fn encode_stat(mode: StatMode) -> Vec<u8> {
    vec![mode as u8]
}

/// Parses a `Stat` payload back into its mode.
pub fn decode_stat(payload: &[u8]) -> Result<StatMode, WireError> {
    let mut r = ByteReader::new(payload);
    let mode = StatMode::from_u8(r.u8()?)?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("oversized stat payload".into()));
    }
    Ok(mode)
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind.
    pub kind: FrameKind,
    /// The sender's [`felip::plan::CollectionPlan::schema_hash`].
    pub plan_hash: u64,
    /// Kind-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-less frame of the given kind.
    pub fn control(kind: FrameKind, plan_hash: u64) -> Frame {
        Frame {
            kind,
            plan_hash,
            payload: Vec::new(),
        }
    }

    /// An `Error` frame carrying a human-readable message.
    pub fn error(plan_hash: u64, message: &str) -> Frame {
        Frame {
            kind: FrameKind::Error,
            plan_hash,
            payload: message.as_bytes().to_vec(),
        }
    }

    /// Serialises the frame: header, payload, CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len() + TRAILER_LEN);
        append_frame(&mut buf, self.kind, self.plan_hash, &self.payload);
        buf
    }

    /// Appends the frame's wire bytes to `out` (the allocation-reusing twin
    /// of [`Frame::encode`] for hot paths that batch many frames into one
    /// buffer).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        append_frame(out, self.kind, self.plan_hash, &self.payload);
    }

    /// Decodes exactly one frame from `buf`, rejecting trailing bytes.
    ///
    /// This is the pure-slice twin of [`read_frame`], used by tests and any
    /// transport that already framed the bytes.
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        if buf.len() < HEADER_LEN + TRAILER_LEN {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: HEADER_LEN + TRAILER_LEN,
            });
        }
        let head = parse_header(&buf[..HEADER_LEN])?;
        let total = HEADER_LEN + head.payload_len as usize + TRAILER_LEN;
        if buf.len() < total {
            return Err(WireError::Truncated {
                have: buf.len(),
                need: total,
            });
        }
        if buf.len() > total {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after frame",
                buf.len() - total
            )));
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + head.payload_len as usize];
        let expected = crc32(&buf[..total - TRAILER_LEN]);
        let actual = le_u32(&buf[total - TRAILER_LEN..total]);
        if expected != actual {
            return Err(WireError::BadCrc { expected, actual });
        }
        Ok(Frame {
            kind: head.kind,
            plan_hash: head.plan_hash,
            payload: payload.to_vec(),
        })
    }
}

/// Appends one whole frame (header, payload, CRC trailer) to `out`.
///
/// This is the single encoder every path funnels through; the CRC is
/// computed over the bytes just written, so header and payload are never
/// assembled in a scratch buffer first.
pub fn append_frame(out: &mut Vec<u8>, kind: FrameKind, plan_hash: u64, payload: &[u8]) {
    append_frame_versioned(out, VERSION, kind, plan_hash, payload);
}

/// [`append_frame`] with an explicit version byte — the negotiation path:
/// a server answering a v2 peer stamps v2 on its replies so the peer's
/// decoder keeps accepting them. `version` must be in
/// `[MIN_VERSION, VERSION]` (debug-asserted; release builds emit whatever
/// they are told, which the peer's decoder will police).
pub fn append_frame_versioned(
    out: &mut Vec<u8>,
    version: u8,
    kind: FrameKind,
    plan_hash: u64,
    payload: &[u8],
) {
    debug_assert!((MIN_VERSION..=VERSION).contains(&version));
    let start = out.len();
    out.reserve(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(version);
    out.push(kind as u8);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&plan_hash.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// A decoded frame whose payload *borrows* the receive buffer — the
/// zero-copy twin of [`Frame`] for the reactor's batched decode path,
/// where frames are parsed in place out of a connection's read buffer and
/// the payload never needs to outlive the wakeup that decoded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// The protocol version the sender stamped on the frame — what the
    /// receiver echoes back so v2 peers keep parsing our replies.
    pub version: u8,
    /// The frame kind.
    pub kind: FrameKind,
    /// The sender's plan schema hash.
    pub plan_hash: u64,
    /// Kind-specific body, borrowed from the receive buffer.
    pub payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Attempts to decode one frame from the *front* of `buf` without
    /// copying anything.
    ///
    /// Returns `Ok(Some((view, consumed)))` when a complete checksummed
    /// frame starts at `buf[0]`, `Ok(None)` when more bytes are needed
    /// (partial frame — keep reading), and `Err` when the stream is
    /// garbled (bad magic/version/CRC — fatal for the connection).
    pub fn decode_prefix(buf: &'a [u8]) -> Result<Option<(FrameView<'a>, usize)>, WireError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let head = parse_header(&buf[..HEADER_LEN])?;
        let total = HEADER_LEN + head.payload_len as usize + TRAILER_LEN;
        if buf.len() < total {
            return Ok(None);
        }
        let expected = crc32(&buf[..total - TRAILER_LEN]);
        let actual = le_u32(&buf[total - TRAILER_LEN..total]);
        if expected != actual {
            return Err(WireError::BadCrc { expected, actual });
        }
        Ok(Some((
            FrameView {
                version: head.version,
                kind: head.kind,
                plan_hash: head.plan_hash,
                payload: &buf[HEADER_LEN..HEADER_LEN + head.payload_len as usize],
            },
            total,
        )))
    }

    /// Copies the view into an owned [`Frame`].
    pub fn to_frame(&self) -> Frame {
        Frame {
            kind: self.kind,
            plan_hash: self.plan_hash,
            payload: self.payload.to_vec(),
        }
    }
}

impl Frame {
    /// Borrows the frame as a [`FrameView`] (stamped with the current
    /// [`VERSION`] — owned frames do not track their wire version).
    pub fn view(&self) -> FrameView<'_> {
        FrameView {
            version: VERSION,
            kind: self.kind,
            plan_hash: self.plan_hash,
            payload: &self.payload,
        }
    }
}

/// A parsed fixed-size frame header.
struct ParsedHeader {
    version: u8,
    kind: FrameKind,
    plan_hash: u64,
    payload_len: u32,
}

/// Parses a fixed-size header. Accepts any version in
/// `[MIN_VERSION, VERSION]` — the CRC trailer covers the version byte, so
/// a corrupted version still fails the checksum, and every accepted
/// version shares this header layout.
fn parse_header(h: &[u8]) -> Result<ParsedHeader, WireError> {
    debug_assert_eq!(h.len(), HEADER_LEN);
    let magic = le_u32(&h[0..4]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = h[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(h[5])?;
    let reserved = le_u16(&h[6..8]);
    if reserved != 0 {
        return Err(WireError::Malformed(format!(
            "reserved header bytes are {reserved:#06x}, expected zero"
        )));
    }
    let payload_len = le_u32(&h[8..12]);
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(payload_len));
    }
    let plan_hash = le_u64(&h[12..20]);
    Ok(ParsedHeader {
        version,
        kind,
        plan_hash,
        payload_len,
    })
}

/// Writes one frame to `w` (a single buffered `write_all`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame from `r`.
///
/// Returns `Ok(None)` on a clean EOF *between* frames; EOF mid-frame is an
/// error (a truncated stream, e.g. a client killed mid-write).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let head = parse_header(&header)?;
    let mut rest = vec![0u8; head.payload_len as usize + TRAILER_LEN];
    r.read_exact(&mut rest).map_err(WireError::Io)?;
    let body_end = head.payload_len as usize;
    let mut crc = Crc32::new();
    crc.update(&header);
    crc.update(&rest[..body_end]);
    let expected = crc.finish();
    let actual = le_u32(&rest[body_end..]);
    if expected != actual {
        return Err(WireError::BadCrc { expected, actual });
    }
    rest.truncate(body_end);
    Ok(Some(Frame {
        kind: head.kind,
        plan_hash: head.plan_hash,
        payload: rest,
    }))
}

/// Serialises a batch of user reports into a `ReportBatch` payload.
pub fn encode_reports(reports: &[UserReport]) -> Result<Vec<u8>, WireError> {
    if reports.len() > u32::MAX as usize {
        return Err(WireError::Malformed("batch exceeds u32 count".into()));
    }
    let mut buf = Vec::with_capacity(4 + reports.len() * 16);
    buf.extend_from_slice(&(reports.len() as u32).to_le_bytes());
    for r in reports {
        let group = u32::try_from(r.group)
            .map_err(|_| WireError::Malformed(format!("group {} exceeds u32", r.group)))?;
        buf.extend_from_slice(&group.to_le_bytes());
        match &r.report {
            Report::Grr(v) => {
                buf.push(0);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Report::Olh { seed, value } => {
                buf.push(1);
                buf.extend_from_slice(&seed.to_le_bytes());
                buf.extend_from_slice(&value.to_le_bytes());
            }
            Report::Oue(words) => {
                buf.push(2);
                let n = u32::try_from(words.len())
                    .map_err(|_| WireError::Malformed("OUE word count exceeds u32".into()))?;
                buf.extend_from_slice(&n.to_le_bytes());
                for w in words {
                    buf.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
    }
    Ok(buf)
}

/// Parses a `ReportBatch` payload back into user reports.
///
/// Every read is bounds-checked against the remaining payload, so hostile
/// length prefixes cannot trigger large allocations or panics.
pub fn decode_reports(payload: &[u8]) -> Result<Vec<UserReport>, WireError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    // Smallest report encoding is 9 bytes (group + tag + u32 body); an
    // impossible count is rejected before reserving capacity for it.
    if count > payload.len() / 9 {
        return Err(WireError::Malformed(format!(
            "report count {count} impossible in a {}-byte payload",
            payload.len()
        )));
    }
    let mut reports = Vec::with_capacity(count);
    for _ in 0..count {
        let group = r.u32()? as usize;
        let report = match r.u8()? {
            0 => Report::Grr(r.u32()?),
            1 => Report::Olh {
                seed: r.u64()?,
                value: r.u32()?,
            },
            2 => {
                let n = r.u32()? as usize;
                if n > r.remaining() / 8 {
                    return Err(WireError::Malformed(format!(
                        "OUE word count {n} exceeds remaining payload"
                    )));
                }
                let mut words = Vec::with_capacity(n);
                for _ in 0..n {
                    words.push(r.u64()?);
                }
                Report::Oue(words)
            }
            tag => return Err(WireError::Malformed(format!("unknown report tag {tag}"))),
        };
        reports.push(UserReport { group, report });
    }
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after {count} reports",
            r.remaining()
        )));
    }
    Ok(reports)
}

/// Serialises a `Hello` payload carrying the client's id.
pub fn encode_hello(client_id: u64) -> Vec<u8> {
    client_id.to_le_bytes().to_vec()
}

/// Parses a `Hello` payload back into the client id.
pub fn decode_hello(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = ByteReader::new(payload);
    let id = r.u64()?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("oversized hello payload".into()));
    }
    Ok(id)
}

/// Serialises a `ReportBatch` payload: the batch id followed by the
/// [`encode_reports`] body.
pub fn encode_batch(batch_id: u64, reports: &[UserReport]) -> Result<Vec<u8>, WireError> {
    let body = encode_reports(reports)?;
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&batch_id.to_le_bytes());
    buf.extend_from_slice(&body);
    Ok(buf)
}

/// Parses a `ReportBatch` payload into its batch id and reports.
pub fn decode_batch(payload: &[u8]) -> Result<(u64, Vec<UserReport>), WireError> {
    let mut r = ByteReader::new(payload);
    let batch_id = r.u64()?;
    let reports = decode_reports(&payload[8..])?;
    Ok((batch_id, reports))
}

/// Serialises an `Ack` payload: the batch id it answers and the number of
/// accepted reports (0 for the Hello ack, whose batch id is 0 too).
pub fn encode_ack(batch_id: u64, accepted: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&batch_id.to_le_bytes());
    buf.extend_from_slice(&accepted.to_le_bytes());
    buf
}

/// Parses an `Ack` payload into `(batch_id, accepted)`.
pub fn decode_ack(payload: &[u8]) -> Result<(u64, u32), WireError> {
    let mut r = ByteReader::new(payload);
    let batch_id = r.u64()?;
    let n = r.u32()?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("oversized ack payload".into()));
    }
    Ok((batch_id, n))
}

/// Serialises a `Retry` payload carrying the batch id to resend.
pub fn encode_retry(batch_id: u64) -> Vec<u8> {
    batch_id.to_le_bytes().to_vec()
}

/// Parses a `Retry` payload back into the batch id.
pub fn decode_retry(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = ByteReader::new(payload);
    let id = r.u64()?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("oversized retry payload".into()));
    }
    Ok(id)
}

/// How a [`CountDelta`]'s counts relate to the aggregator's view of the
/// sending node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaFlavor {
    /// Counts are an increment over the node's previous epoch: the
    /// aggregator *adds* them, and the epoch must be exactly `last + 1`.
    Incremental = 0,
    /// Counts are the node's full cumulative state: the aggregator
    /// *replaces* its per-node view — the loss-free rejoin/catch-up path,
    /// valid at any epoch greater than the last applied one.
    Full = 1,
}

impl DeltaFlavor {
    /// Parses the flavor discriminant.
    pub fn from_u8(v: u8) -> Result<DeltaFlavor, WireError> {
        match v {
            0 => Ok(DeltaFlavor::Incremental),
            1 => Ok(DeltaFlavor::Full),
            other => Err(WireError::Malformed(format!(
                "unknown delta flavor {other}"
            ))),
        }
    }
}

/// What the aggregator did with a delta, echoed in the `DeltaAck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// The delta was applied; `last_applied` advanced to its epoch.
    Applied = 0,
    /// The epoch was already applied — re-acked without re-applying
    /// (the exactly-once half of the cursor discipline).
    Duplicate = 1,
    /// An incremental delta skipped an epoch; the node must fall back to
    /// a [`DeltaFlavor::Full`] resync.
    ResyncRequired = 2,
}

impl DeltaStatus {
    /// Parses the status discriminant.
    pub fn from_u8(v: u8) -> Result<DeltaStatus, WireError> {
        match v {
            0 => Ok(DeltaStatus::Applied),
            1 => Ok(DeltaStatus::Duplicate),
            2 => Ok(DeltaStatus::ResyncRequired),
            other => Err(WireError::Malformed(format!(
                "unknown delta status {other}"
            ))),
        }
    }
}

/// A decoded `Delta` payload: one ingest node's count movement between two
/// consistent cuts (or its full cumulative state, per [`DeltaFlavor`]).
/// The count layout mirrors the FSNP snapshot body, so a delta *is* a
/// snapshot diff in the same shape the aggregator already merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountDelta {
    /// The sending ingest node's stable identity.
    pub node_id: u64,
    /// The node's epoch counter for this delta (monotonic per node).
    pub epoch: u64,
    /// Increment vs. full-replacement semantics.
    pub flavor: DeltaFlavor,
    /// Total reports the counts represent (cumulative for `Full`, the
    /// increment's share for `Incremental`) — a cheap cross-check.
    pub total: u64,
    /// Per-grid count vectors, same order as the plan's grids.
    pub counts: Vec<Vec<u64>>,
    /// Per-group user totals, same order as the plan's groups.
    pub group_sizes: Vec<u64>,
}

/// Serialises a `Delta` payload.
pub fn encode_delta(delta: &CountDelta) -> Result<Vec<u8>, WireError> {
    if delta.counts.len() > u32::MAX as usize || delta.group_sizes.len() > u32::MAX as usize {
        return Err(WireError::Malformed("delta exceeds u32 counts".into()));
    }
    let cells: usize = delta.counts.iter().map(|g| g.len()).sum();
    let mut buf = Vec::with_capacity(33 + delta.counts.len() * 4 + cells * 8);
    buf.extend_from_slice(&delta.node_id.to_le_bytes());
    buf.extend_from_slice(&delta.epoch.to_le_bytes());
    buf.push(delta.flavor as u8);
    buf.extend_from_slice(&delta.total.to_le_bytes());
    buf.extend_from_slice(&(delta.counts.len() as u32).to_le_bytes());
    for grid in &delta.counts {
        let n = u32::try_from(grid.len())
            .map_err(|_| WireError::Malformed("grid cell count exceeds u32".into()))?;
        buf.extend_from_slice(&n.to_le_bytes());
        for &c in grid {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }
    buf.extend_from_slice(&(delta.group_sizes.len() as u32).to_le_bytes());
    for &s in &delta.group_sizes {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    Ok(buf)
}

/// Parses a `Delta` payload. Every length prefix is validated against the
/// remaining bytes before any allocation, same discipline as
/// [`decode_reports`].
pub fn decode_delta(payload: &[u8]) -> Result<CountDelta, WireError> {
    let mut r = ByteReader::new(payload);
    let node_id = r.u64()?;
    let epoch = r.u64()?;
    let flavor = DeltaFlavor::from_u8(r.u8()?)?;
    let total = r.u64()?;
    let num_grids = r.u32()? as usize;
    // A grid costs at least 4 bytes (its cell-count prefix).
    if num_grids > r.remaining() / 4 {
        return Err(WireError::Malformed(format!(
            "grid count {num_grids} impossible in remaining payload"
        )));
    }
    let mut counts = Vec::with_capacity(num_grids);
    for _ in 0..num_grids {
        let cells = r.u32()? as usize;
        if cells > r.remaining() / 8 {
            return Err(WireError::Malformed(format!(
                "cell count {cells} exceeds remaining payload"
            )));
        }
        let mut grid = Vec::with_capacity(cells);
        for _ in 0..cells {
            grid.push(r.u64()?);
        }
        counts.push(grid);
    }
    let num_groups = r.u32()? as usize;
    if num_groups > r.remaining() / 8 {
        return Err(WireError::Malformed(format!(
            "group count {num_groups} exceeds remaining payload"
        )));
    }
    let mut group_sizes = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        group_sizes.push(r.u64()?);
    }
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after delta",
            r.remaining()
        )));
    }
    Ok(CountDelta {
        node_id,
        epoch,
        flavor,
        total,
        counts,
        group_sizes,
    })
}

/// Serialises a `DeltaAck` payload: the epoch it answers, the node's
/// highest applied epoch, and the status byte.
pub fn encode_delta_ack(epoch: u64, last_applied: u64, status: DeltaStatus) -> Vec<u8> {
    let mut buf = Vec::with_capacity(17);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&last_applied.to_le_bytes());
    buf.push(status as u8);
    buf
}

/// Parses a `DeltaAck` payload into `(epoch, last_applied, status)`.
pub fn decode_delta_ack(payload: &[u8]) -> Result<(u64, u64, DeltaStatus), WireError> {
    let mut r = ByteReader::new(payload);
    let epoch = r.u64()?;
    let last_applied = r.u64()?;
    let status = DeltaStatus::from_u8(r.u8()?)?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("oversized delta-ack payload".into()));
    }
    Ok((epoch, last_applied, status))
}

/// How a `Query` wants its consistency handled (v5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Serve from the cached epoch when the ingest head has not moved
    /// since it was built; otherwise take a fresh consistent cut first.
    Cached = 0,
    /// Always take a fresh consistent cut before answering, even when the
    /// cache looks warm.
    Fresh = 1,
}

impl QueryMode {
    /// Parses the mode discriminant.
    pub fn from_u8(v: u8) -> Result<QueryMode, WireError> {
        match v {
            0 => Ok(QueryMode::Cached),
            1 => Ok(QueryMode::Fresh),
            other => Err(WireError::Malformed(format!("unknown query mode {other}"))),
        }
    }
}

/// A decoded `Query` payload: a client-chosen correlation id, the
/// consistency mode, and the λ-D predicate list (validated against the
/// plan's schema server-side via [`felip_common::Query::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Echoed verbatim in the reply so pipelined clients can correlate.
    pub query_id: u64,
    /// Cached vs. fresh-cut consistency.
    pub mode: QueryMode,
    /// The query's predicates, one per attribute, sorted by attribute.
    pub predicates: Vec<Predicate>,
}

/// A decoded `QueryReply` payload: the answer and the epoch bookkeeping
/// that lets the client compute staleness (`head_epoch - epoch`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The request's correlation id, echoed.
    pub query_id: u64,
    /// The estimated frequency in `[0, 1]` — shipped as the exact `f64`
    /// bit pattern, bit-identical to the offline batch estimate on the
    /// cut it was served from.
    pub answer: f64,
    /// The cache epoch the answer was computed at.
    pub epoch: u64,
    /// The ingest head's epoch at answer time (`>= epoch`).
    pub head_epoch: u64,
    /// Reports behind the answer's estimator.
    pub reports: u64,
}

/// Serialises a `Query` payload.
pub fn encode_query(req: &QueryRequest) -> Result<Vec<u8>, WireError> {
    let count = u32::try_from(req.predicates.len())
        .map_err(|_| WireError::Malformed("predicate count exceeds u32".into()))?;
    let mut buf = Vec::with_capacity(13 + req.predicates.len() * 13);
    buf.extend_from_slice(&req.query_id.to_le_bytes());
    buf.push(req.mode as u8);
    buf.extend_from_slice(&count.to_le_bytes());
    for p in &req.predicates {
        let attr = u32::try_from(p.attr)
            .map_err(|_| WireError::Malformed("predicate attr exceeds u32".into()))?;
        buf.extend_from_slice(&attr.to_le_bytes());
        match &p.target {
            PredicateTarget::Range { lo, hi } => {
                buf.push(0);
                buf.extend_from_slice(&lo.to_le_bytes());
                buf.extend_from_slice(&hi.to_le_bytes());
            }
            PredicateTarget::Set(values) => {
                buf.push(1);
                let n = u32::try_from(values.len())
                    .map_err(|_| WireError::Malformed("set size exceeds u32".into()))?;
                buf.extend_from_slice(&n.to_le_bytes());
                for v in values {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    Ok(buf)
}

/// Parses a `Query` payload. Every length prefix is validated against the
/// remaining bytes before any allocation, same discipline as
/// [`decode_reports`].
pub fn decode_query(payload: &[u8]) -> Result<QueryRequest, WireError> {
    let mut r = ByteReader::new(payload);
    let query_id = r.u64()?;
    let mode = QueryMode::from_u8(r.u8()?)?;
    let count = r.u32()? as usize;
    // A predicate costs at least 9 bytes (attr + tag + smallest body).
    if count > r.remaining() / 9 {
        return Err(WireError::Malformed(format!(
            "predicate count {count} impossible in remaining payload"
        )));
    }
    let mut predicates = Vec::with_capacity(count);
    for _ in 0..count {
        let attr = r.u32()? as usize;
        let target = match r.u8()? {
            0 => PredicateTarget::Range {
                lo: r.u32()?,
                hi: r.u32()?,
            },
            1 => {
                let n = r.u32()? as usize;
                if n > r.remaining() / 4 {
                    return Err(WireError::Malformed(format!(
                        "set size {n} exceeds remaining payload"
                    )));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(r.u32()?);
                }
                PredicateTarget::Set(values)
            }
            other => {
                return Err(WireError::Malformed(format!(
                    "unknown predicate tag {other}"
                )))
            }
        };
        predicates.push(Predicate { attr, target });
    }
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after query",
            r.remaining()
        )));
    }
    Ok(QueryRequest {
        query_id,
        mode,
        predicates,
    })
}

/// Serialises a `QueryReply` payload (fixed 40 bytes).
pub fn encode_query_reply(ans: &QueryAnswer) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40);
    buf.extend_from_slice(&ans.query_id.to_le_bytes());
    buf.extend_from_slice(&ans.answer.to_bits().to_le_bytes());
    buf.extend_from_slice(&ans.epoch.to_le_bytes());
    buf.extend_from_slice(&ans.head_epoch.to_le_bytes());
    buf.extend_from_slice(&ans.reports.to_le_bytes());
    buf
}

/// Parses a `QueryReply` payload.
pub fn decode_query_reply(payload: &[u8]) -> Result<QueryAnswer, WireError> {
    let mut r = ByteReader::new(payload);
    let query_id = r.u64()?;
    let answer = f64::from_bits(r.u64()?);
    let epoch = r.u64()?;
    let head_epoch = r.u64()?;
    let reports = r.u64()?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("oversized query-reply payload".into()));
    }
    Ok(QueryAnswer {
        query_id,
        answer,
        epoch,
        head_epoch,
        reports,
    })
}

/// Bounds-checked little-endian reader over a byte slice.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                have: self.remaining(),
                need: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(le_u32(self.take(4)?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(le_u64(self.take(8)?))
    }
}

/// Everything that can go wrong speaking the wire protocol (or reading a
/// snapshot, which shares the checksummed-binary discipline).
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream does not start with the FELP magic.
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-kind discriminant.
    BadKind(u8),
    /// Checksum mismatch: the frame was corrupted in transit or on disk.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried by the frame.
        actual: u32,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// Fewer bytes than a field or frame requires.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes needed.
        need: usize,
    },
    /// Structurally invalid contents (bad tag, trailing bytes, ...).
    Malformed(String),
    /// The peer (or snapshot) was built for a different `CollectionPlan`.
    PlanMismatch {
        /// Our plan's schema hash.
        ours: u64,
        /// The peer's schema hash.
        theirs: u64,
    },
    /// The server rejected a frame; carries its error message.
    Rejected(String),
    /// The client's bounded retry budget ran out before a batch was acked.
    BudgetExhausted {
        /// Attempts made (connects + sends) before giving up.
        attempts: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: computed {expected:#010x}, frame carries {actual:#010x}"
                )
            }
            WireError::TooLarge(n) => write!(f, "payload of {n} bytes exceeds limit"),
            WireError::Truncated { have, need } => {
                write!(f, "truncated: have {have} bytes, need {need}")
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::PlanMismatch { ours, theirs } => write!(
                f,
                "collection plan mismatch: ours {ours:#018x}, peer {theirs:#018x}"
            ),
            WireError::Rejected(m) => write!(f, "rejected by server: {m}"),
            WireError::BudgetExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_16_agrees_with_bytewise_at_every_length() {
        // Exercise every remainder length through the 16-byte kernel
        // boundary against a reference byte-at-a-time implementation.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(167) ^ 91) as u8)
            .collect();
        for len in 0..data.len() {
            let bytes = &data[..len];
            let mut reference = 0xFFFF_FFFFu32;
            for &b in bytes {
                reference =
                    CRC_TABLES[0][((reference ^ b as u32) & 0xFF) as usize] ^ (reference >> 8);
            }
            assert_eq!(crc32(bytes), reference ^ 0xFFFF_FFFF, "length {len}");
        }
    }

    #[test]
    fn crc32_streaming_matches_one_shot_across_splits() {
        let data: Vec<u8> = (0..100u8).collect();
        let whole = crc32(&data);
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn decode_prefix_handles_partial_and_batched_frames() {
        let f1 = Frame {
            kind: FrameKind::ReportBatch,
            plan_hash: 7,
            payload: vec![9; 33],
        };
        let f2 = Frame::control(FrameKind::Ack, 7);
        let mut bytes = f1.encode();
        f2.encode_into(&mut bytes);

        // Every strict prefix of the first frame decodes to "need more".
        let first_len = f1.encode().len();
        for cut in 0..first_len {
            assert!(
                matches!(FrameView::decode_prefix(&bytes[..cut]), Ok(None)),
                "cut at {cut} should want more bytes"
            );
        }
        // The full buffer yields both frames back to back, zero-copy.
        let (v1, used1) = FrameView::decode_prefix(&bytes).unwrap().unwrap();
        assert_eq!(v1.to_frame(), f1);
        assert_eq!(used1, first_len);
        let (v2, used2) = FrameView::decode_prefix(&bytes[used1..]).unwrap().unwrap();
        assert_eq!(v2.to_frame(), f2);
        assert_eq!(used1 + used2, bytes.len());
    }

    #[test]
    fn decode_prefix_rejects_corruption_but_not_truncation() {
        let frame = Frame {
            kind: FrameKind::ReportBatch,
            plan_hash: 3,
            payload: vec![1, 2, 3],
        };
        let good = frame.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            // A flipped byte is either an immediate framing error or (when
            // it inflates payload_len) an honest "need more bytes" — never
            // a successfully decoded frame.
            match FrameView::decode_prefix(&bad) {
                Err(_) | Ok(None) => {}
                Ok(Some(_)) => panic!("flip at byte {i} accepted"),
            }
        }
    }

    #[test]
    fn encode_into_appends_identically_to_encode() {
        let frame = Frame {
            kind: FrameKind::Retry,
            plan_hash: 99,
            payload: vec![5; 10],
        };
        let mut appended = vec![0xAB, 0xCD]; // pre-existing bytes survive
        frame.encode_into(&mut appended);
        assert_eq!(&appended[..2], &[0xAB, 0xCD]);
        assert_eq!(&appended[2..], frame.encode().as_slice());
    }

    #[test]
    fn frame_round_trips() {
        let frame = Frame {
            kind: FrameKind::ReportBatch,
            plan_hash: 0xDEAD_BEEF_F00D_CAFE,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn decode_rejects_corruption() {
        let frame = Frame::control(FrameKind::Hello, 7);
        let good = frame.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(Frame::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
        assert!(matches!(
            Frame::decode(&good[..good.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_absurd_length() {
        let mut bytes = Frame::control(FrameKind::Hello, 0).encode();
        // Inflate the declared payload length beyond the cap; the length
        // check must fire before any allocation or CRC work.
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn reports_round_trip() {
        let reports = vec![
            UserReport {
                group: 0,
                report: Report::Grr(42),
            },
            UserReport {
                group: 3,
                report: Report::Olh {
                    seed: u64::MAX,
                    value: 5,
                },
            },
            UserReport {
                group: 1,
                report: Report::Oue(vec![0xAAAA, 0, u64::MAX]),
            },
        ];
        let payload = encode_reports(&reports).unwrap();
        assert_eq!(decode_reports(&payload).unwrap(), reports);
    }

    #[test]
    fn report_decode_rejects_bad_tags_and_counts() {
        let mut payload = encode_reports(&[UserReport {
            group: 0,
            report: Report::Grr(1),
        }])
        .unwrap();
        payload[8] = 9; // tag byte of the first report
        assert!(decode_reports(&payload).is_err());

        // Count claims more reports than the payload can possibly hold.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_reports(&huge).is_err());
    }

    #[test]
    fn ack_round_trips() {
        assert_eq!(decode_ack(&encode_ack(9, 12345)).unwrap(), (9, 12345));
        assert!(decode_ack(&[1, 2]).is_err());
        let mut oversized = encode_ack(1, 2);
        oversized.push(0);
        assert!(decode_ack(&oversized).is_err());
    }

    #[test]
    fn hello_and_retry_round_trip() {
        assert_eq!(decode_hello(&encode_hello(u64::MAX)).unwrap(), u64::MAX);
        assert!(decode_hello(&[0; 4]).is_err());
        assert_eq!(decode_retry(&encode_retry(77)).unwrap(), 77);
        assert!(decode_retry(&[0; 12]).is_err());
    }

    #[test]
    fn stat_round_trips() {
        for mode in [StatMode::Full, StatMode::Delta, StatMode::Flight] {
            assert_eq!(decode_stat(&encode_stat(mode)).unwrap(), mode);
        }
        assert!(decode_stat(&[]).is_err());
        assert!(decode_stat(&[9]).is_err());
        assert!(decode_stat(&[0, 0]).is_err());
        assert!(matches!(FrameKind::from_u8(5), Ok(FrameKind::Stat)));
        assert!(matches!(FrameKind::from_u8(6), Ok(FrameKind::StatReply)));
    }

    #[test]
    fn version_2_frames_still_decode() {
        let mut bytes = Vec::new();
        append_frame_versioned(&mut bytes, 2, FrameKind::Hello, 7, &encode_hello(42));
        let frame = Frame::decode(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Hello);
        assert_eq!(decode_hello(&frame.payload).unwrap(), 42);
        let (view, used) = FrameView::decode_prefix(&bytes).unwrap().unwrap();
        assert_eq!(view.version, 2, "decoders surface the peer's version");
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn versions_outside_the_window_are_rejected() {
        for v in [0u8, 1, VERSION + 1, 0xFF] {
            let mut bytes = Frame::control(FrameKind::Hello, 0).encode();
            bytes[4] = v;
            // Recompute the CRC so only the version check can object.
            let crc_at = bytes.len() - TRAILER_LEN;
            let crc = crc32(&bytes[..crc_at]);
            bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
            assert!(
                matches!(Frame::decode(&bytes), Err(WireError::BadVersion(got)) if got == v),
                "version {v} accepted"
            );
        }
    }

    #[test]
    fn delta_round_trips() {
        let delta = CountDelta {
            node_id: 0xA11C_E5ED_0000_0001,
            epoch: 17,
            flavor: DeltaFlavor::Incremental,
            total: 1234,
            counts: vec![vec![1, 2, 3], vec![], vec![u64::MAX, 0]],
            group_sizes: vec![7, 0, u64::MAX],
        };
        let payload = encode_delta(&delta).unwrap();
        assert_eq!(decode_delta(&payload).unwrap(), delta);

        let full = CountDelta {
            flavor: DeltaFlavor::Full,
            ..delta
        };
        let payload = encode_delta(&full).unwrap();
        assert_eq!(decode_delta(&payload).unwrap(), full);
    }

    #[test]
    fn delta_decode_rejects_corruption_and_hostile_lengths() {
        let delta = CountDelta {
            node_id: 1,
            epoch: 2,
            flavor: DeltaFlavor::Full,
            total: 3,
            counts: vec![vec![4, 5]],
            group_sizes: vec![6],
        };
        let good = encode_delta(&delta).unwrap();
        // Truncations never panic, never succeed.
        for cut in 0..good.len() {
            assert!(decode_delta(&good[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Trailing bytes are rejected.
        let mut oversized = good.clone();
        oversized.push(0);
        assert!(decode_delta(&oversized).is_err());
        // A hostile grid count cannot trigger a large allocation.
        let mut hostile = good.clone();
        hostile[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_delta(&hostile).is_err());
        // Unknown flavor byte is rejected.
        let mut bad_flavor = good;
        bad_flavor[16] = 9;
        assert!(decode_delta(&bad_flavor).is_err());
    }

    #[test]
    fn delta_ack_round_trips() {
        for status in [
            DeltaStatus::Applied,
            DeltaStatus::Duplicate,
            DeltaStatus::ResyncRequired,
        ] {
            let payload = encode_delta_ack(9, 8, status);
            assert_eq!(decode_delta_ack(&payload).unwrap(), (9, 8, status));
        }
        assert!(decode_delta_ack(&[0; 16]).is_err());
        let mut oversized = encode_delta_ack(1, 1, DeltaStatus::Applied);
        oversized.push(0);
        assert!(decode_delta_ack(&oversized).is_err());
        let mut bad_status = encode_delta_ack(1, 1, DeltaStatus::Applied);
        bad_status[16] = 7;
        assert!(decode_delta_ack(&bad_status).is_err());
        assert!(matches!(FrameKind::from_u8(7), Ok(FrameKind::Delta)));
        assert!(matches!(FrameKind::from_u8(8), Ok(FrameKind::DeltaAck)));
    }

    #[test]
    fn query_round_trips() {
        let req = QueryRequest {
            query_id: 0xFEED_F00D_0000_0042,
            mode: QueryMode::Cached,
            predicates: vec![
                Predicate::between(0, 3, 17),
                Predicate::in_set(2, vec![0, 2, u32::MAX]),
            ],
        };
        let payload = encode_query(&req).unwrap();
        assert_eq!(decode_query(&payload).unwrap(), req);

        let fresh = QueryRequest {
            mode: QueryMode::Fresh,
            ..req
        };
        let payload = encode_query(&fresh).unwrap();
        assert_eq!(decode_query(&payload).unwrap(), fresh);
        assert!(matches!(FrameKind::from_u8(9), Ok(FrameKind::Query)));
        assert!(matches!(FrameKind::from_u8(10), Ok(FrameKind::QueryReply)));
    }

    #[test]
    fn query_decode_rejects_corruption_and_hostile_lengths() {
        let req = QueryRequest {
            query_id: 1,
            mode: QueryMode::Fresh,
            predicates: vec![Predicate::between(1, 2, 5), Predicate::in_set(3, vec![7])],
        };
        let good = encode_query(&req).unwrap();
        // Truncations never panic, never succeed.
        for cut in 0..good.len() {
            assert!(decode_query(&good[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Trailing bytes are rejected.
        let mut oversized = good.clone();
        oversized.push(0);
        assert!(decode_query(&oversized).is_err());
        // A hostile predicate count cannot trigger a large allocation.
        let mut hostile = good.clone();
        hostile[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_query(&hostile).is_err());
        // A hostile set size cannot either (set-size prefix of pred 2:
        // 13 header + 13-byte range predicate + 4 attr + 1 tag = 31).
        let mut hostile_set = good.clone();
        hostile_set[31..35].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_query(&hostile_set).is_err());
        // Unknown mode and predicate tag bytes are rejected.
        let mut bad_mode = good.clone();
        bad_mode[8] = 9;
        assert!(decode_query(&bad_mode).is_err());
        let mut bad_tag = good;
        bad_tag[17] = 9;
        assert!(decode_query(&bad_tag).is_err());
    }

    #[test]
    fn query_reply_round_trips_bit_exactly() {
        // Including non-finite and signed-zero patterns: the reply ships
        // the raw f64 bits, so every pattern must survive verbatim.
        for answer in [0.0f64, -0.0, 0.25, f64::NAN, f64::INFINITY, 1e-300] {
            let ans = QueryAnswer {
                query_id: 77,
                answer,
                epoch: 3,
                head_epoch: 5,
                reports: 1_000_000,
            };
            let payload = encode_query_reply(&ans);
            assert_eq!(payload.len(), 40);
            let back = decode_query_reply(&payload).unwrap();
            assert_eq!(back.answer.to_bits(), answer.to_bits());
            assert_eq!(back.query_id, 77);
            assert_eq!(back.epoch, 3);
            assert_eq!(back.head_epoch, 5);
            assert_eq!(back.reports, 1_000_000);
        }
        assert!(decode_query_reply(&[0; 39]).is_err());
        assert!(decode_query_reply(&[0; 41]).is_err());
    }

    #[test]
    fn batch_round_trips_with_id() {
        let reports = vec![UserReport {
            group: 2,
            report: Report::Grr(5),
        }];
        let payload = encode_batch(0xABCD, &reports).unwrap();
        let (id, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(id, 0xABCD);
        assert_eq!(decoded, reports);
        assert!(decode_batch(&payload[..4]).is_err());
    }
}
