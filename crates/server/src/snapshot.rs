//! Durable aggregator snapshots (DESIGN.md §12.3).
//!
//! A snapshot is the aggregator's exact state — per-grid support counts and
//! per-group report tallies, all `u64` integers — in a checksummed,
//! versioned binary file:
//!
//! ```text
//! magic:u32 "FSNP" | version:u8 | reserved:[u8;3] | plan_hash:u64
//! total_reports:u64
//! num_grids:u32  then per grid:  cells:u32  count[cells]:u64
//! num_groups:u32 then per group: size:u64
//! num_dedup:u32  then per entry: client_id:u64 batch_id:u64  (sorted)
//! crc32:u32 over everything above
//! ```
//!
//! Version 2 added the dedup table: the per-client highest-accepted batch
//! id, persisted so a restarted server keeps rejecting duplicates of
//! batches it already counted (the exactly-once half of the
//! exactly-once-or-rejected invariant survives restarts).
//!
//! Because counts are exact integers, `restore → continue ingesting →
//! estimate` is bit-identical to a run that never stopped. Writes are
//! atomic: the snapshot is written to a sibling temp file, fsynced, then
//! renamed over the destination, so a crash mid-write leaves the previous
//! snapshot intact and a torn file is rejected by the CRC on load.
//! [`Snapshot::write_verified`] goes further: it decodes the temp file
//! before the rename and *quarantines* a torn write (renames it to
//! `.quarantine` beside the destination) instead of replacing the last
//! good snapshot with garbage.

use felip_sync::Arc;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use felip::aggregator::{Aggregator, OracleSet};
use felip::plan::CollectionPlan;

use crate::wire::{self, crc32, WireError};

/// Fault-injection hook type: sees encoded bytes, may return a corrupted
/// replacement (`None` = write faithfully).
pub type MangleFn<'a> = dyn FnMut(&[u8]) -> Option<Vec<u8>> + 'a;

/// Snapshot magic: the bytes `FSNP` read as a little-endian u32.
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"FSNP");

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u8 = 2;

/// An aggregator's durable state, decoupled from the plan it was built for
/// (the embedded `plan_hash` re-binds them at restore time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// [`CollectionPlan::schema_hash`] of the plan the counts belong to.
    pub plan_hash: u64,
    /// Per-grid support counts, exactly as accumulated.
    pub counts: Vec<Vec<u64>>,
    /// Reports ingested per group.
    pub group_sizes: Vec<usize>,
    /// Per-client dedup cursors: `(client_id, highest accepted batch_id)`,
    /// sorted by client id. Empty for offline captures.
    pub dedup: Vec<(u64, u64)>,
}

impl Snapshot {
    /// Captures the aggregator's current state (no dedup table — offline
    /// captures have no notion of clients).
    pub fn capture(agg: &Aggregator, plan_hash: u64) -> Snapshot {
        Snapshot {
            plan_hash,
            counts: agg.counts().to_vec(),
            group_sizes: agg.group_sizes().to_vec(),
            dedup: Vec::new(),
        }
    }

    /// Captures aggregator state *and* the server's per-client dedup
    /// cursors, so duplicates keep being suppressed after a restart.
    /// `dedup` need not be sorted; the snapshot stores it canonically.
    pub fn capture_with_dedup(
        agg: &Aggregator,
        plan_hash: u64,
        dedup: Vec<(u64, u64)>,
    ) -> Snapshot {
        let mut dedup = dedup;
        dedup.sort_unstable();
        Snapshot {
            plan_hash,
            counts: agg.counts().to_vec(),
            group_sizes: agg.group_sizes().to_vec(),
            dedup,
        }
    }

    /// Total reports across all groups.
    pub fn reports_ingested(&self) -> usize {
        self.group_sizes
            .iter()
            // ARITH: diagnostic total only; saturate rather than wrap so a
            // corrupt container can never panic or alias a small count.
            .fold(0usize, |acc, &s| acc.saturating_add(s))
    }

    /// Serialises the snapshot to its on-disk byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let cells: usize = self.counts.iter().map(Vec::len).sum();
        let mut buf = Vec::with_capacity(32 + cells * 8 + self.group_sizes.len() * 8);
        buf.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        buf.push(SNAPSHOT_VERSION);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&self.plan_hash.to_le_bytes());
        buf.extend_from_slice(&(self.reports_ingested() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.counts.len() as u32).to_le_bytes());
        for grid in &self.counts {
            buf.extend_from_slice(&(grid.len() as u32).to_le_bytes());
            for &c in grid {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.group_sizes.len() as u32).to_le_bytes());
        for &s in &self.group_sizes {
            buf.extend_from_slice(&(s as u64).to_le_bytes());
        }
        buf.extend_from_slice(&(self.dedup.len() as u32).to_le_bytes());
        for &(client, batch) in &self.dedup {
            buf.extend_from_slice(&client.to_le_bytes());
            buf.extend_from_slice(&batch.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and checksums an on-disk snapshot.
    ///
    /// Like the wire decoder this consumes untrusted bytes (a torn or
    /// corrupted file), so every failure is a typed [`WireError`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, WireError> {
        if bytes.len() < 4 {
            return Err(WireError::Truncated {
                have: bytes.len(),
                need: 4,
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let expected = crc32(body);
        let actual = wire::le_u32(&bytes[bytes.len() - 4..]);
        if expected != actual {
            return Err(WireError::BadCrc { expected, actual });
        }
        let mut r = Reader { buf: body, pos: 0 };
        let magic = r.u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::BadVersion(version));
        }
        r.take(3)?; // reserved
        let plan_hash = r.u64()?;
        let total = r.u64()?;
        let num_grids = r.u32()? as usize;
        if num_grids > r.remaining() / 4 {
            return Err(WireError::Malformed(format!(
                "grid count {num_grids} impossible"
            )));
        }
        let mut counts = Vec::with_capacity(num_grids);
        for _ in 0..num_grids {
            let cells = r.u32()? as usize;
            if cells > r.remaining() / 8 {
                return Err(WireError::Malformed(format!(
                    "cell count {cells} impossible"
                )));
            }
            let mut grid = Vec::with_capacity(cells);
            for _ in 0..cells {
                grid.push(r.u64()?);
            }
            counts.push(grid);
        }
        let num_groups = r.u32()? as usize;
        if num_groups > r.remaining() / 8 {
            return Err(WireError::Malformed(format!(
                "group count {num_groups} impossible"
            )));
        }
        let mut group_sizes = Vec::with_capacity(num_groups);
        for _ in 0..num_groups {
            group_sizes.push(r.u64()? as usize);
        }
        let num_dedup = r.u32()? as usize;
        if num_dedup > r.remaining() / 16 {
            return Err(WireError::Malformed(format!(
                "dedup count {num_dedup} impossible"
            )));
        }
        let mut dedup = Vec::with_capacity(num_dedup);
        for _ in 0..num_dedup {
            let client = r.u64()?;
            let batch = r.u64()?;
            dedup.push((client, batch));
        }
        if dedup.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(WireError::Malformed(
                "dedup table not sorted by unique client id".into(),
            ));
        }
        if r.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes in snapshot",
                r.remaining()
            )));
        }
        let snap = Snapshot {
            plan_hash,
            counts,
            group_sizes,
            dedup,
        };
        if snap.reports_ingested() as u64 != total {
            return Err(WireError::Malformed(format!(
                "header claims {total} reports, groups sum to {}",
                snap.reports_ingested()
            )));
        }
        Ok(snap)
    }

    /// Atomically writes the snapshot to `path` (temp file + fsync +
    /// rename), so readers never observe a partially written file.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let mut span = felip_obs::span!("server.snapshot.write");
        let bytes = self.encode();
        span.field("bytes", bytes.len());
        span.field("reports", self.reports_ingested());
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        felip_obs::counter!("server.snapshot.writes", 1, "snapshots");
        felip_obs::counter!("server.snapshot.bytes", bytes.len(), "bytes");
        Ok(())
    }

    /// Atomic write **with read-back verification**: the temp file is
    /// re-read and fully decoded before the rename, and the decode must
    /// reproduce this snapshot exactly. A torn or corrupted write (disk
    /// full, bit rot, fault injection via `mangle`) is *quarantined* —
    /// renamed to `<path>.quarantine` for post-mortem — and the last good
    /// snapshot at `path` is left untouched.
    ///
    /// `mangle` is the fault-injection hook: it sees the encoded bytes and
    /// may return a corrupted replacement (`None` = write faithfully). The
    /// production server passes `None`; the chaos harness wires it to its
    /// [`crate::fault::FaultSchedule`].
    pub fn write_verified(
        &self,
        path: &Path,
        mangle: Option<&mut MangleFn<'_>>,
    ) -> Result<(), WireError> {
        let mut span = felip_obs::span!("server.snapshot.write_verified");
        let bytes = self.encode();
        let written = match mangle.and_then(|m| m(&bytes)) {
            Some(torn) => torn,
            None => bytes,
        };
        span.field("bytes", written.len());
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp).map_err(WireError::Io)?;
            f.write_all(&written).map_err(WireError::Io)?;
            f.sync_all().map_err(WireError::Io)?;
        }
        // Read back what actually hit the filesystem and insist it decodes
        // to the state we meant to persist.
        let verify = fs::read(&tmp)
            .map_err(WireError::Io)
            .and_then(|b| Snapshot::decode(&b))
            .and_then(|snap| {
                if snap == *self {
                    Ok(())
                } else {
                    Err(WireError::Malformed(
                        "snapshot read-back decoded to different state".into(),
                    ))
                }
            });
        match verify {
            Ok(()) => {
                fs::rename(&tmp, path).map_err(WireError::Io)?;
                felip_obs::counter!("server.snapshot.writes", 1, "snapshots");
                Ok(())
            }
            Err(e) => {
                let quarantine = path.with_extension("quarantine");
                let _ = fs::rename(&tmp, &quarantine);
                felip_obs::counter!("server.snapshot.quarantined", 1, "snapshots");
                Err(e)
            }
        }
    }

    /// Reads and validates a snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot, WireError> {
        let bytes = fs::read(path)?;
        Snapshot::decode(&bytes)
    }

    /// Rebuilds a live [`Aggregator`] from this snapshot, verifying the
    /// plan fingerprint and all shapes first.
    pub fn restore(
        self,
        plan: Arc<CollectionPlan>,
        oracles: Arc<OracleSet>,
    ) -> Result<Aggregator, WireError> {
        let ours = plan.schema_hash();
        if self.plan_hash != ours {
            return Err(WireError::PlanMismatch {
                ours,
                theirs: self.plan_hash,
            });
        }
        Aggregator::restore(plan, oracles, self.counts, self.group_sizes)
            .map_err(|e| WireError::Malformed(e.to_string()))
    }
}

/// Bounds-checked little-endian reader (private twin of the wire reader).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                have: self.remaining(),
                need: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(wire::le_u32(self.take(4)?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(wire::le_u64(self.take(8)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip::client::respond;
    use felip::config::FelipConfig;
    use felip_common::rng::seeded_rng;
    use felip_common::{Attribute, Schema};

    fn plan() -> Arc<CollectionPlan> {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("c", 3),
        ])
        .unwrap();
        Arc::new(CollectionPlan::build(&schema, 2_000, &FelipConfig::new(1.0), 5).unwrap())
    }

    fn collected(plan: &Arc<CollectionPlan>, users: std::ops::Range<usize>) -> Aggregator {
        let mut agg = Aggregator::new(Arc::clone(plan));
        for u in users {
            let mut rng = seeded_rng(u as u64);
            let r = respond(plan, u, &[(u % 32) as u32, (u % 3) as u32], &mut rng).unwrap();
            agg.ingest(&r).unwrap();
        }
        agg
    }

    #[test]
    fn snapshot_round_trips() {
        let plan = plan();
        let agg = collected(&plan, 0..500);
        let snap = Snapshot::capture(&agg, plan.schema_hash());
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.reports_ingested(), 500);
    }

    #[test]
    fn decode_rejects_any_bit_flip() {
        let plan = plan();
        let agg = collected(&plan, 0..50);
        let good = Snapshot::capture(&agg, plan.schema_hash()).encode();
        for i in (0..good.len()).step_by(17) {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(Snapshot::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
        assert!(Snapshot::decode(&good[..good.len() / 2]).is_err());
        assert!(Snapshot::decode(&[]).is_err());
    }

    #[test]
    fn restore_is_bit_identical() {
        let plan = plan();
        let whole = collected(&plan, 0..800);

        // Stop after 300 users, snapshot, restore, continue with the rest.
        let first = collected(&plan, 0..300);
        let snap = Snapshot::capture(&first, plan.schema_hash());
        let mut resumed = snap.restore(Arc::clone(&plan), first.oracles()).unwrap();
        for u in 300..800 {
            let mut rng = seeded_rng(u as u64);
            let r = respond(&plan, u, &[(u % 32) as u32, (u % 3) as u32], &mut rng).unwrap();
            resumed.ingest(&r).unwrap();
        }
        assert_eq!(resumed.counts(), whole.counts());
        assert_eq!(resumed.group_sizes(), whole.group_sizes());
        let a = resumed.estimate().unwrap();
        let b = whole.estimate().unwrap();
        for (ga, gb) in a.grids().iter().zip(b.grids()) {
            assert_eq!(ga.freqs(), gb.freqs(), "estimates must be bit-identical");
        }
    }

    #[test]
    fn restore_rejects_foreign_plan() {
        let plan = plan();
        let agg = collected(&plan, 0..50);
        let snap = Snapshot::capture(&agg, plan.schema_hash() ^ 1);
        let err = snap.restore(Arc::clone(&plan), agg.oracles()).unwrap_err();
        assert!(matches!(err, WireError::PlanMismatch { .. }), "{err}");
    }

    #[test]
    fn atomic_write_and_read() {
        let plan = plan();
        let agg = collected(&plan, 0..100);
        let snap = Snapshot::capture(&agg, plan.schema_hash());
        let dir = std::env::temp_dir();
        let path = dir.join(format!("felip-snap-test-{}.bin", std::process::id()));
        snap.write_atomic(&path).unwrap();
        let read = Snapshot::read(&path).unwrap();
        assert_eq!(read, snap);
        // Overwrite in place: the rename replaces the old file atomically.
        let later = Snapshot::capture(&collected(&plan, 0..200), plan.schema_hash());
        later.write_atomic(&path).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap().reports_ingested(), 200);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn dedup_table_round_trips_and_survives_restore_path() {
        let plan = plan();
        let agg = collected(&plan, 0..100);
        let snap =
            Snapshot::capture_with_dedup(&agg, plan.schema_hash(), vec![(7, 3), (2, 41), (19, 1)]);
        // Canonicalised on capture, preserved through encode/decode.
        assert_eq!(snap.dedup, vec![(2, 41), (7, 3), (19, 1)]);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn decode_rejects_unsorted_or_duplicate_dedup_entries() {
        let plan = plan();
        let agg = collected(&plan, 0..20);
        let mut snap = Snapshot::capture(&agg, plan.schema_hash());
        snap.dedup = vec![(9, 1), (3, 2)]; // bypass capture's sort
        let err = Snapshot::decode(&snap.encode()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
        snap.dedup = vec![(3, 1), (3, 2)];
        assert!(Snapshot::decode(&snap.encode()).is_err());
    }

    #[test]
    fn write_verified_quarantines_torn_writes_and_keeps_last_good() {
        let plan = plan();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("felip-snap-verify-{}.bin", std::process::id()));
        let quarantine = path.with_extension("quarantine");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&quarantine);

        // A good write lands.
        let good = Snapshot::capture(&collected(&plan, 0..100), plan.schema_hash());
        good.write_verified(&path, None).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap(), good);

        // A torn write is quarantined; the good file is untouched.
        let newer = Snapshot::capture(&collected(&plan, 0..200), plan.schema_hash());
        let mut mangle = |bytes: &[u8]| Some(bytes[..bytes.len() / 2].to_vec());
        let err = newer.write_verified(&path, Some(&mut mangle)).unwrap_err();
        assert!(
            matches!(err, WireError::Truncated { .. } | WireError::BadCrc { .. }),
            "{err}"
        );
        assert_eq!(Snapshot::read(&path).unwrap(), good, "last good clobbered");
        assert!(quarantine.exists(), "torn write not kept for post-mortem");
        assert!(Snapshot::read(&quarantine).is_err());

        // The retry (no fault this time) replaces the old snapshot.
        newer.write_verified(&path, None).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap(), newer);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&quarantine);
    }
}
