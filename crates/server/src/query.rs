//! Online query serving (DESIGN.md §17): the service behind the v5
//! `Query` wire verb.
//!
//! A [`QueryService`] owns handles to the serve run's count state (resume
//! base + worker shards + their queues) and a [`QueryEngine`] guarded by
//! one mutex. Answering a query:
//!
//! 1. Validate the predicates against the plan's schema.
//! 2. Under the engine lock, compare the ingest **head token** (resume
//!    base reports + reports accepted so far, a single relaxed load)
//!    against the token the cached epoch was built from. A `Cached`-mode
//!    query whose token matches is served straight from the cached
//!    estimator — no cut, no post-processing.
//! 3. Otherwise take a consistent cut (the PR-4 machinery: freeze
//!    admission on the dedup lock, wait for queue quiescence, merge
//!    base + shards) and [`QueryEngine::refresh`] from it — re-estimating
//!    only the grids whose counts moved — then answer from the refreshed
//!    estimator.
//!
//! The engine lock is held across cut + refresh + token update, so a
//! query can never pair counts from epoch N with a cached grid from
//! epoch N−1 (the invariant the felip-sync model test explores
//! exhaustively). Replies carry the answer's epoch *and* the head epoch
//! at answer time, so clients can compute staleness as
//! `head_epoch - epoch`.

use felip_sync::{Arc, Mutex};

use felip::aggregator::{Aggregator, OracleSet};
use felip::client::UserReport;
use felip::plan::CollectionPlan;
use felip::query::QueryEngine;
use felip_common::Query;

use crate::queue::BoundedQueue;
use crate::server::{consistent_cut, AtomicStats};
use crate::session::SessionCtx;
use crate::wire::{QueryAnswer, QueryMode, QueryRequest, WireError};

/// The engine plus the ingest head token its cached epoch was built from,
/// guarded together so epoch and token can never tear apart.
struct EngineState {
    engine: QueryEngine,
    head_token: u64,
}

/// The serve run's query-answering state: shared handles to the live
/// count state and the incremental estimation engine.
pub(crate) struct QueryService {
    plan: Arc<CollectionPlan>,
    oracles: Arc<OracleSet>,
    base: Arc<Mutex<Aggregator>>,
    shards: Arc<Vec<Mutex<Aggregator>>>,
    queues: Vec<Arc<BoundedQueue<Vec<UserReport>>>>,
    /// Reports already inside the resume base at startup; accepted-report
    /// counters start at zero, so the head token is `base + accepted`.
    base_reports: u64,
    engine: Mutex<EngineState>,
}

impl QueryService {
    /// Wires a service over a serve run's live state. `base_reports` is
    /// the resume base's report count at startup.
    pub(crate) fn new(
        plan: Arc<CollectionPlan>,
        oracles: Arc<OracleSet>,
        base: Arc<Mutex<Aggregator>>,
        shards: Arc<Vec<Mutex<Aggregator>>>,
        queues: Vec<Arc<BoundedQueue<Vec<UserReport>>>>,
        base_reports: u64,
    ) -> QueryService {
        let engine = QueryEngine::new(Arc::clone(&plan), Arc::clone(&oracles));
        QueryService {
            plan,
            oracles,
            base,
            shards,
            queues,
            base_reports,
            engine: Mutex::new(EngineState {
                engine,
                head_token: 0,
            }),
        }
    }

    /// The ingest head token: total reports the server has admitted
    /// (resume base + accepted), readable without touching any shard.
    fn head_token(&self, stats: &AtomicStats) -> u64 {
        self.base_reports + stats.reports_accepted()
    }

    /// Answers one query, serving from the cached epoch when it is still
    /// the ingest head and refreshing from a fresh consistent cut
    /// otherwise. Errors (invalid predicates, empty collection) are
    /// `Malformed` — the session answers them with an `Error` frame
    /// without closing the connection.
    pub(crate) fn answer(
        &self,
        ctx: &SessionCtx,
        stats: &AtomicStats,
        req: &QueryRequest,
    ) -> Result<QueryAnswer, WireError> {
        let query = Query::new(self.plan.schema(), req.predicates.clone())
            .map_err(|e| WireError::Malformed(format!("invalid query: {e}")))?;

        let mut st = self.engine.lock();
        let head = self.head_token(stats);
        if req.mode == QueryMode::Cached && st.head_token == head {
            if let Some(est) = st.engine.estimator() {
                let answer = est
                    .answer(&query)
                    .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
                let epoch = st.engine.epoch();
                felip_obs::counter!("server.query.answered", 1, "queries");
                return Ok(QueryAnswer {
                    query_id: req.query_id,
                    answer,
                    epoch,
                    head_epoch: epoch,
                    reports: st.engine.reports(),
                });
            }
        }

        // Stale cache (or Fresh mode): one consistent cut, then an
        // incremental refresh that re-estimates only the changed grids.
        let (merged, _cursors) = consistent_cut(
            ctx,
            &self.plan,
            &self.oracles,
            &self.base,
            &self.shards,
            &self.queues,
        )
        .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
        let out = st
            .engine
            .refresh_from(&merged)
            .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
        // At the cut instant, accepted == drained, so the merged report
        // count *is* the head token the refreshed epoch corresponds to.
        st.head_token = merged.reports_ingested() as u64;
        let answer = out
            .estimator
            .answer(&query)
            .map_err(|e| WireError::Malformed(format!("query failed: {e}")))?;
        // Ingest may have moved on while post-processing ran; surface
        // that as one epoch of staleness so the client can tell.
        let head_epoch = out.epoch + u64::from(self.head_token(stats) != st.head_token);
        felip_obs::counter!("server.query.answered", 1, "queries");
        Ok(QueryAnswer {
            query_id: req.query_id,
            answer,
            epoch: out.epoch,
            head_epoch,
            reports: out.reports,
        })
    }
}
