//! Edge-case tests for the epoll reactor serve path (DESIGN.md §15),
//! driven over real loopback sockets so the nonblocking readiness
//! machinery — not the simulated transport — is what's under test.
//!
//! Each test targets one hazard of edge-triggered readiness handling:
//! a frame split across wakeups, a kernel send buffer filling mid-write
//! (`EAGAIN` on the ack path), a peer resetting between readiness and
//! the read, more live connections than the reactor's event batch, and
//! a mid-frame stall tripping the read deadline.
//!
//! On non-linux-x86_64 hosts the same suite exercises the fallback
//! thread-per-connection path, which must honour identical semantics.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};
use felip_server::wire::{encode_hello, read_frame, Frame, FrameKind};
use felip_server::{Server, ServerConfig, ServerRun};

fn plan() -> Arc<CollectionPlan> {
    let schema = Schema::new(vec![
        Attribute::numerical("a", 32),
        Attribute::categorical("c", 4),
    ])
    .unwrap();
    Arc::new(CollectionPlan::build(&schema, 1_000, &FelipConfig::new(1.0), 23).unwrap())
}

/// Boots a server on an ephemeral port, runs `drive` against it, then
/// shuts down gracefully and returns the final run counters.
fn with_server<F>(config: ServerConfig, drive: F) -> ServerRun
where
    F: FnOnce(std::net::SocketAddr, u64),
{
    let plan = plan();
    let plan_hash = plan.schema_hash();
    let server = Server::bind(plan, config).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));
    drive(addr, plan_hash);
    shutdown.store(true, Ordering::SeqCst);
    server_thread.join().expect("join server")
}

fn hello_frame(plan_hash: u64, client_id: u64) -> Vec<u8> {
    Frame {
        kind: FrameKind::Hello,
        plan_hash,
        payload: encode_hello(client_id),
    }
    .encode()
}

/// Reads one frame off a blocking stream, panicking on EOF or garble.
fn expect_frame<R: Read>(r: &mut R) -> Frame {
    read_frame(r).expect("wire error").expect("unexpected EOF")
}

/// A frame written in two pieces with a pause in between must be
/// reassembled across reactor wakeups: the first readable event
/// delivers a partial header, the connection's read buffer holds it,
/// and the second event completes the frame.
#[test]
fn partial_frame_across_wakeups_is_reassembled() {
    let run = with_server(ServerConfig::default(), |addr, plan_hash| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let frame = hello_frame(plan_hash, 77);
        // Split inside the fixed header so the first wakeup cannot even
        // learn the payload length.
        let (head, tail) = frame.split_at(9);
        stream.write_all(head).unwrap();
        stream.flush().unwrap();
        thread::sleep(Duration::from_millis(120));
        stream.write_all(tail).unwrap();
        let reply = expect_frame(&mut stream);
        assert_eq!(reply.kind, FrameKind::Ack);
    });
    assert_eq!(run.stats.frames_rejected, 0);
}

/// Floods the server with hellos without draining acks. The kernel send
/// buffer toward the client fills, the reactor's write hits `EAGAIN`
/// mid-ack, and it must arm `EPOLLOUT` and finish the flush later —
/// every single ack must still arrive, in order, once the client reads.
#[test]
fn eagain_mid_write_flushes_every_ack() {
    const HELLOS: usize = 20_000;
    let run = with_server(ServerConfig::default(), |addr, plan_hash| {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let mut burst = Vec::with_capacity(HELLOS * 40);
        for _ in 0..HELLOS {
            burst.extend_from_slice(&hello_frame(plan_hash, 5));
        }
        // Writer thread: the client-side socket would also block once
        // both directions' buffers fill, so writing and reading must
        // overlap for the test to terminate.
        let writer = thread::spawn(move || {
            let mut w = &stream;
            w.write_all(&burst).unwrap();
            stream
        });
        // Reading lags the writer, guaranteeing a window where the
        // server has acks queued against a full kernel buffer.
        thread::sleep(Duration::from_millis(100));
        let stream = writer.join().expect("writer");
        let mut r = BufReader::new(stream);
        for i in 0..HELLOS {
            let reply = expect_frame(&mut r);
            assert_eq!(reply.kind, FrameKind::Ack, "ack {i} missing or garbled");
        }
    });
    assert_eq!(run.stats.frames_rejected, 0);
}

/// Drops connections with unread acks in the socket buffer, which makes
/// the kernel send `RST` instead of `FIN`: the reactor can then observe
/// `EPOLLERR`/`ECONNRESET` between a readiness event and the read. The
/// server must treat it as that connection's problem only.
#[test]
fn reset_between_readiness_and_read_is_contained() {
    with_server(ServerConfig::default(), |addr, plan_hash| {
        for round in 0..20 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            stream
                .write_all(&hello_frame(plan_hash, 1000 + round))
                .unwrap();
            // Drop without reading the ack: unread data in our receive
            // buffer forces an RST on close.
            drop(stream);
        }
        // Give the reactor a beat to observe the resets, then prove a
        // fresh session still completes normally.
        thread::sleep(Duration::from_millis(100));
        let mut stream = TcpStream::connect(addr).expect("post-reset connect");
        stream.write_all(&hello_frame(plan_hash, 9)).unwrap();
        let reply = expect_frame(&mut stream);
        assert_eq!(reply.kind, FrameKind::Ack);
    });
}

/// Holds more live connections than the reactor's 1024-slot event
/// buffer. Readiness for the overflow must simply arrive on later
/// `epoll_wait` batches — every connection still gets its ack.
#[test]
fn more_connections_than_one_event_batch() {
    const CONNS: usize = 1_100;
    let run = with_server(
        ServerConfig {
            // Long idle timeout: slots must survive while we slowly
            // walk all 1100 handshakes.
            idle_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        |addr, plan_hash| {
            let mut streams = Vec::with_capacity(CONNS);
            for i in 0..CONNS {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.write_all(&hello_frame(plan_hash, i as u64)).unwrap();
                streams.push(stream);
            }
            for (i, stream) in streams.iter_mut().enumerate() {
                let reply = expect_frame(stream);
                assert_eq!(reply.kind, FrameKind::Ack, "connection {i}");
            }
        },
    );
    assert!(
        run.stats.connections >= CONNS as u64,
        "expected >= {CONNS} accepted, saw {}",
        run.stats.connections
    );
}

/// A connection that stalls mid-frame past `read_timeout` must be
/// reported (error frame, then close) rather than pinning its buffer
/// forever; completed-frame idleness is governed separately by
/// `idle_timeout`.
#[test]
fn mid_frame_stall_trips_read_deadline() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let run = with_server(config, |addr, plan_hash| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let frame = hello_frame(plan_hash, 3);
        stream.write_all(&frame[..frame.len() - 5]).unwrap();
        stream.flush().unwrap();
        // Stall far past the read deadline; the server must give up on
        // the half-frame and tell us why before closing.
        let reply = expect_frame(&mut stream);
        assert_eq!(reply.kind, FrameKind::Error);
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read to EOF");
        assert!(rest.is_empty(), "nothing after the error frame");
    });
    assert!(run.stats.frames_rejected >= 1);
}
