//! Property tests for the wire format and snapshot durability: arbitrary
//! batches round-trip exactly; corrupted or truncated bytes are always
//! rejected with a typed error, never a panic; and snapshot save → load →
//! estimate is bit-identical.

use std::sync::Arc;

use proptest::prelude::*;

use felip::client::UserReport;
use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};
use felip_fo::Report;
use felip_server::loadgen::offline_reference;
use felip_server::wire::{decode_reports, encode_reports};
use felip_server::{Frame, FrameKind, Snapshot};

/// One arbitrary report from the raw ingredients: tag choice, scalar
/// payloads, and an OUE word vector.
fn build_report(tag: u8, value: u32, seed: u64, words: Vec<u64>) -> Report {
    match tag % 3 {
        0 => Report::Grr(value),
        1 => Report::Olh { seed, value },
        _ => Report::Oue(words),
    }
}

proptest! {
    /// Encode → decode over arbitrary batches is the identity.
    #[test]
    fn report_batches_round_trip(
        raw in proptest::collection::vec(
            (0u8..3, 0u32..u32::MAX, 0u64..u64::MAX, 0usize..4000,
             proptest::collection::vec(0u64..u64::MAX, 0..20)),
            0..40,
        ),
    ) {
        let reports: Vec<UserReport> = raw
            .into_iter()
            .map(|(tag, value, seed, group, words)| UserReport {
                group,
                report: build_report(tag, value, seed, words),
            })
            .collect();
        let payload = encode_reports(&reports).unwrap();
        prop_assert_eq!(decode_reports(&payload).unwrap(), reports);
    }

    /// Full frames survive encode → decode, and every truncation of the
    /// byte stream is rejected without panicking.
    #[test]
    fn frames_round_trip_and_reject_truncation(
        plan_hash in 0u64..u64::MAX,
        kind in 0u8..5,
        payload in proptest::collection::vec(0u8..=255u8, 0..300),
        cut in 1usize..50,
    ) {
        let kind = match kind {
            0 => FrameKind::Hello,
            1 => FrameKind::ReportBatch,
            2 => FrameKind::Ack,
            3 => FrameKind::Retry,
            _ => FrameKind::Error,
        };
        let frame = Frame { kind, plan_hash, payload };
        let bytes = frame.encode();
        prop_assert_eq!(Frame::decode(&bytes).unwrap(), frame);

        let cut = cut.min(bytes.len());
        prop_assert!(Frame::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    /// Any single bit flip anywhere in a frame is rejected (the CRC-32
    /// guarantee), never panicking and never yielding a frame.
    #[test]
    fn frames_reject_any_bit_flip(
        plan_hash in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255u8, 0..120),
        byte_pos in 0usize..1000,
        bit in 0u8..8,
    ) {
        let frame = Frame { kind: FrameKind::ReportBatch, plan_hash, payload };
        let mut bytes = frame.encode();
        let pos = byte_pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(Frame::decode(&bytes).is_err(), "flip at {} accepted", pos);
    }

    /// Arbitrary garbage never decodes into a report batch by accident of
    /// panicking — it either round-trips as declared data or errors.
    #[test]
    fn garbage_payloads_never_panic(
        payload in proptest::collection::vec(0u8..=255u8, 0..200),
    ) {
        // Any outcome is fine; the property is "no panic, no huge alloc".
        let _ = decode_reports(&payload);
        let _ = Frame::decode(&payload);
        let _ = Snapshot::decode(&payload);
    }

    /// Snapshot save → load → restore → estimate is bit-identical to the
    /// aggregator that never went through disk.
    #[test]
    fn snapshot_estimate_bit_identical(users in 1usize..300, seed in 0u64..1000) {
        let schema = Schema::new(vec![
            Attribute::numerical("a", 32),
            Attribute::categorical("c", 3),
        ]).unwrap();
        let plan = Arc::new(
            CollectionPlan::build(&schema, 1_000, &FelipConfig::new(1.0), 3).unwrap(),
        );
        let original = offline_reference(&plan, 0..users, seed).unwrap();
        let snap = Snapshot::capture(&original, plan.schema_hash());
        let reloaded = Snapshot::decode(&snap.encode()).unwrap();
        let restored = reloaded
            .restore(Arc::clone(&plan), original.oracles())
            .unwrap();
        prop_assert_eq!(restored.counts(), original.counts());
        let a = restored.estimate().unwrap();
        let b = original.estimate().unwrap();
        for (ga, gb) in a.grids().iter().zip(b.grids()) {
            prop_assert_eq!(ga.freqs(), gb.freqs());
        }
    }
}
