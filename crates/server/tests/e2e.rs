//! End-to-end serve tests over loopback TCP: a served collection must be
//! bit-identical to an offline one, including across kill + resume.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::{Attribute, Schema};
use felip_server::loadgen::{offline_reference, user_report};
use felip_server::{Client, RetryPolicy, Server, ServerConfig, ServerRun};

fn plan() -> Arc<CollectionPlan> {
    let schema = Schema::new(vec![
        Attribute::numerical("a", 64),
        Attribute::categorical("c", 4),
    ])
    .unwrap();
    Arc::new(CollectionPlan::build(&schema, 4_000, &FelipConfig::new(1.0), 17).unwrap())
}

/// Boots a server, streams `users` over `connections` clients in batches,
/// shuts down gracefully, and returns the merged run.
fn serve_users(
    plan: &Arc<CollectionPlan>,
    config: ServerConfig,
    users: std::ops::Range<usize>,
    connections: usize,
    seed: u64,
) -> ServerRun {
    let server = Server::bind(Arc::clone(plan), config).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    let plan_hash = plan.schema_hash();
    let user_list: Vec<usize> = users.collect();
    let chunk = user_list.len().div_ceil(connections.max(1));
    thread::scope(|s| {
        for slice in user_list.chunks(chunk.max(1)) {
            let plan = Arc::clone(plan);
            s.spawn(move || {
                let mut client = Client::connect(addr, plan_hash).expect("connect");
                for batch in slice.chunks(50) {
                    let reports: Vec<_> = batch
                        .iter()
                        .map(|&u| user_report(&plan, u, seed).unwrap())
                        .collect();
                    client.send_batch_retrying(&reports).expect("send");
                }
            });
        }
    });

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    server_thread.join().expect("join server")
}

#[test]
fn served_counts_match_offline_collection() {
    let plan = plan();
    let run = serve_users(&plan, ServerConfig::default(), 0..1_500, 3, 99);
    let offline = offline_reference(&plan, 0..1_500, 99).unwrap();

    assert_eq!(run.aggregator.reports_ingested(), 1_500);
    assert_eq!(run.aggregator.counts(), offline.counts());
    assert_eq!(run.aggregator.group_sizes(), offline.group_sizes());
    assert_eq!(run.stats.reports_accepted, 1_500);
    assert!(run.stats.connections >= 3);

    let a = run.aggregator.estimate().unwrap();
    let b = offline.estimate().unwrap();
    for (ga, gb) in a.grids().iter().zip(b.grids()) {
        assert_eq!(ga.freqs(), gb.freqs(), "served estimates must be exact");
    }
}

#[test]
fn tiny_queue_backpressure_loses_nothing() {
    // One worker with a single-slot queue: RETRYs are likely, and the
    // retry-until-ack client loop must still deliver every report exactly
    // once.
    let plan = plan();
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let run = serve_users(&plan, config, 0..1_000, 4, 7);
    let offline = offline_reference(&plan, 0..1_000, 7).unwrap();
    assert_eq!(run.aggregator.counts(), offline.counts());
    assert_eq!(run.aggregator.group_sizes(), offline.group_sizes());
}

#[test]
fn kill_and_resume_is_bit_identical() {
    let plan = plan();
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("felip-e2e-resume-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap);

    // First run: first half of the users, snapshot on shutdown.
    let first_cfg = ServerConfig {
        snapshot_path: Some(snap.clone()),
        snapshot_every: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let first = serve_users(&plan, first_cfg, 0..800, 2, 123);
    assert_eq!(first.aggregator.reports_ingested(), 800);
    assert!(snap.exists(), "graceful shutdown must leave a snapshot");
    assert!(first.stats.snapshots_written >= 1);

    // Second run resumes from the snapshot and serves the second half.
    let second_cfg = ServerConfig {
        snapshot_path: Some(snap.clone()),
        resume: Some(snap.clone()),
        ..ServerConfig::default()
    };
    let second = serve_users(&plan, second_cfg, 800..1_600, 2, 123);
    assert_eq!(second.aggregator.reports_ingested(), 1_600);

    let offline = offline_reference(&plan, 0..1_600, 123).unwrap();
    assert_eq!(second.aggregator.counts(), offline.counts());
    assert_eq!(second.aggregator.group_sizes(), offline.group_sizes());
    let a = second.aggregator.estimate().unwrap();
    let b = offline.estimate().unwrap();
    for (ga, gb) in a.grids().iter().zip(b.grids()) {
        assert_eq!(ga.freqs(), gb.freqs(), "resume must not perturb estimates");
    }
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn reconnect_keeps_identity_and_never_double_counts() {
    let plan = plan();
    let server = Server::bind(Arc::clone(&plan), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let t = thread::spawn(move || server.run(None).unwrap());
    let plan_hash = plan.schema_hash();
    let mk = |range: std::ops::Range<usize>| -> Vec<_> {
        range.map(|u| user_report(&plan, u, 5).unwrap()).collect()
    };

    let mut client = Client::connect_with(addr, plan_hash, 42, RetryPolicy::default()).unwrap();
    client.send_batch_retrying(&mk(0..50)).unwrap();
    client.send_batch_retrying(&mk(50..100)).unwrap();
    assert_eq!(client.last_acked(), 2);

    // The connection dies and the same identity comes back: the Hello ack
    // resyncs the cursor, so nothing already accepted is ever re-sent.
    client.reconnect().unwrap();
    assert_eq!(client.last_acked(), 2, "identity must survive reconnect");
    client.send_batch_retrying(&mk(100..150)).unwrap();
    assert_eq!(client.last_acked(), 3);

    // A separate process pinning the same id resumes the same sequence.
    let late = Client::connect_with(addr, plan_hash, 42, RetryPolicy::default()).unwrap();
    assert_eq!(late.last_acked(), 3);
    drop(late);
    drop(client);

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = t.join().unwrap();
    assert_eq!(run.aggregator.reports_ingested(), 150);
    let offline = offline_reference(&plan, 0..150, 5).unwrap();
    assert_eq!(run.aggregator.counts(), offline.counts());
    assert_eq!(run.aggregator.group_sizes(), offline.group_sizes());
}

#[test]
fn idle_reaped_client_recovers_transparently() {
    // The reaper closes a quiet connection; the next send must reconnect
    // under the same identity inside send_batch_retrying and lose nothing.
    let plan = plan();
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::clone(&plan), config).unwrap();
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let t = thread::spawn(move || server.run(None).unwrap());
    let plan_hash = plan.schema_hash();
    let mk = |range: std::ops::Range<usize>| -> Vec<_> {
        range.map(|u| user_report(&plan, u, 11).unwrap()).collect()
    };

    let mut client = Client::connect_with(addr, plan_hash, 9, RetryPolicy::default()).unwrap();
    client.send_batch_retrying(&mk(0..60)).unwrap();
    thread::sleep(Duration::from_millis(400)); // well past the idle window
    client.send_batch_retrying(&mk(60..120)).unwrap();
    assert_eq!(client.last_acked(), 2);
    drop(client);

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = t.join().unwrap();
    assert_eq!(run.aggregator.reports_ingested(), 120);
    let offline = offline_reference(&plan, 0..120, 11).unwrap();
    assert_eq!(run.aggregator.counts(), offline.counts());
    assert!(run.stats.conns_reaped >= 1, "the reaper should have fired");
}

/// The v5 headline invariant over real TCP: a live `Query` answer equals
/// the offline batch estimate on the same counts, bit for bit — cold,
/// warm (cached epoch), and after more ingest (invalidation).
#[test]
fn live_queries_match_offline_estimates_bit_identically() {
    use felip_common::{Predicate, Query};
    use felip_server::QueryMode;

    let plan = plan();
    let plan_hash = plan.schema_hash();
    let server = Server::bind(Arc::clone(&plan), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    let mut client = Client::connect(addr, plan_hash).expect("connect");
    for batch in (0..600usize).collect::<Vec<_>>().chunks(50) {
        let reports: Vec<_> = batch
            .iter()
            .map(|&u| user_report(&plan, u, 31).unwrap())
            .collect();
        client.send_batch_retrying(&reports).expect("send");
    }

    let preds = vec![
        Predicate::between(0, 8, 40),
        Predicate::in_set(1, vec![1, 2]),
    ];
    let query = Query::new(plan.schema(), preds.clone()).unwrap();

    // Cold: the first query takes a cut and builds epoch 1.
    let cold = client
        .query(preds.clone(), QueryMode::Cached)
        .expect("cold query");
    assert_eq!(cold.epoch, 1);
    assert_eq!(cold.reports, 600);
    assert_eq!(cold.head_epoch, cold.epoch, "no ingest is racing this test");
    let offline = offline_reference(&plan, 0..600, 31).unwrap();
    let expected = offline.estimate().unwrap().answer(&query).unwrap();
    assert_eq!(
        cold.answer.to_bits(),
        expected.to_bits(),
        "live answer must be bit-identical to the offline batch estimate"
    );

    // Warm: same epoch, same bits, no new cut.
    let warm = client
        .query(preds.clone(), QueryMode::Cached)
        .expect("warm query");
    assert_eq!(warm.epoch, 1);
    assert_eq!(warm.answer.to_bits(), expected.to_bits());

    // Fresh mode with unchanged counts must not advance the epoch (the
    // engine sees identical per-grid counts).
    let fresh = client
        .query(preds.clone(), QueryMode::Fresh)
        .expect("fresh query");
    assert_eq!(fresh.epoch, 1);
    assert_eq!(fresh.answer.to_bits(), expected.to_bits());

    // More ingest invalidates the cache: the next query re-cuts, advances
    // the epoch, and again matches offline on the new counts.
    for batch in (600..900usize).collect::<Vec<_>>().chunks(50) {
        let reports: Vec<_> = batch
            .iter()
            .map(|&u| user_report(&plan, u, 31).unwrap())
            .collect();
        client.send_batch_retrying(&reports).expect("send");
    }
    let after = client
        .query(preds.clone(), QueryMode::Cached)
        .expect("post-ingest query");
    assert_eq!(after.epoch, 2);
    assert_eq!(after.reports, 900);
    let offline2 = offline_reference(&plan, 0..900, 31).unwrap();
    let expected2 = offline2.estimate().unwrap().answer(&query).unwrap();
    assert_eq!(after.answer.to_bits(), expected2.to_bits());

    // An invalid query answers an Error frame without killing the
    // connection.
    let err = client
        .query(vec![Predicate::between(0, 63, 2)], QueryMode::Cached)
        .expect_err("inverted range must be rejected");
    assert!(matches!(err, felip_server::WireError::Rejected(_)), "{err}");
    let still = client
        .query(preds, QueryMode::Cached)
        .expect("connection survives");
    assert_eq!(still.answer.to_bits(), expected2.to_bits());

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = server_thread.join().expect("join server");
    assert_eq!(run.aggregator.reports_ingested(), 900);
}

#[test]
fn mismatched_plan_is_rejected_at_handshake() {
    let plan = plan();
    let server = Server::bind(Arc::clone(&plan), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let t = thread::spawn(move || server.run(None).unwrap());

    let err = match Client::connect(addr, plan.schema_hash() ^ 1) {
        Ok(_) => panic!("handshake with a foreign plan hash must fail"),
        Err(e) => e,
    };
    assert!(matches!(err, felip_server::WireError::Rejected(_)), "{err}");

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = t.join().unwrap();
    assert_eq!(run.aggregator.reports_ingested(), 0);
    assert!(run.stats.frames_rejected >= 1);
}
