//! The chaos sweep: many seeds through the deterministic fault-injection
//! harness, asserting the exactly-once-or-rejected invariant under every
//! fault kind, kill+resume with torn snapshot writes included.
//!
//! A seed that fails here reproduces exactly with
//! `cargo run --release -p felip-bench --bin perf_smoke -- --chaos --seed N`.

use std::collections::HashSet;

use felip_server::fault::FaultConfig;
use felip_server::simharness::{
    minimize_failing_seed, replay_token, run_sim, run_sim_suppressed, SimConfig,
};

/// On failure, shrink the seed's fault schedule and report the replay
/// token — `replay_token(&cfg, "<token>")` reproduces the minimized run.
fn assert_seed_ok(cfg: &SimConfig, r: &felip_server::SimReport) {
    if r.ok() {
        return;
    }
    let shrunk = minimize_failing_seed(cfg);
    panic!(
        "seed {} violated invariants: {:?}\nreplay token: {}\nminimized: {:?}",
        r.seed,
        r.violations,
        r.fault_token,
        shrunk.map(|m| (m.token, m.faults, m.report.violations)),
    );
}

#[test]
fn chaos_sweep_holds_exactly_once_or_rejected_across_64_seeds() {
    let mut faults = 0u64;
    let mut quarantined = 0u64;
    let mut duplicates = 0u64;
    let mut acked = 0usize;
    let mut queries = 0u64;
    let mut warm = 0u64;
    for seed in 0..64u64 {
        let cfg = SimConfig::chaos(seed);
        let r = run_sim(&cfg);
        assert_seed_ok(&cfg, &r);
        assert_eq!(r.kills, 1, "seed {seed} must kill and resume once");
        // Every seed mixes queries into the faulted ingest; the harness
        // itself holds each answer to its cut (bit-identical to the
        // offline estimate, cut == ingest head, cold after kill+resume) —
        // here we pin that the mixing is never vacuous.
        assert!(r.queries_answered > 0, "seed {seed} answered no queries");
        faults += r.faults_injected;
        quarantined += r.snapshots_quarantined;
        duplicates += r.duplicates;
        acked += r.server_acked_batches;
        queries += r.queries_answered;
        warm += r.query_warm_hits;
    }
    // The sweep must actually exercise chaos, not pass vacuously.
    assert!(acked > 64, "sweep accepted almost nothing: {acked} batches");
    assert!(faults > 64, "sweep injected too few faults: {faults}");
    assert!(
        duplicates >= 1,
        "no duplicate delivery was ever suppressed across the sweep"
    );
    // Torn snapshot writes fire at ~20% per kill; 64 kills make at least
    // one quarantine overwhelmingly likely (and deterministic per seed).
    assert!(
        quarantined >= 1,
        "no snapshot corruption was exercised across the sweep"
    );
    // The query mix must exercise both cache paths across the sweep:
    // answers while ingest moves (cold/invalidated) and warm hits.
    assert!(queries > 64, "sweep answered too few queries: {queries}");
    assert!(
        warm >= 1 && warm < queries,
        "cache path coverage degenerated: {warm}/{queries} warm"
    );
}

#[test]
fn every_seed_is_bit_identical_on_replay() {
    for seed in [0u64, 3, 17, 42, 63] {
        let a = run_sim(&SimConfig::chaos(seed));
        let b = run_sim(&SimConfig::chaos(seed));
        assert_eq!(a, b, "seed {seed}: replay diverged");
    }
}

#[test]
fn heavy_fault_rates_still_settle_observably() {
    // An order of magnitude more chaos than the standard mix: clients may
    // exhaust their budgets, but every outcome must stay typed — either
    // accepted exactly once or given up, never silent loss.
    let faults = FaultConfig {
        drop_ppm: 60_000,
        truncate_ppm: 40_000,
        duplicate_ppm: 60_000,
        reorder_ppm: 60_000,
        corrupt_ppm: 40_000,
        reset_ppm: 30_000,
        stall_ppm: 30_000,
        snapshot_corrupt_ppm: 500_000,
    };
    for seed in 0..8u64 {
        let cfg = SimConfig {
            faults,
            ..SimConfig::chaos(seed)
        };
        let r = run_sim(&cfg);
        assert_seed_ok(&cfg, &r);
        assert!(r.faults_injected > 0, "seed {seed} injected nothing");
    }
}

#[test]
fn fault_token_replays_bit_identically() {
    let cfg = SimConfig::chaos(42);
    let r = run_sim(&cfg);
    assert_eq!(r.fault_token, "seed=42");
    let replayed = replay_token(&cfg, &r.fault_token).expect("token parses");
    assert_eq!(r, replayed, "token replay diverged");
}

#[test]
fn suppressing_every_fault_reduces_chaos_to_lossless_behaviour() {
    let cfg = SimConfig::chaos(17);
    let chaotic = run_sim(&cfg);
    assert!(chaotic.faults_injected > 0, "seed 17 must inject something");
    // Suppress every fault that fired; the re-run may fire faults at new
    // indices (the event flow changed), so iterate to a fixed point.
    let mut suppressed: HashSet<u64> = HashSet::new();
    let calm = loop {
        let r = run_sim_suppressed(&cfg, &suppressed);
        if r.faults_injected == 0 {
            break r;
        }
        suppressed.extend(r.faults_fired.iter().map(|&(i, _)| i));
    };
    assert!(calm.ok(), "suppressed run failed: {:?}", calm.violations);
    assert_eq!(calm.faults_injected, 0);
    assert!(calm.fault_token.starts_with("seed=17;suppress="));
    // And the token round-trips the suppressed run exactly.
    let replayed = replay_token(&cfg, &calm.fault_token).expect("token parses");
    assert_eq!(calm, replayed, "suppressed-token replay diverged");
}

#[test]
fn flight_dump_reconstructs_the_last_events_bit_identically_per_seed() {
    // The sim run itself asserts (via its verify pass) that the flight
    // ring's dump equals the shadow log's tail event-for-event; here we
    // additionally pin that the dump is a pure function of the seed, and
    // that chaos runs actually wrap the ring (dropped prefix > 0).
    for seed in [0u64, 11, 42] {
        let a = run_sim(&SimConfig::chaos(seed));
        let b = run_sim(&SimConfig::chaos(seed));
        assert!(a.ok(), "seed {seed}: {:?}", a.violations);
        assert_eq!(
            a.flight_digest, b.flight_digest,
            "seed {seed}: flight dump diverged across identical runs"
        );
        assert!(
            a.flight_total > 64,
            "seed {seed}: chaos run must wrap the 64-slot ring, recorded {}",
            a.flight_total
        );
    }
}

#[test]
fn minimizer_returns_none_for_passing_seeds() {
    assert!(minimize_failing_seed(&SimConfig::chaos(1)).is_none());
}

#[test]
fn lossless_baseline_is_perfect_delivery() {
    for seed in 0..4u64 {
        let r = run_sim(&SimConfig::lossless(seed));
        assert!(r.ok(), "seed {seed}: {:?}", r.violations);
        assert_eq!(r.reports_ingested, 240, "seed {seed} lost reports");
        assert_eq!(r.gave_up, 0);
        assert_eq!(r.faults_injected, 0);
        assert_eq!(r.snapshots_quarantined, 0);
    }
}
