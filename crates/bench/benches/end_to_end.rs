//! End-to-end pipeline benchmarks: a full FELIP collection (plan → perturb
//! every user → aggregate → post-process) and query answering, at several
//! population sizes — the numbers a deployment would size capacity with.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use felip::{simulate, FelipConfig, Strategy};
use felip_datasets::{generate_queries, DatasetKind, GenOptions, WorkloadOptions};

fn opts(n: usize) -> GenOptions {
    GenOptions {
        n,
        numerical: 3,
        categorical: 3,
        numerical_domain: 64,
        categorical_domain: 8,
        seed: 11,
    }
}

fn bench_collection(c: &mut Criterion) {
    let mut g = c.benchmark_group("collection");
    g.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let data = DatasetKind::IpumsLike.generate(opts(n));
        g.throughput(Throughput::Elements(n as u64));
        for strategy in [Strategy::Oug, Strategy::Ohg] {
            let cfg = FelipConfig::new(1.0).with_strategy(strategy);
            g.bench_with_input(BenchmarkId::new(format!("{strategy}"), n), &n, |b, _| {
                b.iter(|| simulate(black_box(&data), &cfg, 3).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_query_answering(c: &mut Criterion) {
    let mut g = c.benchmark_group("answer");
    g.sample_size(10);
    let data = DatasetKind::IpumsLike.generate(opts(50_000));
    let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
    let est = simulate(&data, &cfg, 3).unwrap();
    for &lambda in &[2usize, 4, 6] {
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda,
                selectivity: 0.5,
                count: 10,
                seed: 5,
                range_only: false,
            },
        )
        .unwrap();
        // Warm the response-matrix cache so the bench isolates fitting cost.
        est.answer_all(&queries).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, _| {
            b.iter(|| est.answer_all(black_box(&queries)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collection, bench_query_answering);
criterion_main!(benches);
