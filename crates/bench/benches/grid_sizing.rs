//! Benchmarks of the grid-size optimiser (§5.2): the per-grid cost the
//! aggregator pays at plan time, for each grid kind and protocol.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use felip_common::AttrKind;
use felip_fo::FoKind;
use felip_grid::optimize::{optimize_grid, AxisInput, SizingInput};

fn input(kind_x: AttrKind, kind_y: Option<AttrKind>, d: u32) -> SizingInput {
    let axis = |k: AttrKind| AxisInput {
        domain: d,
        kind: k,
        selectivity: 0.5,
    };
    SizingInput {
        n: 1_000_000,
        m: 21,
        epsilon: 1.0,
        alpha1: 0.7,
        alpha2: 0.03,
        x: axis(kind_x),
        y: kind_y.map(axis),
    }
}

fn bench_sizing(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_sizing");
    for &d in &[64u32, 1024] {
        for fo in [FoKind::Grr, FoKind::Olh] {
            g.bench_with_input(BenchmarkId::new(format!("num1d_{fo}"), d), &d, |b, _| {
                b.iter(|| optimize_grid(black_box(input(AttrKind::Numerical, None, d)), fo))
            });
            g.bench_with_input(BenchmarkId::new(format!("numnum_{fo}"), d), &d, |b, _| {
                b.iter(|| {
                    optimize_grid(
                        black_box(input(AttrKind::Numerical, Some(AttrKind::Numerical), d)),
                        fo,
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_full_plan(c: &mut Criterion) {
    use felip::{CollectionPlan, FelipConfig, Strategy};
    use felip_common::{Attribute, Schema};

    let mut g = c.benchmark_group("collection_plan");
    for &k in &[4usize, 6, 10] {
        let schema = Schema::new(
            (0..k)
                .map(|i| {
                    if i % 2 == 0 {
                        Attribute::numerical(format!("n{i}"), 256)
                    } else {
                        Attribute::categorical(format!("c{i}"), 8)
                    }
                })
                .collect(),
        )
        .unwrap();
        let cfg = FelipConfig::new(1.0).with_strategy(Strategy::Ohg);
        g.bench_with_input(BenchmarkId::new("ohg", k), &k, |b, _| {
            b.iter(|| CollectionPlan::build(black_box(&schema), 1_000_000, &cfg, 7).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sizing, bench_full_plan);
criterion_main!(benches);
