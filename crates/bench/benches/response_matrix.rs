//! Benchmarks of Algorithm 3 (response-matrix construction) and Algorithm 4
//! (λ-D fitting) — the query-time costs of the aggregator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use felip_common::rng::seeded_rng;
use felip_common::{Attribute, Schema};
use felip_fo::FoKind;
use felip_grid::lambda::{fit_lambda, PairAnswer};
use felip_grid::response::ResponseMatrix;
use felip_grid::{EstimatedGrid, GridSpec};
use rand::Rng;

fn distribution(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = seeded_rng(seed);
    let mut v: Vec<f64> = (0..len).map(|_| rng.gen::<f64>()).collect();
    let s: f64 = v.iter().sum();
    v.iter_mut().for_each(|x| *x /= s);
    v
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("response_matrix_build");
    g.sample_size(10);
    for &d in &[64u32, 256, 1024] {
        let schema = Schema::new(vec![
            Attribute::numerical("x", d),
            Attribute::numerical("y", d),
        ])
        .unwrap();
        let lx = (d / 16).max(2);
        let g2 = EstimatedGrid::new(
            GridSpec::two_dim(&schema, 0, 1, lx, lx, FoKind::Olh).unwrap(),
            distribution((lx * lx) as usize, 1),
        );
        let l1 = (d / 4).max(2);
        let g1a = EstimatedGrid::new(
            GridSpec::one_dim(&schema, 0, l1, FoKind::Olh).unwrap(),
            distribution(l1 as usize, 2),
        );
        let g1b = EstimatedGrid::new(
            GridSpec::one_dim(&schema, 1, l1, FoKind::Olh).unwrap(),
            distribution(l1 as usize, 3),
        );
        g.bench_with_input(BenchmarkId::new("hybrid", d), &d, |b, _| {
            b.iter(|| {
                ResponseMatrix::build(0, 1, d, d, black_box(&[&g2, &g1a, &g1b]), 1e-6).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_lambda_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("lambda_fit");
    for &lambda in &[3usize, 6, 10] {
        let mut rng = seeded_rng(4);
        let mut pairs = Vec::new();
        for s in 0..lambda {
            for t in (s + 1)..lambda {
                pairs.push(PairAnswer {
                    s,
                    t,
                    answer: rng.gen::<f64>() * 0.3,
                });
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, _| {
            b.iter(|| fit_lambda(black_box(lambda), &pairs, 1e-6))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_lambda_fit);
criterion_main!(benches);
