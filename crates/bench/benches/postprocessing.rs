//! Benchmarks of the post-processing stage (§5.4): norm-sub and the
//! cross-grid consistency pass.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use felip_common::rng::seeded_rng;
use felip_common::{Attribute, Schema};
use felip_fo::FoKind;
use felip_grid::postprocess::{enforce_consistency, norm_sub, post_process};
use felip_grid::{EstimatedGrid, GridSpec};
use rand::Rng;

fn noisy(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = seeded_rng(seed);
    let mut v: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() / len as f64).collect();
    // Sprinkle negatives the way raw FO estimates have them.
    for i in (0..len).step_by(7) {
        v[i] = -v[i];
    }
    v
}

fn bench_norm_sub(c: &mut Criterion) {
    let mut g = c.benchmark_group("norm_sub");
    for &len in &[64usize, 1024, 16_384] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter_batched(
                || noisy(len, 1),
                |mut f| norm_sub(black_box(&mut f), 1.0),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn make_grids(d: u32) -> (Vec<EstimatedGrid>, Vec<f64>) {
    let schema = Schema::new(vec![
        Attribute::numerical("x", d),
        Attribute::numerical("y", d),
    ])
    .unwrap();
    let g1 = GridSpec::one_dim(&schema, 0, (d / 8).max(2), FoKind::Olh).unwrap();
    let g2 =
        GridSpec::two_dim(&schema, 0, 1, (d / 16).max(2), (d / 16).max(2), FoKind::Olh).unwrap();
    let f1 = noisy(g1.num_cells() as usize, 2);
    let f2 = noisy(g2.num_cells() as usize, 3);
    (
        vec![EstimatedGrid::new(g1, f1), EstimatedGrid::new(g2, f2)],
        vec![1e-5, 2e-5],
    )
}

fn bench_consistency(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistency");
    for &d in &[128u32, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter_batched(
                || make_grids(d),
                |(mut grids, vars)| enforce_consistency(black_box(&mut grids), 0, &vars).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_post_process(c: &mut Criterion) {
    let mut g = c.benchmark_group("post_process");
    for &d in &[128u32, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter_batched(
                || make_grids(d),
                |(mut grids, vars)| post_process(black_box(&mut grids), 2, &vars, 2).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_norm_sub,
    bench_consistency,
    bench_full_post_process
);
criterion_main!(benches);
