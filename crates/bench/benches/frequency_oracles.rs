//! Micro-benchmarks of the frequency-oracle hot paths: client perturbation
//! and server aggregation for GRR, OLH and OUE. OLH aggregation (support
//! counting, |reports| × d hash evaluations) dominates the whole system's
//! server cost, which is why its throughput matters.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use felip_common::rng::seeded_rng;
use felip_fo::{FrequencyOracle, Grr, Olh, Oue};

fn bench_perturb(c: &mut Criterion) {
    let mut g = c.benchmark_group("perturb");
    let eps = 1.0;
    for &d in &[16u32, 256, 1024] {
        g.throughput(Throughput::Elements(1));
        let mut rng = seeded_rng(1);
        let grr = Grr::new(eps, d);
        g.bench_with_input(BenchmarkId::new("grr", d), &d, |b, _| {
            b.iter(|| grr.perturb(black_box(3), &mut rng))
        });
        let olh = Olh::new(eps, d);
        g.bench_with_input(BenchmarkId::new("olh", d), &d, |b, _| {
            b.iter(|| olh.perturb(black_box(3), &mut rng))
        });
        let oue = Oue::new(eps, d);
        g.bench_with_input(BenchmarkId::new("oue", d), &d, |b, _| {
            b.iter(|| oue.perturb(black_box(3), &mut rng))
        });
    }
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate");
    g.sample_size(10);
    let eps = 1.0;
    let n = 10_000usize;
    for &d in &[64u32, 512] {
        g.throughput(Throughput::Elements(n as u64));
        let mut rng = seeded_rng(2);
        let grr = Grr::new(eps, d);
        let grr_reports: Vec<_> = (0..n)
            .map(|i| grr.perturb(i as u32 % d, &mut rng))
            .collect();
        g.bench_with_input(BenchmarkId::new("grr", d), &d, |b, _| {
            b.iter(|| grr.aggregate(black_box(&grr_reports)).unwrap())
        });
        let olh = Olh::new(eps, d);
        let olh_reports: Vec<_> = (0..n)
            .map(|i| olh.perturb(i as u32 % d, &mut rng))
            .collect();
        g.bench_with_input(BenchmarkId::new("olh", d), &d, |b, _| {
            b.iter(|| olh.aggregate(black_box(&olh_reports)).unwrap())
        });
    }
    g.finish();
}

fn bench_streaming_accumulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("accumulate_one_report");
    let eps = 1.0;
    for &d in &[64u32, 512, 2048] {
        let mut rng = seeded_rng(3);
        let olh = Olh::new(eps, d);
        let report = olh.perturb(1, &mut rng);
        let mut counts = vec![0u64; d as usize];
        g.bench_with_input(BenchmarkId::new("olh", d), &d, |b, _| {
            b.iter(|| olh.accumulate(black_box(&report), &mut counts).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_perturb,
    bench_aggregate,
    bench_streaming_accumulate
);
criterion_main!(benches);
