//! `perf_smoke --cluster-loadgen`: loopback load generation against the
//! two-tier cluster (DESIGN.md §16).
//!
//! Boots an in-process [`felip_cluster::AggregatorServer`] plus N ingest
//! [`felip_server::Server`]s whose consistent cuts stream upstream as
//! epoch-numbered deltas, splits the deterministic loadgen stream across
//! the nodes, and measures:
//!
//! * **aggregate throughput** — reports/s from the first frame on any
//!   node's wire to the last node's final flush being acked by the
//!   aggregator (i.e. until the merged view is complete, not merely until
//!   ingest nodes have the data);
//! * **delta-merge latency** — p50/p99 of `cluster.delta.apply`, the
//!   validate+merge cost of one delta on the aggregator;
//! * **catch-up time** — how long a node that joins late with a full
//!   share of pre-existing counts takes to be merged (the handshake +
//!   full-cumulative-resync rejoin path).
//!
//! The run is self-verifying: the merged counts must be bit-identical to
//! an offline single-node collection of the union stream, so the numbers
//! only ever describe a correct run.

use std::thread;
use std::time::{Duration, Instant};

use felip_cluster::{AggregatorConfig, AggregatorServer, StreamerConfig, UpstreamStreamer};
use felip_common::rng::derive_seed;
use felip_server::loadgen::{offline_reference, user_report};
use felip_server::wire::encode_batch;
use felip_server::{
    CutState, Frame, FrameKind, PipelinedClient, RetryPolicy, Server, ServerConfig,
};
use serde_json::{json, Value};
use std::sync::Arc;

/// Options for the cluster load generation run.
#[derive(Debug, Clone)]
pub struct ClusterLoadOptions {
    /// Ingest nodes (each gets one pipelined connection).
    pub nodes: usize,
    /// Total users (= reports) split across the nodes.
    pub users: usize,
    /// Reports per `ReportBatch` frame.
    pub batch: usize,
    /// Pipeline window: unacked frames in flight per node connection.
    pub window: usize,
    /// Ingest-node consistent-cut (= delta shipping) cadence.
    pub delta_every: Duration,
    /// Loadgen seed (drives records and perturbation).
    pub seed: u64,
    /// Output JSON path.
    pub out: String,
}

impl Default for ClusterLoadOptions {
    fn default() -> Self {
        ClusterLoadOptions {
            nodes: 2,
            users: 200_000,
            batch: 500,
            window: 16,
            delta_every: Duration::from_millis(10),
            seed: 0xBEEF,
            out: "BENCH_cluster.json".to_string(),
        }
    }
}

/// One cluster run's measured results.
#[derive(Debug, Clone)]
pub struct ClusterLoadResult {
    /// Ingest nodes driven.
    pub nodes: usize,
    /// Reports merged by the aggregator during the timed load.
    pub reports: usize,
    /// Wall-clock seconds from first frame to the last flush ack.
    pub elapsed_s: f64,
    /// Sustained cluster-wide ingestion throughput.
    pub aggregate_reports_per_sec: f64,
    /// Median aggregator delta validate+apply time, microseconds.
    pub delta_merge_p50_us: f64,
    /// 99th-percentile aggregator delta validate+apply time.
    pub delta_merge_p99_us: f64,
    /// Deltas the aggregator merged (incremental + full).
    pub deltas_applied: u64,
    /// Full cumulative resyncs across every streamer.
    pub full_resyncs: u64,
    /// Reports carried by the late joiner's catch-up resync.
    pub catchup_reports: usize,
    /// Wall-clock ms for the late joiner to be merged.
    pub catchup_ms: f64,
}

/// Reads one metric's counter value from the global recorder.
fn counter_value(name: &str) -> u64 {
    felip_obs::global()
        .metric(name)
        .and_then(|m| m.value.as_u64())
        .unwrap_or(0)
}

/// The aggregator's delta-apply histogram, if any deltas were applied.
fn apply_histogram() -> Option<felip_obs::HistogramSnapshot> {
    match felip_obs::global()
        .metric("cluster.delta.apply")
        .map(|m| m.value)
    {
        Some(felip_obs::MetricValue::Histogram(h)) => Some(h),
        _ => None,
    }
}

/// Runs one cluster load generation and returns the measurements.
pub fn run_cluster_loadgen(opts: &ClusterLoadOptions) -> ClusterLoadResult {
    let nodes = opts.nodes.max(1);
    let users = opts.users.max(nodes);
    let plan = crate::serve::bench_plan(users, 23);
    let plan_hash = plan.schema_hash();

    let obs_was_enabled = felip_obs::global().is_enabled();
    felip_obs::global().reset();
    felip_obs::enable();

    let agg = AggregatorServer::bind(Arc::clone(&plan), AggregatorConfig::default())
        .expect("bind aggregator");
    let upstream = agg.local_addr();
    let agg_stop = agg.shutdown_handle();
    let agg_thread = thread::spawn(move || agg.run(None).expect("aggregator run"));

    // Pre-generate AND pre-encode every node's frames so the timed
    // section measures the cluster, not client-side perturbation.
    let per_node = users.div_ceil(nodes);
    let streams: Vec<Vec<Vec<u8>>> = (0..nodes)
        .map(|n| {
            let lo = n * per_node;
            let hi = ((n + 1) * per_node).min(users);
            let reports: Vec<_> = (lo..hi)
                .map(|u| user_report(&plan, u, opts.seed).expect("loadgen report"))
                .collect();
            reports
                .chunks(opts.batch.max(1))
                .enumerate()
                .map(|(i, chunk)| {
                    Frame {
                        kind: FrameKind::ReportBatch,
                        plan_hash,
                        payload: encode_batch(i as u64 + 1, chunk).expect("encode batch"),
                    }
                    .encode()
                })
                .collect()
        })
        .collect();

    // Timed: pump every node concurrently, drain each node's server, and
    // flush its final cut upstream — the clock stops only once the
    // aggregator has acked every node's complete share.
    let started = Instant::now();
    let full_resyncs: u64 = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(n, frames)| {
                let plan = Arc::clone(&plan);
                let seed = opts.seed;
                let window = opts.window;
                s.spawn(move || {
                    let streamer = UpstreamStreamer::start(StreamerConfig {
                        upstream: upstream.to_string(),
                        node_id: n as u64 + 1,
                        plan_hash,
                        ..StreamerConfig::default()
                    });
                    let config = ServerConfig {
                        cut_hook: Some(streamer.hook()),
                        cut_every: opts.delta_every.max(Duration::from_millis(1)),
                        ..ServerConfig::default()
                    };
                    let server = Server::bind(Arc::clone(&plan), config).expect("bind node");
                    let addr = server.local_addr();
                    let stop = server.shutdown_handle();
                    let node_thread = thread::spawn(move || server.run(None).expect("node serve"));

                    let client_id = derive_seed(seed, n as u64 + 1);
                    let policy = RetryPolicy {
                        jitter_seed: client_id,
                        ..RetryPolicy::default()
                    };
                    let mut client =
                        PipelinedClient::connect_with(addr, plan_hash, client_id, policy)
                            .expect("connect");
                    client.pump_encoded(frames, window).expect("pump");
                    drop(client);

                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                    let run = node_thread.join().expect("node join");
                    let report = streamer
                        .finish(
                            CutState {
                                counts: run.aggregator.counts().to_vec(),
                                group_sizes: run.aggregator.group_sizes().to_vec(),
                                reports: run.aggregator.reports_ingested() as u64,
                            },
                            Duration::from_secs(60),
                        )
                        .expect("final flush");
                    report.full_resyncs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("node")).sum()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Catch-up: a late joiner arrives with a full share of pre-existing
    // counts (think: rejoin after a crash, cursor lost) and is merged via
    // the handshake + full-cumulative-resync path.
    let catchup_reports = per_node;
    let late =
        offline_reference(&plan, users..users + catchup_reports, opts.seed).expect("late share");
    let late_cut = CutState {
        counts: late.counts().to_vec(),
        group_sizes: late.group_sizes().to_vec(),
        reports: late.reports_ingested() as u64,
    };
    let catchup_started = Instant::now();
    let joiner = UpstreamStreamer::start(StreamerConfig {
        upstream: upstream.to_string(),
        node_id: nodes as u64 + 1,
        plan_hash,
        ..StreamerConfig::default()
    });
    let catchup_report = joiner
        .finish(late_cut, Duration::from_secs(60))
        .expect("catch-up flush");
    let catchup_ms = catchup_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(catchup_report.flushed_reports as usize, catchup_reports);

    let hist = apply_histogram();
    let deltas_applied = counter_value("cluster.delta.applied");

    agg_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = agg_thread.join().expect("aggregator join");
    if !obs_was_enabled {
        felip_obs::disable();
    }

    // Self-verification: the merged counts must equal an offline
    // single-node collection of the union stream, bit for bit.
    let expected =
        offline_reference(&plan, 0..users + catchup_reports, opts.seed).expect("offline");
    assert_eq!(run.merged.reports_ingested(), users + catchup_reports);
    assert_eq!(
        run.merged.counts(),
        expected.counts(),
        "cluster loadgen drifted"
    );
    assert_eq!(run.merged.counts_digest(), expected.counts_digest());

    ClusterLoadResult {
        nodes,
        reports: users,
        elapsed_s: elapsed,
        aggregate_reports_per_sec: users as f64 / elapsed,
        delta_merge_p50_us: hist.as_ref().map_or(0.0, |h| h.percentile(50.0)),
        delta_merge_p99_us: hist.as_ref().map_or(0.0, |h| h.percentile(99.0)),
        deltas_applied,
        full_resyncs,
        catchup_reports,
        catchup_ms,
    }
}

/// Renders the run as the `BENCH_cluster.json` document.
pub fn to_json(r: &ClusterLoadResult, opts: &ClusterLoadOptions) -> Value {
    json!({
        "bench": "cluster_loadgen",
        "transport": "tcp loopback",
        "nodes": r.nodes,
        "reports": r.reports,
        "batch": opts.batch,
        "window": opts.window,
        "delta_every_ms": opts.delta_every.as_millis() as u64,
        "elapsed_s": r.elapsed_s,
        "aggregate_reports_per_sec": r.aggregate_reports_per_sec,
        "delta_merge_p50_us": r.delta_merge_p50_us,
        "delta_merge_p99_us": r.delta_merge_p99_us,
        "deltas_applied": r.deltas_applied,
        "full_resyncs": r.full_resyncs,
        "catchup_reports": r.catchup_reports,
        "catchup_ms": r.catchup_ms,
    })
}

/// Runs the cluster loadgen, prints the summary line, and writes the JSON
/// document.
pub fn cluster_smoke(opts: &ClusterLoadOptions) -> std::io::Result<()> {
    println!(
        "cluster_loadgen: {} users over {} ingest nodes × batch {} (window {}), \
         deltas every {}ms",
        opts.users,
        opts.nodes,
        opts.batch,
        opts.window,
        opts.delta_every.as_millis()
    );
    let r = run_cluster_loadgen(opts);
    println!(
        "merged {:>8} reports in {:>6.2}s  {:>10.0} rep/s  delta apply p50 {:>6.0}µs  \
         p99 {:>6.0}µs  catch-up {:>6.1}ms ({} reports)",
        r.reports,
        r.elapsed_s,
        r.aggregate_reports_per_sec,
        r.delta_merge_p50_us,
        r.delta_merge_p99_us,
        r.catchup_ms,
        r.catchup_reports
    );
    let doc = to_json(&r, opts);
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )?;
    println!("wrote {}", opts.out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_run_is_lossless_and_shaped() {
        let opts = ClusterLoadOptions {
            nodes: 2,
            users: 2_000,
            batch: 100,
            delta_every: Duration::from_millis(5),
            ..ClusterLoadOptions::default()
        };
        let r = run_cluster_loadgen(&opts);
        assert_eq!(r.nodes, 2);
        assert_eq!(r.reports, 2_000);
        assert!(r.aggregate_reports_per_sec > 0.0);
        assert!(r.deltas_applied >= 3, "2 node flushes + 1 catch-up");
        assert!(r.full_resyncs + 1 >= 1);
        assert!(r.catchup_ms > 0.0);
        assert!(r.delta_merge_p99_us >= r.delta_merge_p50_us);

        let doc = to_json(&r, &opts);
        for key in [
            "bench",
            "nodes",
            "aggregate_reports_per_sec",
            "delta_merge_p50_us",
            "delta_merge_p99_us",
            "catchup_ms",
        ] {
            assert!(doc.get(key).is_some(), "missing headline key {key}");
        }
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("cluster_loadgen")
        );
    }
}
