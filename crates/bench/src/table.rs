//! CSV emission for experiment series.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Writes experiment rows to stdout and, optionally, a CSV file.
#[derive(Debug)]
pub struct CsvSink {
    header: String,
    file: Option<fs::File>,
}

impl CsvSink {
    /// Creates a sink for one figure. When `out_dir` is set the rows are
    /// also appended to `<out_dir>/<name>.csv` (directory created as
    /// needed).
    pub fn new(name: &str, header: &str, out_dir: Option<&str>) -> std::io::Result<Self> {
        let file = match out_dir {
            Some(dir) => {
                fs::create_dir_all(dir)?;
                let mut path = PathBuf::from(dir);
                path.push(format!("{name}.csv"));
                let mut f = fs::File::create(path)?;
                writeln!(f, "{header}")?;
                Some(f)
            }
            None => None,
        };
        println!("{header}");
        Ok(CsvSink {
            header: header.to_string(),
            file,
        })
    }

    /// Emits one row.
    pub fn write_row(&mut self, row: &str) -> std::io::Result<()> {
        debug_assert_eq!(
            row.split(',').count(),
            self.header.split(',').count(),
            "row arity must match header"
        );
        println!("{row}");
        if let Some(f) = &mut self.file {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_file_when_out_dir_given() {
        let dir = std::env::temp_dir().join(format!("felip-csv-test-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        let mut sink = CsvSink::new("t", "a,b", Some(&dirs)).unwrap();
        sink.write_row("1,2").unwrap();
        sink.write_row("3,4").unwrap();
        drop(sink);
        let content = fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stdout_only_without_out_dir() {
        let mut sink = CsvSink::new("t", "a,b", None).unwrap();
        sink.write_row("1,2").unwrap();
    }
}
