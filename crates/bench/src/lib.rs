#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness regenerating every figure of the FELIP paper.
//!
//! Each figure has a binary (`fig1` … `fig7`) that sweeps the figure's
//! x-axis, runs every strategy on every dataset, and prints one CSV row per
//! `(dataset, λ, x, strategy)` series point — the same series the paper
//! plots. Ablation binaries (`afo_crossover`, `ablation_partitioning`,
//! `ablation_postprocess`, `ablation_selectivity`, `ablation_marginals`,
//! `ablation_twophase`, `sw_vs_olh`) cover the design choices and
//! extensions DESIGN.md calls out.
//!
//! # Profiles
//!
//! The paper's full scale (n = 10⁶ users per point, tens of points per
//! figure) takes hours on a laptop-class machine, so every binary accepts:
//!
//! * `--quick` *(default)* — n = 60 000, |Q| = 10, 1 repeat;
//! * `--full`  — the paper's parameters (n = 10⁶, domains up to 1600).
//!
//! Output goes to stdout and, when `--out DIR` is passed, to
//! `DIR/<figure>.csv`.

pub mod ablations;
pub mod chaos;
pub mod cluster;
pub mod figures;
pub mod perf;
pub mod profile;
pub mod query;
pub mod runner;
pub mod serve;
pub mod table;

pub use profile::Profile;
pub use runner::{evaluate_mae, StrategyUnderTest};
pub use table::CsvSink;
