//! Strategy dispatch: run any mechanism end-to-end and score it.

use felip::{simulate, FelipConfig, SelectivityPrior, Strategy};
use felip_baselines::hio::run_hio;
use felip_baselines::tdg::{run_hdg, run_tdg};
use felip_common::metrics::try_mae;
use felip_common::{Dataset, Query, Result};
use felip_fo::FoKind;

/// Every mechanism the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyUnderTest {
    /// FELIP Optimized Uniform Grid with the adaptive oracle.
    Oug,
    /// FELIP Optimized Hybrid Grid with the adaptive oracle.
    Ohg,
    /// OUG restricted to OLH (§6.3 ablation).
    OugOlh,
    /// OHG restricted to OLH (§6.3 ablation).
    OhgOlh,
    /// HIO baseline (branching factor 4).
    Hio,
    /// TDG baseline.
    Tdg,
    /// HDG baseline.
    Hdg,
}

impl StrategyUnderTest {
    /// Figure-1–6 contenders.
    pub fn main_contenders() -> [StrategyUnderTest; 3] {
        [
            StrategyUnderTest::Oug,
            StrategyUnderTest::Ohg,
            StrategyUnderTest::Hio,
        ]
    }

    /// Figure-7 uniform-grid panel.
    pub fn fig7_uniform() -> [StrategyUnderTest; 3] {
        [
            StrategyUnderTest::Oug,
            StrategyUnderTest::OugOlh,
            StrategyUnderTest::Tdg,
        ]
    }

    /// Figure-7 hybrid-grid panel.
    pub fn fig7_hybrid() -> [StrategyUnderTest; 3] {
        [
            StrategyUnderTest::Ohg,
            StrategyUnderTest::OhgOlh,
            StrategyUnderTest::Hdg,
        ]
    }
}

impl std::fmt::Display for StrategyUnderTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyUnderTest::Oug => write!(f, "OUG"),
            StrategyUnderTest::Ohg => write!(f, "OHG"),
            StrategyUnderTest::OugOlh => write!(f, "OUG-OLH"),
            StrategyUnderTest::OhgOlh => write!(f, "OHG-OLH"),
            StrategyUnderTest::Hio => write!(f, "HIO"),
            StrategyUnderTest::Tdg => write!(f, "TDG"),
            StrategyUnderTest::Hdg => write!(f, "HDG"),
        }
    }
}

/// Runs `strategy` over `dataset` under ε-LDP, answers `queries`, and
/// returns the MAE against exact ground truth.
///
/// `selectivity_prior` feeds FELIP's grid sizing (pass the workload's true
/// selectivity to model an informed aggregator, or 0.5 for the uninformed
/// default; baselines ignore it — TDG/HDG hard-code 0.5 and HIO has no such
/// knob).
pub fn evaluate_mae(
    strategy: StrategyUnderTest,
    dataset: &Dataset,
    queries: &[Query],
    epsilon: f64,
    selectivity_prior: f64,
    seed: u64,
) -> Result<f64> {
    let mut span = felip_obs::span!("bench.evaluate");
    span.field("strategy", strategy.to_string());
    span.field("queries", queries.len());
    let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(dataset)).collect();
    let estimates: Vec<f64> = match strategy {
        StrategyUnderTest::Oug
        | StrategyUnderTest::Ohg
        | StrategyUnderTest::OugOlh
        | StrategyUnderTest::OhgOlh => {
            let base = match strategy {
                StrategyUnderTest::Oug | StrategyUnderTest::OugOlh => Strategy::Oug,
                _ => Strategy::Ohg,
            };
            let mut config = FelipConfig::new(epsilon)
                .with_strategy(base)
                .with_selectivity(SelectivityPrior::Uniform(selectivity_prior));
            if matches!(
                strategy,
                StrategyUnderTest::OugOlh | StrategyUnderTest::OhgOlh
            ) {
                config = config.with_forced_fo(FoKind::Olh);
            }
            let est = simulate(dataset, &config, seed)?;
            est.answer_all(queries)?
        }
        StrategyUnderTest::Hio => {
            let est = run_hio(dataset, epsilon, seed)?;
            est.answer_all(queries)?
        }
        StrategyUnderTest::Tdg => run_tdg(dataset, epsilon, seed)?.answer_all(queries)?,
        StrategyUnderTest::Hdg => run_hdg(dataset, epsilon, seed)?.answer_all(queries)?,
    };
    try_mae(&estimates, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use felip_datasets::{generate_queries, uniform, GenOptions, WorkloadOptions};

    fn opts() -> GenOptions {
        GenOptions {
            n: 20_000,
            numerical: 2,
            categorical: 1,
            numerical_domain: 32,
            categorical_domain: 4,
            seed: 1,
        }
    }

    #[test]
    fn all_strategies_produce_finite_mae() {
        let data = uniform(opts());
        let qs = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.5,
                count: 4,
                seed: 2,
                range_only: false,
            },
        )
        .unwrap();
        for s in [
            StrategyUnderTest::Oug,
            StrategyUnderTest::Ohg,
            StrategyUnderTest::OugOlh,
            StrategyUnderTest::OhgOlh,
            StrategyUnderTest::Hio,
        ] {
            let m = evaluate_mae(s, &data, &qs, 1.0, 0.5, 3).unwrap();
            assert!(m.is_finite() && m >= 0.0, "{s}: MAE {m}");
            assert!(m < 0.5, "{s}: MAE {m} absurdly high");
        }
    }

    #[test]
    fn grid_baselines_need_numerical_schema() {
        let data = uniform(opts()); // has a categorical attribute
        let qs = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.5,
                count: 2,
                seed: 2,
                range_only: true,
            },
        )
        .unwrap();
        assert!(evaluate_mae(StrategyUnderTest::Tdg, &data, &qs, 1.0, 0.5, 3).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(StrategyUnderTest::OugOlh.to_string(), "OUG-OLH");
        assert_eq!(StrategyUnderTest::Hdg.to_string(), "HDG");
    }
}
