//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These do not correspond to numbered figures in the paper; they isolate
//! individual mechanisms: the AFO crossover (§5.3), population partitioning
//! vs budget splitting (Theorem 5.1), post-processing (§5.4), and the
//! selectivity prior (§5.2).

use rand::Rng;

use felip::{simulate, FelipConfig, SelectivityPrior, Strategy};
use felip_common::metrics::mae;
use felip_common::rng::seeded_rng;
use felip_common::Dataset;
use felip_datasets::{generate_queries, DatasetKind, WorkloadOptions};
use felip_fo::{FrequencyOracle, Grr, Olh};

use crate::profile::Profile;
use crate::table::CsvSink;

/// AFO crossover: empirical MAE of GRR vs OLH for one frequency-estimation
/// task as the domain size L grows, at several ε. The empirical crossover
/// must track the analytic `L = 3e^ε + 2` (Eq. 13).
pub fn afo_crossover(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new(
        "afo_crossover",
        "epsilon,cells,protocol,mae,analytic_variance",
        profile.out_dir.as_deref(),
    )?;
    let n = profile.n.min(100_000);
    for &eps in &[0.5f64, 1.0, 2.0] {
        for &cells in &[2u32, 4, 8, 12, 16, 24, 32, 64, 128] {
            // Ground truth: Zipf-ish distribution over the cells.
            let h: f64 = (1..=cells).map(|i| 1.0 / i as f64).sum();
            let truth: Vec<f64> = (1..=cells).map(|i| 1.0 / (i as f64 * h)).collect();
            let mut rng = seeded_rng(profile.seed ^ (cells as u64) << 8 ^ eps.to_bits());
            let values: Vec<u32> = (0..n)
                .map(|_| {
                    let mut u = rng.gen::<f64>();
                    for (v, &t) in truth.iter().enumerate() {
                        u -= t;
                        if u <= 0.0 {
                            return v as u32;
                        }
                    }
                    cells - 1
                })
                .collect();
            let grr = Grr::new(eps, cells);
            let olh = Olh::new(eps, cells);
            for (name, oracle) in [
                ("GRR", &grr as &dyn FrequencyOracle),
                ("OLH", &olh as &dyn FrequencyOracle),
            ] {
                let reports: Vec<_> = values
                    .iter()
                    .map(|&v| oracle.perturb(v, &mut rng))
                    .collect();
                let est = oracle.aggregate(&reports).unwrap();
                let m = mae(&est, &truth);
                sink.write_row(&format!(
                    "{eps},{cells},{name},{m:.6},{:.3e}",
                    oracle.variance(n)
                ))?;
            }
        }
    }
    Ok(())
}

/// Theorem 5.1 empirically: estimating one attribute's distribution when
/// the work is split over `m` tasks — divide the *users* (each reports once
/// with full ε) vs divide the *budget* (each user reports m times with
/// ε/m). User division must win for both protocols.
pub fn ablation_partitioning(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new(
        "ablation_partitioning",
        "protocol,m,scheme,mae",
        profile.out_dir.as_deref(),
    )?;
    let n = profile.n.min(100_000);
    let cells = 16u32;
    let eps = 1.0;
    let truth: Vec<f64> = {
        let z: f64 = (1..=cells).map(|i| 1.0 / i as f64).sum();
        (1..=cells).map(|i| 1.0 / (i as f64 * z)).collect()
    };
    let mut rng = seeded_rng(profile.seed ^ 0xA11);
    let sample = |rng: &mut rand::rngs::StdRng| -> u32 {
        let mut u = rng.gen::<f64>();
        for (v, &t) in truth.iter().enumerate() {
            u -= t;
            if u <= 0.0 {
                return v as u32;
            }
        }
        cells - 1
    };
    for &m in &[2usize, 5, 10] {
        for proto in ["GRR", "OLH"] {
            let make = |e: f64| -> Box<dyn FrequencyOracle> {
                if proto == "GRR" {
                    Box::new(Grr::new(e, cells))
                } else {
                    Box::new(Olh::new(e, cells))
                }
            };
            // Scheme A: divide users — the first n/m users report with full ε.
            let full = make(eps);
            let reports: Vec<_> = (0..n / m)
                .map(|_| full.perturb(sample(&mut rng), &mut rng))
                .collect();
            let est = full.aggregate(&reports).unwrap();
            sink.write_row(&format!(
                "{proto},{m},divide-users,{:.6}",
                mae(&est, &truth)
            ))?;
            // Scheme B: split budget — all n users report with ε/m (one of
            // the m reports; by symmetry all m estimates are identically
            // distributed, so one representative grid suffices).
            let split = make(eps / m as f64);
            let reports: Vec<_> = (0..n)
                .map(|_| split.perturb(sample(&mut rng), &mut rng))
                .collect();
            let est = split.aggregate(&reports).unwrap();
            sink.write_row(&format!(
                "{proto},{m},split-budget,{:.6}",
                mae(&est, &truth)
            ))?;
        }
    }
    Ok(())
}

/// Post-processing ablation: OHG with 0 / 1 / 2 consistency rounds (0 still
/// applies the final norm-sub, per §5.4's closing step).
pub fn ablation_postprocess(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new(
        "ablation_postprocess",
        "dataset,rounds,mae",
        profile.out_dir.as_deref(),
    )?;
    for kind in [DatasetKind::Normal, DatasetKind::IpumsLike] {
        let data = kind.generate(profile.gen_options(0xA2));
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: 0.5,
                count: profile.queries,
                seed: profile.seed ^ 0xA2,
                range_only: false,
            },
        )
        .expect("valid workload");
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
        for rounds in [0usize, 1, 2, 4] {
            let config = FelipConfig::new(1.0)
                .with_strategy(Strategy::Ohg)
                .with_postprocess_rounds(rounds);
            let est = simulate(&data, &config, profile.seed).expect("simulation succeeds");
            let answers = est.answer_all(&queries).expect("answering succeeds");
            sink.write_row(&format!("{kind},{rounds},{:.6}", mae(&answers, &truth)))?;
        }
    }
    Ok(())
}

/// Selectivity-prior ablation: the workload has true selectivity 0.2; FELIP
/// sizes its grids with priors 0.2 (informed), 0.5 (uninformed default) and
/// 0.8 (misinformed). The informed prior should win (§5.2's knob).
pub fn ablation_selectivity(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new(
        "ablation_selectivity",
        "dataset,prior,true_selectivity,mae",
        profile.out_dir.as_deref(),
    )?;
    let true_s = 0.2;
    for kind in [DatasetKind::Normal, DatasetKind::IpumsLike] {
        let data: Dataset = kind.generate(profile.gen_options(0xA3));
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 2,
                selectivity: true_s,
                count: profile.queries,
                seed: profile.seed ^ 0xA3,
                range_only: false,
            },
        )
        .expect("valid workload");
        let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
        for prior in [0.2, 0.5, 0.8] {
            let config = FelipConfig::new(1.0)
                .with_strategy(Strategy::Ohg)
                .with_selectivity(SelectivityPrior::Uniform(prior));
            let est = simulate(&data, &config, profile.seed).expect("simulation succeeds");
            let answers = est.answer_all(&queries).expect("answering succeeds");
            sink.write_row(&format!(
                "{kind},{prior},{true_s},{:.6}",
                mae(&answers, &truth)
            ))?;
        }
    }
    Ok(())
}

/// λ-D fit ablation: faithful pairs-only Algorithm 4 vs the
/// marginal-augmented extension, across query dimensions.
pub fn ablation_marginals(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new(
        "ablation_marginals",
        "dataset,lambda,variant,mae",
        profile.out_dir.as_deref(),
    )?;
    for kind in [DatasetKind::Normal, DatasetKind::IpumsLike] {
        let opts = felip_datasets::GenOptions {
            numerical: 5,
            categorical: 5,
            ..profile.gen_options(0xA4)
        };
        let data = kind.generate(opts);
        for lambda in [3usize, 4, 6, 8] {
            let queries = generate_queries(
                data.schema(),
                WorkloadOptions {
                    lambda,
                    selectivity: 0.5,
                    count: profile.queries,
                    seed: profile.seed ^ 0xA4,
                    range_only: false,
                },
            )
            .expect("10-attribute schema supports lambda up to 8");
            let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
            for (variant, marginals) in [("pairs-only", false), ("with-marginals", true)] {
                let config = FelipConfig::new(1.0)
                    .with_strategy(Strategy::Ohg)
                    .with_lambda_marginals(marginals);
                let est = simulate(&data, &config, profile.seed).expect("simulation succeeds");
                let answers = est.answer_all(&queries).expect("answering succeeds");
                sink.write_row(&format!(
                    "{kind},{lambda},{variant},{:.6}",
                    mae(&answers, &truth)
                ))?;
            }
        }
    }
    Ok(())
}

/// Two-phase data-aware binning ablation (DESIGN.md §8): one-phase FELIP vs
/// spending ρ of the population learning coarse marginals and binning by
/// equal mass, on skewed data with narrow queries.
pub fn ablation_twophase(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new(
        "ablation_twophase",
        "dataset,selectivity,variant,mae",
        profile.out_dir.as_deref(),
    )?;
    for kind in [DatasetKind::Normal, DatasetKind::LoanLike] {
        let data = kind.generate(profile.gen_options(0xA5));
        for s in [0.1, 0.3, 0.5] {
            let queries = generate_queries(
                data.schema(),
                WorkloadOptions {
                    lambda: 2,
                    selectivity: s,
                    count: profile.queries,
                    seed: profile.seed ^ 0xA5,
                    range_only: false,
                },
            )
            .expect("valid workload");
            let truth: Vec<f64> = queries.iter().map(|q| q.true_answer(&data)).collect();
            let config = FelipConfig::new(1.0)
                .with_strategy(Strategy::Ohg)
                .with_selectivity(felip::SelectivityPrior::Uniform(s));
            let one = simulate(&data, &config, profile.seed).expect("one-phase run");
            sink.write_row(&format!(
                "{kind},{s},one-phase,{:.6}",
                mae(&one.answer_all(&queries).expect("answers"), &truth)
            ))?;
            for rho in [0.05, 0.1, 0.2] {
                let two = felip::simulate_two_phase(&data, &config, rho, profile.seed)
                    .expect("two-phase run");
                sink.write_row(&format!(
                    "{kind},{s},two-phase-{rho},{:.6}",
                    mae(&two.answer_all(&queries).expect("answers"), &truth)
                ))?;
            }
        }
    }
    Ok(())
}

/// 1-D marginal estimation shoot-out: the OLH grid OHG uses vs the Square
/// Wave + EM mechanism of Li et al. (the paper's reference \[25\]) on a
/// skewed ordinal attribute, across ε.
pub fn sw_vs_olh(profile: &Profile) -> std::io::Result<()> {
    use felip_fo::sw::SquareWave;
    let mut sink = CsvSink::new(
        "sw_vs_olh",
        "epsilon,mechanism,mae",
        profile.out_dir.as_deref(),
    )?;
    let d = 64u32;
    let n = profile.n.min(100_000);
    // Truth: normal-ish hump centred at d/3.
    let truth: Vec<f64> = {
        let mut t: Vec<f64> = (0..d)
            .map(|v| {
                let z = (v as f64 - d as f64 / 3.0) / (d as f64 / 8.0);
                (-0.5 * z * z).exp()
            })
            .collect();
        let s: f64 = t.iter().sum();
        t.iter_mut().for_each(|x| *x /= s);
        t
    };
    let mut rng = seeded_rng(profile.seed ^ 0xA6);
    let sample = |rng: &mut rand::rngs::StdRng| -> u32 {
        let mut u = rng.gen::<f64>();
        for (v, &t) in truth.iter().enumerate() {
            u -= t;
            if u <= 0.0 {
                return v as u32;
            }
        }
        d - 1
    };
    for &eps in &[0.5f64, 1.0, 2.0] {
        let values: Vec<u32> = (0..n).map(|_| sample(&mut rng)).collect();
        // OLH over the raw 64-value domain + norm-sub.
        let olh = Olh::new(eps, d);
        let reports: Vec<_> = values.iter().map(|&v| olh.perturb(v, &mut rng)).collect();
        let mut est = olh.aggregate(&reports).unwrap();
        felip_grid::postprocess::norm_sub(&mut est, 1.0);
        sink.write_row(&format!("{eps},OLH,{:.6}", mae(&est, &truth)))?;
        // Square Wave + EM.
        let sw = SquareWave::new(eps, d);
        let reports: Vec<f64> = values.iter().map(|&v| sw.perturb(v, &mut rng)).collect();
        let est = sw.estimate(&reports, 256, 60);
        sink.write_row(&format!("{eps},SquareWave,{:.6}", mae(&est, &truth)))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> Profile {
        Profile {
            n: 3_000,
            numerical_domain: 16,
            categorical_domain: 4,
            numerical: 2,
            categorical: 2,
            queries: 2,
            repeats: 1,
            seed: 2,
            out_dir: None,
        }
    }

    #[test]
    fn partitioning_smoke() {
        ablation_partitioning(&micro()).unwrap();
    }

    #[test]
    fn selectivity_smoke() {
        ablation_selectivity(&micro()).unwrap();
    }
}
