//! `perf_smoke --chaos`: the CLI front end of the deterministic
//! fault-injection harness (`felip_server::simharness`).
//!
//! Runs the standard chaos mix over a seed range (or one `--seed N`, which
//! is how a failing CI seed is reproduced locally) and writes a JSON
//! summary. Any invariant violation prints the seed and fails the process,
//! so CI surfaces the exact reproduction command.

use felip_server::simharness::{run_sim, SimConfig, SimReport};
use serde_json::{json, Value};

/// Options for the chaos sweep (`--chaos` flag family).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Seeds `0..seeds` to sweep (ignored when `seed` is set).
    pub seeds: u64,
    /// Run exactly one seed — the reproduction path for a CI failure.
    pub seed: Option<u64>,
    /// Output JSON path.
    pub out: String,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seeds: 64,
            seed: None,
            out: "BENCH_chaos.json".to_string(),
        }
    }
}

fn report_json(r: &SimReport) -> Value {
    json!({
        "seed": r.seed,
        "ok": r.ok(),
        "events": r.events,
        "trace_hash": format!("{:#018x}", r.trace_hash),
        "counts_digest": format!("{:#018x}", r.counts_digest),
        "reports_ingested": r.reports_ingested,
        "server_acked_batches": r.server_acked_batches,
        "duplicates": r.duplicates,
        "faults_injected": r.faults_injected,
        "snapshots_quarantined": r.snapshots_quarantined,
        "kills": r.kills,
        "gave_up": r.gave_up,
        "queries_answered": r.queries_answered,
        "query_warm_hits": r.query_warm_hits,
        "flight_total": r.flight_total,
        "flight_digest": format!("{:#018x}", r.flight_digest),
        "violations": r.violations,
    })
}

/// Runs the sweep, prints one line per seed, writes the JSON summary, and
/// returns an error naming every failing seed (CI turns that into a red
/// build with the reproduction command in the log).
pub fn chaos_smoke(opts: &ChaosOptions) -> std::io::Result<()> {
    let seeds: Vec<u64> = match opts.seed {
        Some(s) => vec![s],
        None => (0..opts.seeds).collect(),
    };
    println!(
        "perf_smoke --chaos: {} seed(s), every fault kind armed, kill+resume per seed",
        seeds.len()
    );
    let mut reports = Vec::with_capacity(seeds.len());
    let mut failing: Vec<u64> = Vec::new();
    for &seed in &seeds {
        let r = run_sim(&SimConfig::chaos(seed));
        println!(
            "seed {:>4}  events {:>5}  acked {:>3}  faults {:>3}  dup {:>2}  quarantined {}  {}",
            r.seed,
            r.events,
            r.server_acked_batches,
            r.faults_injected,
            r.duplicates,
            r.snapshots_quarantined,
            if r.ok() { "ok" } else { "FAIL" }
        );
        for v in &r.violations {
            felip_obs::diag::error(&format!("seed {seed}: {v}"));
        }
        if !r.ok() {
            failing.push(seed);
        }
        reports.push(r);
    }
    let doc = json!({
        "bench": "chaos_sim",
        "seeds": seeds,
        "failing": failing,
        "runs": reports.iter().map(report_json).collect::<Vec<_>>(),
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )?;
    println!("wrote {}", opts.out);
    if !failing.is_empty() {
        return Err(std::io::Error::other(format!(
            "chaos invariant violated for seed(s) {failing:?}; reproduce with \
             `perf_smoke --chaos --seed N`"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_run_writes_summary() {
        let out =
            std::env::temp_dir().join(format!("felip-chaos-test-{}.json", std::process::id()));
        let opts = ChaosOptions {
            seed: Some(5),
            out: out.to_str().unwrap().to_string(),
            ..ChaosOptions::default()
        };
        chaos_smoke(&opts).unwrap();
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(doc["failing"].as_array().unwrap().len(), 0);
        assert_eq!(doc["runs"].as_array().unwrap().len(), 1);
        assert_eq!(doc["runs"][0]["seed"], 5);
        let _ = std::fs::remove_file(&out);
    }
}
