//! `perf_smoke --query-loadgen`: mixed ingest + query load against the
//! streaming server (DESIGN.md §17).
//!
//! Boots an in-process [`felip_server::Server`], streams the deterministic
//! loadgen report stream over one pipelined ingest connection, and — while
//! ingest is running — hammers the v5 `Query` verb from N concurrent query
//! connections. Measured:
//!
//! * **query latency** — p50/p99 wall-clock per answered query
//!   (nearest-rank over every query issued during ingest);
//! * **answer staleness** — `head_epoch - epoch` per reply: how many
//!   epochs the served answer trails the ingest head at answer time;
//! * **cache behaviour** — engine-level hit/miss/invalidation counters
//!   over the run;
//! * **ingest throughput** — reports/s sustained *while* queries ran,
//!   i.e. the interference-inclusive number.
//!
//! The run is self-verifying: after ingest drains, one `Fresh`-mode query
//! must be bit-identical to the offline batch estimate over the full
//! stream, so the numbers only ever describe a correct run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use felip_common::rng::derive_seed;
use felip_common::Predicate;
use felip_server::loadgen::{offline_reference, user_report};
use felip_server::wire::encode_batch;
use felip_server::{
    Client, Frame, FrameKind, PipelinedClient, QueryMode, RetryPolicy, Server, ServerConfig,
};
use serde_json::{json, Value};

/// Options for the mixed ingest + query load generation run.
#[derive(Debug, Clone)]
pub struct QueryLoadOptions {
    /// Total users (= reports) streamed by the ingest connection.
    pub users: usize,
    /// Reports per `ReportBatch` frame.
    pub batch: usize,
    /// Concurrent query connections asking while ingest runs.
    pub clients: usize,
    /// Pipeline window for the ingest connection.
    pub window: usize,
    /// Loadgen seed (drives records and perturbation).
    pub seed: u64,
    /// Output JSON path.
    pub out: String,
}

impl Default for QueryLoadOptions {
    fn default() -> Self {
        QueryLoadOptions {
            users: 100_000,
            batch: 500,
            clients: 2,
            window: 16,
            seed: 0xBEEF,
            out: "BENCH_query.json".to_string(),
        }
    }
}

/// One mixed run's measured results.
#[derive(Debug, Clone)]
pub struct QueryLoadResult {
    /// Reports ingested during the timed run.
    pub reports: usize,
    /// Queries answered while ingest was running.
    pub queries: u64,
    /// Median query round trip, milliseconds.
    pub query_p50_ms: f64,
    /// 99th-percentile query round trip, milliseconds.
    pub query_p99_ms: f64,
    /// Worst answer staleness observed (epochs behind the ingest head).
    pub max_staleness_epochs: u64,
    /// Mean answer staleness over every query.
    pub mean_staleness_epochs: f64,
    /// Engine cache hits (warm epoch served without a cut).
    pub cache_hits: u64,
    /// Per-grid de-bias recomputations (cold or invalidated grids).
    pub cache_misses: u64,
    /// Cached grids invalidated by changed counts.
    pub cache_invalidations: u64,
    /// Ingest throughput sustained while queries ran.
    pub ingest_reports_per_sec: f64,
    /// Wall-clock seconds for the ingest stream.
    pub elapsed_s: f64,
}

/// Reads one metric's counter value from the global recorder.
fn counter_value(name: &str) -> u64 {
    felip_obs::global()
        .metric(name)
        .and_then(|m| m.value.as_u64())
        .unwrap_or(0)
}

/// Nearest-rank percentile over an unsorted sample (sorts a copy).
fn percentile_ms(samples: &[u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx] as f64 / 1e6
}

/// The fixed 2-D query every connection asks — a range on the numerical
/// attribute conjoined with a category set, the paper's λ=2 shape.
fn bench_predicates() -> Vec<Predicate> {
    vec![
        Predicate::between(0, 8, 40),
        Predicate::in_set(1, vec![1, 2]),
    ]
}

/// Runs one mixed ingest + query load generation and returns the
/// measurements.
pub fn run_query_loadgen(opts: &QueryLoadOptions) -> QueryLoadResult {
    let users = opts.users.max(opts.batch.max(1));
    let plan = crate::serve::bench_plan(users, 23);
    let plan_hash = plan.schema_hash();

    let obs_was_enabled = felip_obs::global().is_enabled();
    felip_obs::global().reset();
    felip_obs::enable();

    let server = Server::bind(Arc::clone(&plan), ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    // Pre-generate AND pre-encode the ingest stream so the timed section
    // measures the server under query interference, not perturbation.
    let reports: Vec<_> = (0..users)
        .map(|u| user_report(&plan, u, opts.seed).expect("loadgen report"))
        .collect();
    let frames: Vec<Vec<u8>> = reports
        .chunks(opts.batch.max(1))
        .enumerate()
        .map(|(i, chunk)| {
            Frame {
                kind: FrameKind::ReportBatch,
                plan_hash,
                payload: encode_batch(i as u64 + 1, chunk).expect("encode batch"),
            }
            .encode()
        })
        .collect();

    let ingest_done = AtomicBool::new(false);
    let preds = bench_predicates();

    // Timed: one pipelined ingest connection pumps the full stream while
    // `clients` query connections ask in a closed loop.
    let started = Instant::now();
    // (answer-latency ns, staleness epochs) samples per query client.
    type ClientSamples = Vec<(Vec<u64>, Vec<u64>)>;
    let (elapsed, per_client): (f64, ClientSamples) = thread::scope(|s| {
        let ingest = s.spawn(|| {
            let client_id = derive_seed(opts.seed, 1);
            let policy = RetryPolicy {
                jitter_seed: client_id,
                ..RetryPolicy::default()
            };
            let mut client = PipelinedClient::connect_with(addr, plan_hash, client_id, policy)
                .expect("ingest connect");
            client.pump_encoded(&frames, opts.window).expect("pump");
            drop(client);
            let elapsed = started.elapsed().as_secs_f64();
            ingest_done.store(true, Ordering::SeqCst);
            elapsed
        });
        let askers: Vec<_> = (0..opts.clients.max(1))
            .map(|c| {
                let preds = preds.clone();
                let ingest_done = &ingest_done;
                s.spawn(move || {
                    let client_id = derive_seed(opts.seed, 100 + c as u64);
                    let mut client =
                        Client::connect_with(addr, plan_hash, client_id, RetryPolicy::default())
                            .expect("query connect");
                    let mut latencies_ns = Vec::new();
                    let mut staleness = Vec::new();
                    while !ingest_done.load(Ordering::SeqCst) {
                        let t0 = Instant::now();
                        match client.query(preds.clone(), QueryMode::Cached) {
                            Ok(ans) => {
                                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                                assert!(
                                    ans.epoch <= ans.head_epoch,
                                    "answer epoch ahead of the head"
                                );
                                staleness.push(ans.head_epoch - ans.epoch);
                            }
                            // Before the first batch lands the collection
                            // is empty — an expected Error reply.
                            Err(_) => thread::yield_now(),
                        }
                    }
                    (latencies_ns, staleness)
                })
            })
            .collect();
        (
            ingest.join().expect("ingest thread"),
            askers
                .into_iter()
                .map(|h| h.join().expect("query thread"))
                .collect(),
        )
    });

    // Self-verification: a Fresh query over the drained stream must be
    // bit-identical to the offline batch estimate on the same reports.
    let offline = offline_reference(&plan, 0..users, opts.seed).expect("offline reference");
    let query = felip_common::Query::new(plan.schema(), preds.clone()).expect("bench query");
    let expected = offline
        .estimate()
        .expect("offline estimate")
        .answer(&query)
        .expect("offline answer");
    let mut verifier = Client::connect_with(
        addr,
        plan_hash,
        derive_seed(opts.seed, 999),
        RetryPolicy::default(),
    )
    .expect("verify connect");
    let final_ans = verifier
        .query(preds, QueryMode::Fresh)
        .expect("final query");
    assert_eq!(
        final_ans.reports, users as u64,
        "query loadgen lost reports"
    );
    assert_eq!(
        final_ans.answer.to_bits(),
        expected.to_bits(),
        "online answer drifted from the offline batch estimate"
    );
    drop(verifier);

    let cache_hits = counter_value("query.cache.hit");
    let cache_misses = counter_value("query.cache.miss");
    let cache_invalidations = counter_value("query.cache.invalidations");

    shutdown.store(true, Ordering::SeqCst);
    server_thread.join().expect("server join");
    if !obs_was_enabled {
        felip_obs::disable();
    }

    let latencies: Vec<u64> = per_client
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let staleness: Vec<u64> = per_client
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .collect();
    QueryLoadResult {
        reports: users,
        queries: latencies.len() as u64,
        query_p50_ms: percentile_ms(&latencies, 50.0),
        query_p99_ms: percentile_ms(&latencies, 99.0),
        max_staleness_epochs: staleness.iter().copied().max().unwrap_or(0),
        mean_staleness_epochs: if staleness.is_empty() {
            0.0
        } else {
            staleness.iter().sum::<u64>() as f64 / staleness.len() as f64
        },
        cache_hits,
        cache_misses,
        cache_invalidations,
        ingest_reports_per_sec: users as f64 / elapsed,
        elapsed_s: elapsed,
    }
}

/// Renders the run as the `BENCH_query.json` document.
pub fn to_json(r: &QueryLoadResult, opts: &QueryLoadOptions) -> Value {
    json!({
        "bench": "query_loadgen",
        "transport": "tcp loopback",
        "reports": r.reports,
        "batch": opts.batch,
        "window": opts.window,
        "query_clients": opts.clients,
        "queries": r.queries,
        "query_p50_ms": r.query_p50_ms,
        "query_p99_ms": r.query_p99_ms,
        "max_staleness_epochs": r.max_staleness_epochs,
        "mean_staleness_epochs": r.mean_staleness_epochs,
        "cache_hits": r.cache_hits,
        "cache_misses": r.cache_misses,
        "cache_invalidations": r.cache_invalidations,
        "ingest_reports_per_sec": r.ingest_reports_per_sec,
        "elapsed_s": r.elapsed_s,
    })
}

/// Runs the query loadgen, prints the summary line, and writes the JSON
/// document.
pub fn query_smoke(opts: &QueryLoadOptions) -> std::io::Result<()> {
    println!(
        "query_loadgen: {} users × batch {} (window {}), {} query connections",
        opts.users, opts.batch, opts.window, opts.clients
    );
    let r = run_query_loadgen(opts);
    println!(
        "ingested {:>8} reports in {:>6.2}s  {:>10.0} rep/s  {:>6} queries  \
         p50 {:>7.2}ms  p99 {:>7.2}ms  staleness max {} mean {:.2}  \
         cache {}h/{}m/{}inv",
        r.reports,
        r.elapsed_s,
        r.ingest_reports_per_sec,
        r.queries,
        r.query_p50_ms,
        r.query_p99_ms,
        r.max_staleness_epochs,
        r.mean_staleness_epochs,
        r.cache_hits,
        r.cache_misses,
        r.cache_invalidations,
    );
    let doc = to_json(&r, opts);
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )?;
    println!("wrote {}", opts.out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mixed_run_is_bit_identical_and_shaped() {
        let opts = QueryLoadOptions {
            users: 3_000,
            batch: 100,
            clients: 2,
            ..QueryLoadOptions::default()
        };
        let r = run_query_loadgen(&opts);
        assert_eq!(r.reports, 3_000);
        assert!(r.ingest_reports_per_sec > 0.0);
        assert!(r.query_p99_ms >= r.query_p50_ms);
        // The final Fresh verification always runs the engine at least
        // once, so the miss counter covers every grid of the plan.
        assert!(r.cache_misses > 0);

        let doc = to_json(&r, &opts);
        for key in [
            "bench",
            "queries",
            "query_p50_ms",
            "query_p99_ms",
            "max_staleness_epochs",
            "ingest_reports_per_sec",
        ] {
            assert!(doc.get(key).is_some(), "missing headline key {key}");
        }
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("query_loadgen")
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let ms: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert!((percentile_ms(&ms, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile_ms(&ms, 99.0) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_ms(&[], 99.0), 0.0);
    }
}
