//! `perf_smoke`: throughput measurement for the batched OLH ingestion path.
//!
//! Measures ingest + aggregate throughput (reports folded into support
//! counts and de-biased, in reports/second) at `d ∈ {64, 1024, 16384}`,
//! the domain sizes where OLH's `O(|reports| × d)` support counting goes
//! from trivially cache-resident to several L1 blocks wide. With
//! `--baseline-scalar` the same run also times the per-report scalar path
//! ([`FrequencyOracle::accumulate`] in a loop) and reports the speedup of
//! the cache-blocked batch kernel over it.
//!
//! Results are printed as a small table and written as JSON (default
//! `BENCH_ingest.json` in the working directory — the repo root when run
//! via `cargo run`).

use std::hint::black_box;
use std::time::Instant;

use felip_common::rng::seeded_rng;
use felip_fo::{FrequencyOracle, Olh, Report};
use serde_json::{json, Value};

/// Domain sizes swept by the smoke bench.
pub const DOMAINS: [u32; 3] = [64, 1024, 16_384];

/// Privacy budget used for the bench oracles (g = 4, the paper's default ε).
pub const EPSILON: f64 = 1.0;

/// Options parsed from the `perf_smoke` command line.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Also time the per-report scalar path and report the speedup.
    pub baseline_scalar: bool,
    /// Measure recorder overhead (enabled vs disabled) at `d = 16384` and
    /// write it as `BENCH_obs.json`.
    pub obs_overhead: bool,
    /// Enable the recorder for the sweep and print the stage-timing table.
    pub metrics: bool,
    /// Output JSON path.
    pub out: String,
    /// Output JSON path for the recorder-overhead measurement.
    pub obs_out: String,
    /// Hash evaluations per measurement (`n = work / d` reports per point).
    pub work: u64,
    /// Timed repetitions per measurement (best of).
    pub repeats: usize,
    /// Run the serve load generator instead of the kernel sweep
    /// (`--serve-loadgen`; see [`crate::serve`]).
    pub serve: Option<crate::serve::ServeLoadOptions>,
    /// Run the deterministic chaos sweep instead of the kernel sweep
    /// (`--chaos`; see [`crate::chaos`]). `--seed N` reproduces one seed.
    pub chaos: Option<crate::chaos::ChaosOptions>,
    /// Run the two-tier cluster load generator instead of the kernel
    /// sweep (`--cluster-loadgen`; see [`crate::cluster`]).
    pub cluster: Option<crate::cluster::ClusterLoadOptions>,
    /// Run the mixed ingest + query load generator instead of the kernel
    /// sweep (`--query-loadgen`; see [`crate::query`]).
    pub query: Option<crate::query::QueryLoadOptions>,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            baseline_scalar: false,
            obs_overhead: false,
            metrics: false,
            out: "BENCH_ingest.json".to_string(),
            obs_out: "BENCH_obs.json".to_string(),
            // 2^24 hash evaluations ≈ tens of ms per scalar pass: large
            // enough for stable timing, small enough for a smoke bench.
            work: 1 << 24,
            repeats: 3,
            serve: None,
            chaos: None,
            cluster: None,
            query: None,
        }
    }
}

impl PerfOptions {
    /// Parses `perf_smoke` flags (`--baseline-scalar`, `--obs-overhead`,
    /// `--metrics`, `--out PATH`, `--obs-out PATH`, `--work N`,
    /// `--repeats N`, the `--serve-*` load-generator family, and the
    /// `--chaos` fault-injection family).
    ///
    /// # Panics
    /// Panics on unknown flags or malformed values, printing usage.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("{flag} requires a value"));
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} got a malformed value: {v}"))
        }

        /// A comma-separated sweep list (`8` or `4,8,16`).
        fn parse_list(args: &mut impl Iterator<Item = String>, flag: &str) -> Vec<usize> {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("{flag} requires a value"));
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("{flag} got a malformed value: {v}"))
                })
                .collect()
        }

        let mut opts = PerfOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--baseline-scalar" => opts.baseline_scalar = true,
                "--obs-overhead" => opts.obs_overhead = true,
                "--metrics" => opts.metrics = true,
                "--out" => {
                    opts.out = args.next().expect("--out requires a path");
                }
                "--obs-out" => {
                    opts.obs_out = args.next().expect("--obs-out requires a path");
                }
                "--work" => opts.work = parse(&mut args, "--work"),
                "--repeats" => opts.repeats = parse(&mut args, "--repeats"),
                "--serve-loadgen" => {
                    opts.serve.get_or_insert_with(Default::default);
                }
                "--serve-connections" => {
                    opts.serve.get_or_insert_with(Default::default).connections =
                        parse_list(&mut args, "--serve-connections");
                }
                "--serve-users" | "--serve-reports" => {
                    opts.serve.get_or_insert_with(Default::default).users =
                        parse_list(&mut args, "--serve-users");
                }
                "--serve-batch" => {
                    opts.serve.get_or_insert_with(Default::default).batch =
                        parse(&mut args, "--serve-batch");
                }
                "--serve-workers" => {
                    opts.serve.get_or_insert_with(Default::default).workers =
                        parse_list(&mut args, "--serve-workers");
                }
                "--serve-window" => {
                    opts.serve.get_or_insert_with(Default::default).window =
                        parse(&mut args, "--serve-window");
                }
                "--serve-queue" => {
                    opts.serve
                        .get_or_insert_with(Default::default)
                        .queue_capacity = parse(&mut args, "--serve-queue");
                }
                "--serve-seed" => {
                    opts.serve.get_or_insert_with(Default::default).seed =
                        parse(&mut args, "--serve-seed");
                }
                "--serve-out" => {
                    opts.serve.get_or_insert_with(Default::default).out =
                        args.next().expect("--serve-out requires a path");
                }
                "--chaos" => {
                    opts.chaos.get_or_insert_with(Default::default);
                }
                "--chaos-seeds" => {
                    opts.chaos.get_or_insert_with(Default::default).seeds =
                        parse(&mut args, "--chaos-seeds");
                }
                "--seed" => {
                    opts.chaos.get_or_insert_with(Default::default).seed =
                        Some(parse(&mut args, "--seed"));
                }
                "--chaos-out" => {
                    opts.chaos.get_or_insert_with(Default::default).out =
                        args.next().expect("--chaos-out requires a path");
                }
                "--cluster-loadgen" => {
                    opts.cluster.get_or_insert_with(Default::default);
                }
                "--cluster-nodes" => {
                    opts.cluster.get_or_insert_with(Default::default).nodes =
                        parse(&mut args, "--cluster-nodes");
                }
                "--cluster-users" | "--cluster-reports" => {
                    opts.cluster.get_or_insert_with(Default::default).users =
                        parse(&mut args, "--cluster-users");
                }
                "--cluster-batch" => {
                    opts.cluster.get_or_insert_with(Default::default).batch =
                        parse(&mut args, "--cluster-batch");
                }
                "--cluster-delta-ms" => {
                    opts.cluster
                        .get_or_insert_with(Default::default)
                        .delta_every =
                        std::time::Duration::from_millis(parse(&mut args, "--cluster-delta-ms"));
                }
                "--cluster-seed" => {
                    opts.cluster.get_or_insert_with(Default::default).seed =
                        parse(&mut args, "--cluster-seed");
                }
                "--cluster-out" => {
                    opts.cluster.get_or_insert_with(Default::default).out =
                        args.next().expect("--cluster-out requires a path");
                }
                "--query-loadgen" => {
                    opts.query.get_or_insert_with(Default::default);
                }
                "--query-users" | "--query-reports" => {
                    opts.query.get_or_insert_with(Default::default).users =
                        parse(&mut args, "--query-users");
                }
                "--query-batch" => {
                    opts.query.get_or_insert_with(Default::default).batch =
                        parse(&mut args, "--query-batch");
                }
                "--query-clients" => {
                    opts.query.get_or_insert_with(Default::default).clients =
                        parse(&mut args, "--query-clients");
                }
                "--query-window" => {
                    opts.query.get_or_insert_with(Default::default).window =
                        parse(&mut args, "--query-window");
                }
                "--query-seed" => {
                    opts.query.get_or_insert_with(Default::default).seed =
                        parse(&mut args, "--query-seed");
                }
                "--query-out" => {
                    opts.query.get_or_insert_with(Default::default).out =
                        args.next().expect("--query-out requires a path");
                }
                other => panic!(
                    "unknown flag {other}; usage: perf_smoke [--baseline-scalar] \
                     [--obs-overhead] [--metrics] [--out PATH] [--obs-out PATH] \
                     [--work N] [--repeats N] [--serve-loadgen] \
                     [--serve-connections N[,N..]] [--serve-users N[,N..]] \
                     [--serve-reports N[,N..]] [--serve-batch N] \
                     [--serve-workers N[,N..]] [--serve-window N] \
                     [--serve-queue N] [--serve-seed N] [--serve-out PATH] \
                     [--chaos] [--chaos-seeds N] [--seed N] [--chaos-out PATH] \
                     [--cluster-loadgen] [--cluster-nodes N] [--cluster-users N] \
                     [--cluster-batch N] [--cluster-delta-ms N] \
                     [--cluster-seed N] [--cluster-out PATH] \
                     [--query-loadgen] [--query-users N] [--query-batch N] \
                     [--query-clients N] [--query-window N] \
                     [--query-seed N] [--query-out PATH]"
                ),
            }
        }
        opts
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Domain size.
    pub d: u32,
    /// Reports per measurement.
    pub n: usize,
    /// Batched path: reports ingested + aggregated per second.
    pub batched_reports_per_sec: f64,
    /// Scalar path throughput (only with `--baseline-scalar`).
    pub scalar_reports_per_sec: Option<f64>,
}

impl PerfPoint {
    /// Batched-over-scalar speedup, when the baseline was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.scalar_reports_per_sec
            .map(|s| self.batched_reports_per_sec / s)
    }
}

/// Best-of-`repeats` wall-clock seconds for `f`.
fn best_seconds(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measures one domain size: perturbs `n = work / d` reports once, then
/// times ingest (support counting) + aggregate (de-biasing) through the
/// batched kernel and, optionally, the per-report scalar path.
pub fn measure_point(d: u32, opts: &PerfOptions) -> PerfPoint {
    let mut point_span = felip_obs::span!("bench.point");
    point_span.field("d", d);
    let olh = Olh::new(EPSILON, d);
    let n = ((opts.work / d as u64).max(64)) as usize;
    point_span.field("reports", n);
    let mut rng = seeded_rng(0xBE2C ^ d as u64);
    let reports: Vec<Report> = {
        let _s = felip_obs::span!("bench.perturb");
        (0..n)
            .map(|i| olh.perturb(i as u32 % d, &mut rng))
            .collect()
    };

    let batched = {
        let _s = felip_obs::span!("bench.batched");
        best_seconds(opts.repeats, || {
            let mut counts = vec![0u64; d as usize];
            olh.accumulate_batch(black_box(&reports), &mut counts)
                .unwrap();
            black_box(olh.estimate_from_counts(&counts, n));
        })
    };

    let scalar = opts.baseline_scalar.then(|| {
        let _s = felip_obs::span!("bench.scalar");
        best_seconds(opts.repeats, || {
            let mut counts = vec![0u64; d as usize];
            for r in black_box(&reports) {
                olh.accumulate(r, &mut counts).unwrap();
            }
            black_box(olh.estimate_from_counts(&counts, n));
        })
    });

    PerfPoint {
        d,
        n,
        batched_reports_per_sec: n as f64 / batched,
        scalar_reports_per_sec: scalar.map(|s| n as f64 / s),
    }
}

/// Recorder-overhead measurement on the `d = 16384` batched ingest path:
/// the same workload timed with the global recorder disabled and enabled.
#[derive(Debug, Clone)]
pub struct ObsOverhead {
    /// Domain size measured (the widest smoke-bench point).
    pub d: u32,
    /// Reports per measurement.
    pub n: usize,
    /// Throughput with the recorder disabled (the default state).
    pub disabled_reports_per_sec: f64,
    /// Throughput with the recorder enabled and counting.
    pub enabled_reports_per_sec: f64,
}

impl ObsOverhead {
    /// Relative slowdown of the enabled recorder, in percent (negative
    /// values are measurement noise: enabled ran faster).
    pub fn overhead_pct(&self) -> f64 {
        (self.disabled_reports_per_sec / self.enabled_reports_per_sec - 1.0) * 100.0
    }
}

/// Times ingest + aggregate at `d = 16384` twice — recorder disabled, then
/// enabled — and restores the recorder to its prior state afterwards.
///
/// The instrumentation inside the timed region is the per-batch dispatch
/// and report counters in [`Olh::accumulate_batch`], i.e. exactly what a
/// production ingest pays per batch, plus one flight-ring event per batch
/// in the enabled run — the serve hot path records one ring event per
/// frame, so the <5% CI gate covers the seqlock writer too.
pub fn measure_obs_overhead(opts: &PerfOptions) -> ObsOverhead {
    let d = *DOMAINS.last().expect("sweep is non-empty");
    let olh = Olh::new(EPSILON, d);
    let n = ((opts.work / d as u64).max(64)) as usize;
    let mut rng = seeded_rng(0xBE2C ^ d as u64);
    let reports: Vec<Report> = (0..n)
        .map(|i| olh.perturb(i as u32 % d, &mut rng))
        .collect();

    let was_enabled = felip_obs::global().is_enabled();
    let timed = |on: bool| {
        felip_obs::global().set_enabled(on);
        best_seconds(opts.repeats, || {
            let mut counts = vec![0u64; d as usize];
            olh.accumulate_batch(black_box(&reports), &mut counts)
                .unwrap();
            if on {
                felip_obs::flight::flight().record(
                    felip_obs::flight::KIND_FRAME,
                    1,
                    0,
                    reports.len() as u64,
                );
            }
            black_box(olh.estimate_from_counts(&counts, n));
        })
    };
    let disabled = timed(false);
    let enabled = timed(true);
    felip_obs::global().set_enabled(was_enabled);

    ObsOverhead {
        d,
        n,
        disabled_reports_per_sec: n as f64 / disabled,
        enabled_reports_per_sec: n as f64 / enabled,
    }
}

/// Renders the overhead measurement as the `BENCH_obs.json` document.
pub fn obs_overhead_to_json(o: &ObsOverhead, opts: &PerfOptions) -> Value {
    json!({
        "bench": "obs_overhead",
        "oracle": "olh",
        "path": "accumulate_batch + estimate_from_counts",
        "epsilon": EPSILON,
        "compiled_out": felip_obs::COMPILED_OUT,
        "work_per_point": opts.work,
        "repeats": opts.repeats,
        "d": o.d,
        "n": o.n,
        "flight_ring_enabled": true,
        "disabled_reports_per_sec": o.disabled_reports_per_sec,
        "enabled_reports_per_sec": o.enabled_reports_per_sec,
        "overhead_pct": o.overhead_pct(),
    })
}

/// Renders the sweep as the `BENCH_ingest.json` document.
pub fn to_json(points: &[PerfPoint], opts: &PerfOptions) -> Value {
    let results: Vec<Value> = points
        .iter()
        .map(|p| {
            let mut obj = serde_json::Map::new();
            obj.insert("d".to_string(), json!(p.d));
            obj.insert("n".to_string(), json!(p.n));
            obj.insert(
                "batched_reports_per_sec".to_string(),
                json!(p.batched_reports_per_sec),
            );
            if let Some(s) = p.scalar_reports_per_sec {
                obj.insert("scalar_reports_per_sec".to_string(), json!(s));
            }
            if let Some(x) = p.speedup() {
                obj.insert("batched_speedup".to_string(), json!(x));
            }
            Value::Object(obj)
        })
        .collect();
    json!({
        "bench": "perf_smoke",
        "oracle": "olh",
        "epsilon": EPSILON,
        "work_per_point": opts.work,
        "repeats": opts.repeats,
        "baseline_scalar": opts.baseline_scalar,
        "results": results
    })
}

/// Runs the sweep, prints a table, and writes the JSON report(s).
///
/// With `--serve-loadgen` the kernel sweep is skipped entirely and the
/// TCP load generator runs instead (see [`crate::serve::serve_smoke`]).
pub fn perf_smoke(opts: &PerfOptions) -> std::io::Result<()> {
    if opts.metrics {
        felip_obs::enable();
    }
    if let Some(chaos) = &opts.chaos {
        crate::chaos::chaos_smoke(chaos)?;
        return Ok(());
    }
    if let Some(serve) = &opts.serve {
        crate::serve::serve_smoke(serve)?;
        if opts.metrics {
            println!("{}", felip_obs::global().summary_table());
        }
        return Ok(());
    }
    if let Some(cluster) = &opts.cluster {
        crate::cluster::cluster_smoke(cluster)?;
        if opts.metrics {
            println!("{}", felip_obs::global().summary_table());
        }
        return Ok(());
    }
    if let Some(query) = &opts.query {
        crate::query::query_smoke(query)?;
        if opts.metrics {
            println!("{}", felip_obs::global().summary_table());
        }
        return Ok(());
    }
    println!("perf_smoke: OLH ingest+aggregate throughput (ε = {EPSILON})");
    let mut points = Vec::new();
    for &d in &DOMAINS {
        let p = measure_point(d, opts);
        match p.speedup() {
            Some(x) => println!(
                "d = {:>6}  n = {:>7}  batched {:>12.0} rep/s  scalar {:>12.0} rep/s  speedup {:.2}x",
                p.d,
                p.n,
                p.batched_reports_per_sec,
                p.scalar_reports_per_sec.unwrap(),
                x
            ),
            None => println!(
                "d = {:>6}  n = {:>7}  batched {:>12.0} rep/s",
                p.d, p.n, p.batched_reports_per_sec
            ),
        }
        points.push(p);
    }
    let doc = to_json(&points, opts);
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )?;
    println!("wrote {}", opts.out);
    if opts.obs_overhead {
        let o = measure_obs_overhead(opts);
        println!(
            "obs overhead: d = {}  n = {}  disabled {:>12.0} rep/s  \
             enabled {:>12.0} rep/s  overhead {:+.2}%",
            o.d,
            o.n,
            o.disabled_reports_per_sec,
            o.enabled_reports_per_sec,
            o.overhead_pct()
        );
        let doc = obs_overhead_to_json(&o, opts);
        std::fs::write(
            &opts.obs_out,
            serde_json::to_string_pretty(&doc).expect("serialize"),
        )?;
        println!("wrote {}", opts.obs_out);
    }
    if opts.metrics {
        println!("{}", felip_obs::global().summary_table());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse() {
        let opts = PerfOptions::from_args(
            [
                "--baseline-scalar",
                "--out",
                "x.json",
                "--work",
                "1024",
                "--repeats",
                "2",
            ]
            .into_iter()
            .map(String::from),
        );
        assert!(opts.baseline_scalar);
        assert_eq!(opts.out, "x.json");
        assert_eq!(opts.work, 1024);
        assert_eq!(opts.repeats, 2);
    }

    #[test]
    fn obs_flags_parse() {
        let opts = PerfOptions::from_args(
            ["--obs-overhead", "--metrics", "--obs-out", "o.json"]
                .into_iter()
                .map(String::from),
        );
        assert!(opts.obs_overhead);
        assert!(opts.metrics);
        assert_eq!(opts.obs_out, "o.json");
    }

    #[test]
    fn serve_flags_parse() {
        let opts = PerfOptions::from_args(
            [
                "--serve-loadgen",
                "--serve-connections",
                "16",
                "--serve-users",
                "50000",
                "--serve-batch",
                "250",
                "--serve-workers",
                "8",
                "--serve-window",
                "32",
                "--serve-queue",
                "32",
                "--serve-out",
                "s.json",
            ]
            .into_iter()
            .map(String::from),
        );
        let serve = opts.serve.expect("--serve-loadgen sets serve options");
        assert_eq!(serve.connections, vec![16]);
        assert_eq!(serve.users, vec![50_000]);
        assert_eq!(serve.batch, 250);
        assert_eq!(serve.workers, vec![8]);
        assert_eq!(serve.window, 32);
        assert_eq!(serve.queue_capacity, 32);
        assert_eq!(serve.out, "s.json");
    }

    #[test]
    fn serve_sweep_lists_parse() {
        let opts = PerfOptions::from_args(
            [
                "--serve-loadgen",
                "--serve-connections",
                "4,8,16",
                "--serve-workers",
                "1, 2",
                "--serve-reports",
                "100000,500000",
            ]
            .into_iter()
            .map(String::from),
        );
        let serve = opts.serve.expect("serve options");
        assert_eq!(serve.connections, vec![4, 8, 16]);
        assert_eq!(serve.workers, vec![1, 2]);
        assert_eq!(serve.users, vec![100_000, 500_000]);
        assert_eq!(serve.cases().len(), 12);
    }

    #[test]
    fn serve_defaults_absent_without_flag() {
        let opts = PerfOptions::from_args(std::iter::empty());
        assert!(opts.serve.is_none());
        assert!(opts.query.is_none());
    }

    #[test]
    fn query_flags_parse() {
        let opts = PerfOptions::from_args(
            [
                "--query-loadgen",
                "--query-users",
                "5000",
                "--query-clients",
                "3",
                "--query-batch",
                "250",
                "--query-out",
                "q.json",
            ]
            .into_iter()
            .map(String::from),
        );
        let query = opts.query.expect("--query-loadgen sets query options");
        assert_eq!(query.users, 5_000);
        assert_eq!(query.clients, 3);
        assert_eq!(query.batch, 250);
        assert_eq!(query.out, "q.json");
    }

    #[test]
    fn obs_overhead_measures_both_states() {
        let opts = PerfOptions {
            work: 1 << 12,
            repeats: 1,
            ..PerfOptions::default()
        };
        let o = measure_obs_overhead(&opts);
        assert!(o.disabled_reports_per_sec > 0.0);
        assert!(o.enabled_reports_per_sec > 0.0);
        assert!(o.overhead_pct().is_finite());
        let doc = obs_overhead_to_json(&o, &opts);
        assert_eq!(doc.get("d").and_then(|v| v.as_u64()), Some(16_384));
        assert!(doc.get("overhead_pct").is_some());
    }

    #[test]
    fn tiny_sweep_produces_sane_json() {
        let opts = PerfOptions {
            baseline_scalar: true,
            work: 1 << 12,
            repeats: 1,
            ..PerfOptions::default()
        };
        let p = measure_point(64, &opts);
        assert!(p.batched_reports_per_sec > 0.0);
        assert!(p.speedup().unwrap() > 0.0);
        let doc = to_json(&[p], &opts);
        let results = doc.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].get("batched_speedup").is_some());
    }
}
