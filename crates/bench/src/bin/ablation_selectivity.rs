//! Ablation study. See `bench::ablations::ablation_selectivity`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::ablations::ablation_selectivity(&profile)
}
