//! Regenerates Figure 1 of the FELIP paper. See `bench::figures::fig1`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::figures::fig1(&profile)
}
