//! Ingestion/aggregation throughput smoke bench. See `bench::perf`.

fn main() -> std::io::Result<()> {
    let opts = bench::perf::PerfOptions::from_args(std::env::args().skip(1));
    bench::perf::perf_smoke(&opts)
}
