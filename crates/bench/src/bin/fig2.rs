//! Regenerates Figure 2 of the FELIP paper. See `bench::figures::fig2`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::figures::fig2(&profile)
}
