//! Ablation study. See `bench::ablations::ablation_postprocess`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::ablations::ablation_postprocess(&profile)
}
