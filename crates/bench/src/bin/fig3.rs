//! Regenerates Figure 3 of the FELIP paper. See `bench::figures::fig3`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::figures::fig3(&profile)
}
