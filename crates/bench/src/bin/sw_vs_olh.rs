//! Ablation study. See `bench::ablations::sw_vs_olh`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::ablations::sw_vs_olh(&profile)
}
