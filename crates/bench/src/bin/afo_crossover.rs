//! Ablation study. See `bench::ablations::afo_crossover`.

fn main() -> std::io::Result<()> {
    let profile = bench::Profile::from_args(std::env::args().skip(1));
    bench::ablations::afo_crossover(&profile)
}
