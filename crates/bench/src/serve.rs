//! `perf_smoke --serve-loadgen`: loopback load generation against the
//! streaming ingestion server.
//!
//! Boots an in-process [`felip_server::Server`] on `127.0.0.1:0`, hammers
//! it with N pipelined client connections sending deterministic report
//! batches, and reports sustained reports/s plus p50/p99 frame round-trip
//! latency into `BENCH_serve.json`. Because the server is the real thing —
//! wire decode, admission validation, bounded queues, shard aggregators —
//! the number is an end-to-end ingestion throughput, not a kernel
//! microbenchmark.
//!
//! The timed section measures the *server*: every report is generated AND
//! encoded into its final wire frame (batching, CRC and all) before the
//! clock starts, and [`felip_server::PipelinedClient`] streams those
//! pre-encoded bytes with a bounded in-flight window, so client-side CPU
//! on the shared loopback core is a couple of syscalls per frame.
//!
//! `--serve-connections`, `--serve-workers`, and `--serve-users` accept
//! comma-separated lists; the cross product of the three runs as a sweep
//! (one server boot per case) and every case lands in the JSON document.
//! The top-level headline fields are the best case by throughput.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::rng::derive_seed;
use felip_common::{Attribute, Schema};
use felip_server::loadgen::user_report;
use felip_server::wire::encode_batch;
use felip_server::{Frame, FrameKind, PipelinedClient, RetryPolicy, Server, ServerConfig};
use serde_json::{json, Value};

/// Options for the serve load generation run. The three `Vec` fields are
/// sweep axes — a single-element list is a single run.
#[derive(Debug, Clone)]
pub struct ServeLoadOptions {
    /// Concurrent client connections (sweep axis).
    pub connections: Vec<usize>,
    /// Total users (= reports) streamed across all connections (sweep
    /// axis).
    pub users: Vec<usize>,
    /// Reports per `ReportBatch` frame.
    pub batch: usize,
    /// Server ingest workers (sweep axis).
    pub workers: Vec<usize>,
    /// Per-worker queue capacity (batches) before RETRY backpressure.
    pub queue_capacity: usize,
    /// Pipeline window: unacked frames in flight per connection.
    pub window: usize,
    /// Loadgen seed (drives records and perturbation).
    pub seed: u64,
    /// Output JSON path.
    pub out: String,
}

impl Default for ServeLoadOptions {
    fn default() -> Self {
        ServeLoadOptions {
            connections: vec![8],
            users: vec![200_000],
            batch: 500,
            workers: vec![4],
            queue_capacity: 64,
            window: 16,
            seed: 0xBEEF,
            out: "BENCH_serve.json".to_string(),
        }
    }
}

/// One concrete (connections, workers, users) point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServeCase {
    /// Concurrent client connections.
    pub connections: usize,
    /// Server ingest workers.
    pub workers: usize,
    /// Total reports streamed.
    pub users: usize,
}

impl ServeLoadOptions {
    /// The cross product of the three sweep axes, in flag order.
    pub fn cases(&self) -> Vec<ServeCase> {
        let one = |v: &[usize], d: usize| if v.is_empty() { vec![d] } else { v.to_vec() };
        let mut cases = Vec::new();
        for &users in &one(&self.users, 200_000) {
            for &workers in &one(&self.workers, 4) {
                for &connections in &one(&self.connections, 8) {
                    cases.push(ServeCase {
                        connections: connections.max(1),
                        workers: workers.max(1),
                        users: users.max(1),
                    });
                }
            }
        }
        cases
    }
}

/// Wall-clock nanoseconds the reactor spent in one pipeline stage,
/// normalised per ingested report (absent off the epoll path).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageBreakdown {
    /// Accept handling (syscall + registration) per report.
    pub accept_ns: f64,
    /// Socket reads + frame decode + CRC per report.
    pub decode_ns: f64,
    /// Session dispatch: validation, dedup, queue push per report.
    pub ingest_ns: f64,
    /// Reply encode per report.
    pub ack_ns: f64,
    /// Socket write flush per report.
    pub flush_ns: f64,
}

/// One run's measured results.
#[derive(Debug, Clone)]
pub struct ServeLoadResult {
    /// The case measured.
    pub case: ServeCase,
    /// Reports ingested by the server (must equal `case.users`).
    pub reports: usize,
    /// Wall-clock seconds from first to last frame.
    pub elapsed_s: f64,
    /// Sustained ingestion throughput.
    pub reports_per_sec: f64,
    /// Median frame round-trip (send → ACK) in microseconds.
    pub p50_us: f64,
    /// 99th-percentile frame round-trip in microseconds.
    pub p99_us: f64,
    /// Resyncs (RETRY backpressure or reconnects) across all connections.
    pub retries: u64,
    /// ACKed frames across all connections.
    pub frames: u64,
    /// Per-stage reactor time, when the epoll path served the run.
    pub stages: Option<StageBreakdown>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The synthetic two-attribute plan the loadgen measures against (64 × 4
/// cells keeps perturbation cheap so the server side dominates).
pub fn bench_plan(users: usize, seed: u64) -> Arc<CollectionPlan> {
    let schema = Schema::new(vec![
        Attribute::numerical("a", 64),
        Attribute::categorical("c", 4),
    ])
    .expect("static schema");
    Arc::new(
        CollectionPlan::build(&schema, users.max(1), &FelipConfig::new(1.0), seed)
            .expect("bench plan"),
    )
}

/// Reads one reactor stage histogram's total (summed ns since the last
/// reset). The stages became histograms in PR 7 (quantiles for STAT), so
/// the per-report cost here is the histogram sum, not a counter value.
fn stage_total(name: &str) -> u64 {
    match felip_obs::global().metric(name).map(|m| m.value) {
        Some(felip_obs::MetricValue::Histogram(h)) => h.sum,
        Some(v) => v.as_u64().unwrap_or(0),
        None => 0,
    }
}

/// Runs one case of the loopback load generation and returns the
/// measurements.
pub fn run_serve_loadgen(opts: &ServeLoadOptions, case: ServeCase) -> ServeLoadResult {
    let plan = bench_plan(case.users, 23);
    let plan_hash = plan.schema_hash();
    let config = ServerConfig {
        workers: case.workers,
        queue_capacity: opts.queue_capacity,
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::clone(&plan), config).expect("bind loopback");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    // Pre-generate AND pre-encode every frame so the timed section
    // measures the server, not client-side perturbation or encoding.
    let connections = case.connections;
    let per_conn = case.users.div_ceil(connections);
    let streams: Vec<Vec<Vec<u8>>> = (0..connections)
        .map(|c| {
            let lo = c * per_conn;
            let hi = ((c + 1) * per_conn).min(case.users);
            let reports: Vec<_> = (lo..hi)
                .map(|u| user_report(&plan, u, opts.seed).expect("loadgen report"))
                .collect();
            reports
                .chunks(opts.batch.max(1))
                .enumerate()
                .map(|(i, chunk)| {
                    Frame {
                        kind: FrameKind::ReportBatch,
                        plan_hash,
                        payload: encode_batch(i as u64 + 1, chunk).expect("encode batch"),
                    }
                    .encode()
                })
                .collect()
        })
        .collect();

    // Stage counters accumulate in the global recorder; reset + enable so
    // this case's totals are exactly this case's work.
    let obs_was_enabled = felip_obs::global().is_enabled();
    felip_obs::global().reset();
    felip_obs::enable();

    let started = Instant::now();
    let per_conn_results: Vec<(Vec<f64>, u64, u64)> = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(conn, frames)| {
                let seed = opts.seed;
                let window = opts.window;
                s.spawn(move || {
                    // Pin the wire identity to (seed, connection): stable
                    // across reconnects, and the per-connection jitter seed
                    // declusters retry storms under backpressure.
                    let client_id = derive_seed(seed, conn as u64 + 1);
                    let policy = RetryPolicy {
                        jitter_seed: client_id,
                        ..RetryPolicy::default()
                    };
                    let mut client =
                        PipelinedClient::connect_with(addr, plan_hash, client_id, policy)
                            .expect("connect");
                    let stats = client.pump_encoded(frames, window).expect("pump");
                    let frames = frames.len() as u64;
                    (stats.frame_rtt_us, stats.resyncs as u64, frames)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let accept_ns = stage_total("server.stage.accept");
    let decode_ns = stage_total("server.stage.decode");
    let ingest_ns = stage_total("server.stage.ingest");
    let ack_ns = stage_total("server.stage.ack");
    let flush_ns = stage_total("server.stage.flush");
    if !obs_was_enabled {
        felip_obs::disable();
    }

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = server_thread.join().expect("server join");
    assert_eq!(
        run.aggregator.reports_ingested(),
        case.users,
        "loadgen must not lose reports"
    );

    let mut latencies: Vec<f64> = per_conn_results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let retries = per_conn_results.iter().map(|(_, r, _)| r).sum();
    let frames = per_conn_results.iter().map(|(_, _, f)| f).sum();

    let stage_sum = accept_ns + decode_ns + ingest_ns + ack_ns + flush_ns;
    let stages = (stage_sum > 0).then(|| {
        let per = |ns: u64| ns as f64 / case.users as f64;
        StageBreakdown {
            accept_ns: per(accept_ns),
            decode_ns: per(decode_ns),
            ingest_ns: per(ingest_ns),
            ack_ns: per(ack_ns),
            flush_ns: per(flush_ns),
        }
    });

    ServeLoadResult {
        case,
        reports: case.users,
        elapsed_s: elapsed,
        reports_per_sec: case.users as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        retries,
        frames,
        stages,
    }
}

/// Builds the key/value map for one case.
fn case_map(r: &ServeLoadResult, opts: &ServeLoadOptions) -> serde_json::Map<String, Value> {
    let mut map = serde_json::Map::new();
    map.insert("connections".to_string(), json!(r.case.connections));
    map.insert("workers".to_string(), json!(r.case.workers));
    map.insert("queue_capacity".to_string(), json!(opts.queue_capacity));
    map.insert("batch".to_string(), json!(opts.batch));
    map.insert("window".to_string(), json!(opts.window));
    map.insert("reports".to_string(), json!(r.reports));
    map.insert("frames".to_string(), json!(r.frames));
    map.insert("retries".to_string(), json!(r.retries));
    map.insert("elapsed_s".to_string(), json!(r.elapsed_s));
    map.insert("reports_per_sec".to_string(), json!(r.reports_per_sec));
    map.insert("frame_p50_us".to_string(), json!(r.p50_us));
    map.insert("frame_p99_us".to_string(), json!(r.p99_us));
    if let Some(stages) = &r.stages {
        map.insert(
            "stage_ns_per_report".to_string(),
            json!({
                "accept": stages.accept_ns,
                "decode": stages.decode_ns,
                "ingest": stages.ingest_ns,
                "ack": stages.ack_ns,
                "flush": stages.flush_ns,
            }),
        );
    }
    map
}

/// The std-path throughput measured at the mid-PR checkpoint: shim fix
/// (`#[inline(always)]` passthroughs) + slice-by-16 CRC + buffered-writer
/// removal, with the thread-per-connection accept loop still in place.
/// Measured on this repo's single-core CI box (best of three:
/// 7.28M / 7.02M / 6.00M rep/s) before the reactor landed; recorded here
/// because the reactor now always serves on linux-x86_64, so the pre-reactor
/// state is no longer reachable from a checkout of this commit.
const STD_PATH_CHECKPOINT_REPORTS_PER_SEC: f64 = 6_000_000.0;

/// Renders the sweep as the `BENCH_serve.json` document: headline fields
/// from the best case by throughput, plus every case under `"runs"` and
/// the fixed pre-reactor checkpoint under `"std_path_checkpoint"`.
pub fn to_json(results: &[ServeLoadResult], opts: &ServeLoadOptions) -> Value {
    let best = results
        .iter()
        .max_by(|a, b| a.reports_per_sec.total_cmp(&b.reports_per_sec))
        .expect("at least one case");
    let mut doc = case_map(best, opts);
    doc.insert("bench".to_string(), json!("serve_loadgen"));
    doc.insert("transport".to_string(), json!("tcp loopback"));
    doc.insert(
        "std_path_checkpoint".to_string(),
        json!({
            "reports_per_sec": STD_PATH_CHECKPOINT_REPORTS_PER_SEC,
            "note": "thread-per-connection path after the shim/CRC fixes, \
                     measured mid-PR before the reactor replaced it",
        }),
    );
    doc.insert(
        "runs".to_string(),
        Value::Array(
            results
                .iter()
                .map(|r| Value::Object(case_map(r, opts)))
                .collect(),
        ),
    );
    Value::Object(doc)
}

/// Runs the sweep, prints one line per case, and writes the JSON
/// document.
pub fn serve_smoke(opts: &ServeLoadOptions) -> std::io::Result<()> {
    let cases = opts.cases();
    let mut results = Vec::with_capacity(cases.len());
    for case in cases {
        println!(
            "serve_loadgen: {} users, {} connections × batch {} (window {}), {} workers",
            case.users, case.connections, opts.batch, opts.window, case.workers
        );
        let r = run_serve_loadgen(opts, case);
        println!(
            "ingested {:>8} reports in {:>6.2}s  {:>10.0} rep/s  p50 {:>7.0}µs  p99 {:>7.0}µs  retries {}",
            r.reports, r.elapsed_s, r.reports_per_sec, r.p50_us, r.p99_us, r.retries
        );
        if let Some(s) = &r.stages {
            println!(
                "  stages (ns/report): accept {:>6.1}  decode {:>6.1}  ingest {:>6.1}  \
                 ack {:>6.1}  flush {:>6.1}",
                s.accept_ns, s.decode_ns, s.ingest_ns, s.ack_ns, s.flush_ns
            );
        }
        results.push(r);
    }
    let doc = to_json(&results, opts);
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )?;
    println!("wrote {}", opts.out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_loadgen_run_is_lossless() {
        let opts = ServeLoadOptions {
            connections: vec![2],
            users: vec![2_000],
            batch: 100,
            workers: vec![2],
            queue_capacity: 8,
            ..ServeLoadOptions::default()
        };
        let cases = opts.cases();
        assert_eq!(cases.len(), 1);
        let r = run_serve_loadgen(&opts, cases[0]);
        assert_eq!(r.reports, 2_000);
        assert_eq!(r.frames, 20);
        assert!(r.reports_per_sec > 0.0);
        assert!(r.p99_us >= r.p50_us);
    }

    #[test]
    fn sweep_is_the_cross_product_in_flag_order() {
        let opts = ServeLoadOptions {
            connections: vec![2, 4],
            users: vec![1_000],
            workers: vec![1, 2],
            ..ServeLoadOptions::default()
        };
        let cases = opts.cases();
        assert_eq!(cases.len(), 4);
        assert_eq!(
            cases
                .iter()
                .map(|c| (c.connections, c.workers))
                .collect::<Vec<_>>(),
            vec![(2, 1), (4, 1), (2, 2), (4, 2)]
        );
        assert!(cases.iter().all(|c| c.users == 1_000));
    }

    #[test]
    fn sweep_json_has_headline_and_runs() {
        let opts = ServeLoadOptions::default();
        let fake = |rate: f64| ServeLoadResult {
            case: ServeCase {
                connections: 2,
                workers: 1,
                users: 100,
            },
            reports: 100,
            elapsed_s: 1.0,
            reports_per_sec: rate,
            p50_us: 1.0,
            p99_us: 2.0,
            retries: 0,
            frames: 1,
            stages: Some(StageBreakdown::default()),
        };
        let doc = to_json(&[fake(5.0), fake(9.0), fake(7.0)], &opts);
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("serve_loadgen")
        );
        assert_eq!(
            doc.get("reports_per_sec").and_then(|v| v.as_f64()),
            Some(9.0)
        );
        assert_eq!(
            doc.get("runs").and_then(|v| v.as_array()).map(|r| r.len()),
            Some(3)
        );
        assert!(doc.get("stage_ns_per_report").is_some());
    }

    #[test]
    fn percentiles_on_sorted_data() {
        // Nearest-rank on 1..=100: index (99 · p).round().
        let data: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&data, 0.50), 51.0);
        assert_eq!(percentile(&data, 0.99), 99.0);
        assert_eq!(percentile(&data, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
