//! `perf_smoke --serve-loadgen`: loopback load generation against the
//! streaming ingestion server.
//!
//! Boots an in-process [`felip_server::Server`] on `127.0.0.1:0`, hammers
//! it with N client connections sending deterministic report batches, and
//! reports sustained reports/s plus p50/p99 frame round-trip latency into
//! `BENCH_serve.json`. Because the server is the real thing — wire decode,
//! admission validation, bounded queues, shard aggregators — the number is
//! an end-to-end ingestion throughput, not a kernel microbenchmark.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use felip::config::FelipConfig;
use felip::plan::CollectionPlan;
use felip_common::rng::derive_seed;
use felip_common::{Attribute, Schema};
use felip_server::loadgen::user_report;
use felip_server::{Client, RetryPolicy, Server, ServerConfig};
use serde_json::{json, Value};

/// Options for the serve load generation run.
#[derive(Debug, Clone)]
pub struct ServeLoadOptions {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total users (= reports) streamed across all connections.
    pub users: usize,
    /// Reports per `ReportBatch` frame.
    pub batch: usize,
    /// Server ingest workers.
    pub workers: usize,
    /// Per-worker queue capacity (batches) before RETRY backpressure.
    pub queue_capacity: usize,
    /// Loadgen seed (drives records and perturbation).
    pub seed: u64,
    /// Output JSON path.
    pub out: String,
}

impl Default for ServeLoadOptions {
    fn default() -> Self {
        ServeLoadOptions {
            connections: 8,
            users: 200_000,
            batch: 500,
            workers: 4,
            queue_capacity: 64,
            seed: 0xBEEF,
            out: "BENCH_serve.json".to_string(),
        }
    }
}

/// One run's measured results.
#[derive(Debug, Clone)]
pub struct ServeLoadResult {
    /// Reports ingested by the server (must equal `users`).
    pub reports: usize,
    /// Wall-clock seconds from first to last frame.
    pub elapsed_s: f64,
    /// Sustained ingestion throughput.
    pub reports_per_sec: f64,
    /// Median frame round-trip (send → ACK) in microseconds.
    pub p50_us: f64,
    /// 99th-percentile frame round-trip in microseconds.
    pub p99_us: f64,
    /// RETRY responses absorbed across all connections.
    pub retries: u64,
    /// ACKed frames across all connections.
    pub frames: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The synthetic two-attribute plan the loadgen measures against (64 × 4
/// cells keeps perturbation cheap so the server side dominates).
pub fn bench_plan(users: usize, seed: u64) -> Arc<CollectionPlan> {
    let schema = Schema::new(vec![
        Attribute::numerical("a", 64),
        Attribute::categorical("c", 4),
    ])
    .expect("static schema");
    Arc::new(
        CollectionPlan::build(&schema, users.max(1), &FelipConfig::new(1.0), seed)
            .expect("bench plan"),
    )
}

/// Runs the loopback load generation and returns the measurements.
pub fn run_serve_loadgen(opts: &ServeLoadOptions) -> ServeLoadResult {
    let plan = bench_plan(opts.users, 23);
    let plan_hash = plan.schema_hash();
    let config = ServerConfig {
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::clone(&plan), config).expect("bind loopback");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = thread::spawn(move || server.run(None).expect("serve"));

    // Pre-generate every report so the timed section measures the server,
    // not client-side perturbation.
    let connections = opts.connections.max(1);
    let per_conn = opts.users.div_ceil(connections);
    let streams: Vec<Vec<_>> = (0..connections)
        .map(|c| {
            let lo = c * per_conn;
            let hi = ((c + 1) * per_conn).min(opts.users);
            (lo..hi)
                .map(|u| user_report(&plan, u, opts.seed).expect("loadgen report"))
                .collect()
        })
        .collect();

    let started = Instant::now();
    let per_conn_results: Vec<(Vec<f64>, u64, u64)> = thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(conn, reports)| {
                let seed = opts.seed;
                s.spawn(move || {
                    // Pin the wire identity to (seed, connection): stable
                    // across reconnects, and the per-connection jitter seed
                    // declusters retry storms under backpressure.
                    let client_id = derive_seed(seed, conn as u64 + 1);
                    let policy = RetryPolicy {
                        jitter_seed: client_id,
                        ..RetryPolicy::default()
                    };
                    let mut client =
                        Client::connect_with(addr, plan_hash, client_id, policy).expect("connect");
                    let mut latencies = Vec::with_capacity(reports.len() / opts.batch + 1);
                    let mut retries = 0u64;
                    let mut frames = 0u64;
                    for batch in reports.chunks(opts.batch.max(1)) {
                        let t = Instant::now();
                        retries += client.send_batch_retrying(batch).expect("send") as u64;
                        latencies.push(t.elapsed().as_secs_f64() * 1e6);
                        frames += 1;
                    }
                    (latencies, retries, frames)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    let run = server_thread.join().expect("server join");
    assert_eq!(
        run.aggregator.reports_ingested(),
        opts.users,
        "loadgen must not lose reports"
    );

    let mut latencies: Vec<f64> = per_conn_results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let retries = per_conn_results.iter().map(|(_, r, _)| r).sum();
    let frames = per_conn_results.iter().map(|(_, _, f)| f).sum();

    ServeLoadResult {
        reports: opts.users,
        elapsed_s: elapsed,
        reports_per_sec: opts.users as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        retries,
        frames,
    }
}

/// Renders the run as the `BENCH_serve.json` document.
pub fn to_json(r: &ServeLoadResult, opts: &ServeLoadOptions) -> Value {
    json!({
        "bench": "serve_loadgen",
        "transport": "tcp loopback",
        "connections": opts.connections,
        "workers": opts.workers,
        "queue_capacity": opts.queue_capacity,
        "batch": opts.batch,
        "reports": r.reports,
        "frames": r.frames,
        "retries": r.retries,
        "elapsed_s": r.elapsed_s,
        "reports_per_sec": r.reports_per_sec,
        "frame_p50_us": r.p50_us,
        "frame_p99_us": r.p99_us,
    })
}

/// Runs the loadgen, prints a summary line, and writes the JSON document.
pub fn serve_smoke(opts: &ServeLoadOptions) -> std::io::Result<()> {
    println!(
        "serve_loadgen: {} users, {} connections × batch {}, {} workers",
        opts.users, opts.connections, opts.batch, opts.workers
    );
    let r = run_serve_loadgen(opts);
    println!(
        "ingested {:>8} reports in {:>6.2}s  {:>10.0} rep/s  p50 {:>7.0}µs  p99 {:>7.0}µs  retries {}",
        r.reports, r.elapsed_s, r.reports_per_sec, r.p50_us, r.p99_us, r.retries
    );
    let doc = to_json(&r, opts);
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )?;
    println!("wrote {}", opts.out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_loadgen_run_is_lossless() {
        let opts = ServeLoadOptions {
            connections: 2,
            users: 2_000,
            batch: 100,
            workers: 2,
            queue_capacity: 8,
            ..ServeLoadOptions::default()
        };
        let r = run_serve_loadgen(&opts);
        assert_eq!(r.reports, 2_000);
        assert_eq!(r.frames, 20);
        assert!(r.reports_per_sec > 0.0);
        assert!(r.p99_us >= r.p50_us);
    }

    #[test]
    fn percentiles_on_sorted_data() {
        // Nearest-rank on 1..=100: index (99 · p).round().
        let data: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&data, 0.50), 51.0);
        assert_eq!(percentile(&data, 0.99), 99.0);
        assert_eq!(percentile(&data, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
