//! Experiment profiles and shared CLI parsing for the figure binaries.

use felip_datasets::GenOptions;

/// Scale profile of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Users per experiment point.
    pub n: usize,
    /// Numerical attribute domain.
    pub numerical_domain: u32,
    /// Categorical attribute domain.
    pub categorical_domain: u32,
    /// Numerical attribute count.
    pub numerical: usize,
    /// Categorical attribute count.
    pub categorical: usize,
    /// Queries per point.
    pub queries: usize,
    /// Independent repeats averaged per point.
    pub repeats: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files (`None` → stdout only).
    pub out_dir: Option<String>,
}

impl Profile {
    /// Laptop-scale default: finishes each figure in minutes on one core.
    pub fn quick() -> Self {
        Profile {
            n: 60_000,
            numerical_domain: 64,
            categorical_domain: 8,
            numerical: 3,
            categorical: 3,
            queries: 10,
            repeats: 1,
            seed: 0xF311,
            out_dir: None,
        }
    }

    /// Paper-scale parameters (§6.2 defaults): n = 10⁶, domain 256, k = 6,
    /// |Q| = 10.
    pub fn full() -> Self {
        Profile {
            n: 1_000_000,
            numerical_domain: 256,
            ..Profile::quick()
        }
    }

    /// Parses the shared flags: `--quick` (default), `--full`,
    /// `--n <users>`, `--queries <count>`, `--repeats <count>`,
    /// `--seed <seed>`, `--out <dir>`.
    ///
    /// Unknown flags abort with a usage message — experiment output must not
    /// silently ignore a typo.
    pub fn from_args(args: impl Iterator<Item = String>) -> Profile {
        let mut p = Profile::quick();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            let mut take = |name: &str| -> String {
                args.next().unwrap_or_else(|| {
                    felip_obs::diag::usage_exit(&format!("missing value for {name}"))
                })
            };
            match a.as_str() {
                "--quick" => {
                    p = Profile {
                        out_dir: p.out_dir.clone(),
                        ..Profile::quick()
                    }
                }
                "--full" => {
                    p = Profile {
                        out_dir: p.out_dir.clone(),
                        ..Profile::full()
                    }
                }
                "--n" => p.n = parse(&take("--n")),
                "--queries" => p.queries = parse(&take("--queries")),
                "--repeats" => p.repeats = parse(&take("--repeats")),
                "--seed" => p.seed = parse(&take("--seed")),
                "--domain" => p.numerical_domain = parse(&take("--domain")),
                "--out" => p.out_dir = Some(take("--out")),
                other => felip_obs::diag::usage_exit(&format!(
                    "unknown flag `{other}`\n\
                     usage: [--quick|--full] [--n N] [--queries Q] [--repeats R] \
                     [--seed S] [--domain D] [--out DIR]"
                )),
            }
        }
        p
    }

    /// Dataset generator options at this profile's scale.
    pub fn gen_options(&self, seed_offset: u64) -> GenOptions {
        GenOptions {
            n: self.n,
            numerical: self.numerical,
            categorical: self.categorical,
            numerical_domain: self.numerical_domain,
            categorical_domain: self.categorical_domain,
            seed: self.seed ^ seed_offset,
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| felip_obs::diag::usage_exit(&format!("cannot parse `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn default_is_quick() {
        let p = Profile::from_args(args(&[]));
        assert_eq!(p.n, Profile::quick().n);
    }

    #[test]
    fn full_raises_scale() {
        let p = Profile::from_args(args(&["--full"]));
        assert_eq!(p.n, 1_000_000);
        assert_eq!(p.numerical_domain, 256);
    }

    #[test]
    fn overrides_apply_in_order() {
        let p = Profile::from_args(args(&["--full", "--n", "5000", "--repeats", "3"]));
        assert_eq!(p.n, 5000);
        assert_eq!(p.repeats, 3);
        assert_eq!(p.numerical_domain, 256, "--full's domain survives");
    }

    #[test]
    fn out_dir_parsed() {
        let p = Profile::from_args(args(&["--out", "results"]));
        assert_eq!(p.out_dir.as_deref(), Some("results"));
    }

    #[test]
    fn gen_options_scale_with_profile() {
        let p = Profile::from_args(args(&["--n", "1234"]));
        let g = p.gen_options(1);
        assert_eq!(g.n, 1234);
        assert_eq!(g.attrs(), 6);
    }
}
