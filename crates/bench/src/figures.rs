//! One sweep function per paper figure (§6.2–§6.3) plus the ablations.
//!
//! Every function prints (and optionally writes) CSV rows:
//! `figure,dataset,lambda,x,strategy,mae` — one row per plotted point. The
//! MAE of each point is averaged over `profile.repeats` independent
//! collections.

use felip_common::metrics::mean;
use felip_common::{Dataset, Query};
use felip_datasets::{generate_queries, DatasetKind, GenOptions, WorkloadOptions};

use crate::profile::Profile;
use crate::runner::{evaluate_mae, StrategyUnderTest};
use crate::table::CsvSink;

/// Standard CSV header shared by all figures.
pub const HEADER: &str = "figure,dataset,lambda,x,strategy,mae";

/// The ε sweep of Figures 1 and 7.
pub fn epsilon_sweep(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.5, 1.0, 2.0, 3.0]
    } else {
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    }
}

fn average_mae(
    strategy: StrategyUnderTest,
    data: &Dataset,
    queries: &[Query],
    epsilon: f64,
    selectivity: f64,
    profile: &Profile,
    point_seed: u64,
) -> f64 {
    let maes: Vec<f64> = (0..profile.repeats.max(1))
        .map(|r| {
            evaluate_mae(
                strategy,
                data,
                queries,
                epsilon,
                selectivity,
                point_seed ^ (r as u64) << 32,
            )
            .unwrap_or(f64::NAN)
        })
        .filter(|m| m.is_finite())
        .collect();
    if maes.is_empty() {
        f64::NAN
    } else {
        mean(&maes)
    }
}

/// Figure 1: MAE vs privacy budget ε, four datasets, λ ∈ {2, 4},
/// OUG / OHG / HIO.
pub fn fig1(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig1", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    for kind in DatasetKind::all() {
        let data = kind.generate(profile.gen_options(0x01));
        for lambda in [2usize, 4] {
            let queries = generate_queries(
                data.schema(),
                WorkloadOptions {
                    lambda,
                    selectivity: 0.5,
                    count: profile.queries,
                    seed: profile.seed ^ 0xF1,
                    range_only: false,
                },
            )
            .expect("default schema supports lambda in {2,4}");
            for eps in epsilon_sweep(quick) {
                for strat in StrategyUnderTest::main_contenders() {
                    let m = average_mae(strat, &data, &queries, eps, 0.5, profile, profile.seed);
                    sink.write_row(&format!("fig1,{kind},{lambda},{eps},{strat},{m:.6}"))?;
                }
            }
        }
    }
    Ok(())
}

/// Figure 2: MAE vs query selectivity s ∈ {0.1 … 0.9}, ε = 1.
///
/// FELIP's grids are sized with the workload's true selectivity as the
/// prior (that knob is the point of §5.2); the baselines have no such input.
pub fn fig2(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig2", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    let sweep: Vec<f64> = if quick {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    for kind in DatasetKind::all() {
        let data = kind.generate(profile.gen_options(0x02));
        for lambda in [2usize, 4] {
            for &s in &sweep {
                let queries = generate_queries(
                    data.schema(),
                    WorkloadOptions {
                        lambda,
                        selectivity: s,
                        count: profile.queries,
                        seed: profile.seed ^ 0xF2,
                        range_only: false,
                    },
                )
                .expect("valid workload");
                for strat in StrategyUnderTest::main_contenders() {
                    let m = average_mae(strat, &data, &queries, 1.0, s, profile, profile.seed);
                    sink.write_row(&format!("fig2,{kind},{lambda},{s},{strat},{m:.6}"))?;
                }
            }
        }
    }
    Ok(())
}

/// Figure 3: MAE vs attribute domain size. Numerical domains sweep
/// 25 → 1600 (paper) / 16 → 256 (quick); categorical domains sweep 2 → 8
/// alongside.
pub fn fig3(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig3", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    let sweep: Vec<(u32, u32)> = if quick {
        vec![(16, 2), (32, 3), (64, 4), (128, 6), (256, 8)]
    } else {
        vec![
            (25, 2),
            (50, 3),
            (100, 4),
            (200, 5),
            (400, 6),
            (800, 7),
            (1600, 8),
        ]
    };
    for kind in DatasetKind::all() {
        for &(dn, dc) in &sweep {
            let opts = GenOptions {
                numerical_domain: dn,
                categorical_domain: dc,
                ..profile.gen_options(0x03)
            };
            let data = kind.generate(opts);
            for lambda in [2usize, 4] {
                let queries = generate_queries(
                    data.schema(),
                    WorkloadOptions {
                        lambda,
                        selectivity: 0.5,
                        count: profile.queries,
                        seed: profile.seed ^ 0xF3,
                        range_only: false,
                    },
                )
                .expect("valid workload");
                for strat in StrategyUnderTest::main_contenders() {
                    let m = average_mae(strat, &data, &queries, 1.0, 0.5, profile, profile.seed);
                    sink.write_row(&format!("fig3,{kind},{lambda},{dn},{strat},{m:.6}"))?;
                }
            }
        }
    }
    Ok(())
}

/// Figure 4: MAE vs query dimension λ ∈ {2 … 10} over a 10-attribute
/// schema (5 numerical + 5 categorical).
pub fn fig4(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig4", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    let lambdas: Vec<usize> = if quick {
        vec![2, 4, 6, 8, 10]
    } else {
        (2..=10).collect()
    };
    for kind in DatasetKind::all() {
        let opts = GenOptions {
            numerical: 5,
            categorical: 5,
            ..profile.gen_options(0x04)
        };
        let data = kind.generate(opts);
        for &lambda in &lambdas {
            let queries = generate_queries(
                data.schema(),
                WorkloadOptions {
                    lambda,
                    selectivity: 0.5,
                    count: profile.queries,
                    seed: profile.seed ^ 0xF4,
                    range_only: false,
                },
            )
            .expect("10-attribute schema supports lambda up to 10");
            for strat in StrategyUnderTest::main_contenders() {
                let m = average_mae(strat, &data, &queries, 1.0, 0.5, profile, profile.seed);
                sink.write_row(&format!("fig4,{kind},{lambda},{lambda},{strat},{m:.6}"))?;
            }
        }
    }
    Ok(())
}

/// Figure 5: MAE vs number of attributes k ∈ {4 … 10} (half numerical,
/// half categorical), λ ∈ {2, 4}.
pub fn fig5(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig5", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    let ks: Vec<usize> = if quick {
        vec![4, 6, 8, 10]
    } else {
        (4..=10).collect()
    };
    for kind in DatasetKind::all() {
        for &k in &ks {
            let opts = GenOptions {
                numerical: k.div_ceil(2),
                categorical: k / 2,
                ..profile.gen_options(0x05)
            };
            let data = kind.generate(opts);
            for lambda in [2usize, 4] {
                let queries = generate_queries(
                    data.schema(),
                    WorkloadOptions {
                        lambda,
                        selectivity: 0.5,
                        count: profile.queries,
                        seed: profile.seed ^ 0xF5,
                        range_only: false,
                    },
                )
                .expect("k >= 4 supports lambda in {2,4}");
                for strat in StrategyUnderTest::main_contenders() {
                    let m = average_mae(strat, &data, &queries, 1.0, 0.5, profile, profile.seed);
                    sink.write_row(&format!("fig5,{kind},{lambda},{k},{strat},{m:.6}"))?;
                }
            }
        }
    }
    Ok(())
}

/// Figure 6: MAE vs population size n. The paper sweeps 10⁵ → 10⁷ (Loan:
/// 10⁴ → 10⁶); quick mode scales the sweep down.
pub fn fig6(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig6", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    let base_sweep: Vec<usize> = if quick {
        vec![20_000, 60_000, 200_000]
    } else {
        vec![100_000, 300_000, 1_000_000, 3_000_000, 10_000_000]
    };
    for kind in DatasetKind::all() {
        // The Loan extract has 10× fewer records (§6.2.6).
        let sweep: Vec<usize> = if kind == DatasetKind::LoanLike {
            base_sweep.iter().map(|&n| n / 10).collect()
        } else {
            base_sweep.clone()
        };
        let max_n = *sweep.last().expect("non-empty sweep");
        let opts = GenOptions {
            n: max_n,
            ..profile.gen_options(0x06)
        };
        let full = kind.generate(opts);
        for lambda in [2usize, 4] {
            let queries = generate_queries(
                full.schema(),
                WorkloadOptions {
                    lambda,
                    selectivity: 0.5,
                    count: profile.queries,
                    seed: profile.seed ^ 0xF6,
                    range_only: false,
                },
            )
            .expect("valid workload");
            for &n in &sweep {
                let data = full.truncated(n);
                for strat in StrategyUnderTest::main_contenders() {
                    let m = average_mae(strat, &data, &queries, 1.0, 0.5, profile, profile.seed);
                    sink.write_row(&format!("fig6,{kind},{lambda},{n},{strat},{m:.6}"))?;
                }
            }
        }
    }
    Ok(())
}

/// Figure 7: range-constraint-only comparison against TDG/HDG over an
/// all-numerical 6-attribute schema (d = 100, λ = 3), ε sweep; uniform and
/// normal datasets, with and without the adaptive oracle (§6.3).
pub fn fig7(profile: &Profile) -> std::io::Result<()> {
    let mut sink = CsvSink::new("fig7", HEADER, profile.out_dir.as_deref())?;
    let quick = profile.n < 200_000;
    for kind in [DatasetKind::Uniform, DatasetKind::Normal] {
        let opts = GenOptions {
            numerical: 6,
            categorical: 0,
            numerical_domain: 100,
            ..profile.gen_options(0x07)
        };
        let data = kind.generate(opts);
        let queries = generate_queries(
            data.schema(),
            WorkloadOptions {
                lambda: 3,
                selectivity: 0.5,
                count: profile.queries,
                seed: profile.seed ^ 0xF7,
                range_only: true,
            },
        )
        .expect("all-numerical schema supports range-only queries");
        for eps in epsilon_sweep(quick) {
            for strat in StrategyUnderTest::fig7_uniform()
                .into_iter()
                .chain(StrategyUnderTest::fig7_hybrid())
            {
                let m = average_mae(strat, &data, &queries, eps, 0.5, profile, profile.seed);
                sink.write_row(&format!("fig7,{kind},3,{eps},{strat},{m:.6}"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro profile so figure smoke tests stay fast in CI.
    fn micro() -> Profile {
        Profile {
            n: 4_000,
            numerical_domain: 16,
            categorical_domain: 4,
            numerical: 2,
            categorical: 2,
            queries: 2,
            repeats: 1,
            seed: 1,
            out_dir: None,
        }
    }

    #[test]
    fn epsilon_sweep_shapes() {
        assert_eq!(epsilon_sweep(true).len(), 4);
        assert_eq!(epsilon_sweep(false).len(), 6);
    }

    #[test]
    fn fig1_smoke() {
        fig1(&micro()).unwrap();
    }

    #[test]
    fn fig7_smoke() {
        fig7(&micro()).unwrap();
    }
}
